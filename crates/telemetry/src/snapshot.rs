//! Versioned on-disk snapshots of sealed telemetry.
//!
//! A snapshot is the cacheable artifact of one simulated run: every stream
//! a [`TelemetryView`] holds, in a hand-rolled, line-oriented text format in
//! the same spirit as the `sacct`-style job trace (`trace.rs`) — no external
//! serialization crates. The encoding is canonical, so
//! `write → read → write` reproduces the original bytes exactly; the
//! scenario runner relies on this to prove cache hits are byte-identical to
//! fresh simulation.
//!
//! Layout (version 1):
//!
//! ```text
//! rsc-telemetry-snapshot v1
//! cluster <name>
//! nodes <u32>
//! horizon <seconds>
//! gpu_swaps <u64>
//! jobs <count>          — then one trace-format row per record
//! health <count>        — at,node,check,severity,signal,false_positive
//! node_events <count>   — at,node,kind
//! exclusions <count>    — at,node,job
//! failures <count>      — at,node,mode,symptom,permanent
//! end
//! ```
//!
//! Version 2 extends version 1 with the fallible-remediation vocabulary:
//! the `node_events` section admits the lifecycle kinds
//! (`repair_attempt_failed`, `repair_escalated`, `enter_probation`,
//! `probation_passed`, `probation_failed`, `quarantined`) and a
//! `ckpt_fallbacks <count>` section (rows `at,job,gpus,intervals,lost`)
//! sits between `failures` and `end`. The writer emits version 1 whenever
//! a view contains no version-2 content, so runs with the fallible path
//! disabled stay byte-identical to pre-v2 snapshots; the reader decodes
//! both versions (a v1 header with v2 content is rejected).

use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use rsc_cluster::gpu::XidError;
use rsc_cluster::ids::{JobId, NodeId};
use rsc_failure::injector::FailureEvent;
use rsc_failure::modes::{ModeId, Severity};
use rsc_failure::signals::SignalKind;
use rsc_failure::taxonomy::FailureSymptom;
use rsc_health::check::CheckKind;
use rsc_health::monitor::HealthEvent;
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::store::{
    CheckpointFallbackEvent, ExclusionEvent, NodeEvent, NodeEventKind, TelemetryStore,
};
use crate::trace::{format_job_row, parse_job_row};
use crate::view::TelemetryView;

/// Highest format version [`write_snapshot`] emits; bumped on any change
/// to the encoding. Participates in the scenario-cache fingerprint so
/// stale artifacts are never loaded by a newer binary.
pub const SNAPSHOT_VERSION: u32 = 2;

const MAGIC_V1: &str = "rsc-telemetry-snapshot v1";
const MAGIC_V2: &str = "rsc-telemetry-snapshot v2";

/// Error from loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The snapshot text is malformed; `line` is 1-based.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Parse { line, message } => {
                write!(f, "snapshot line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn severity_label(s: Severity) -> &'static str {
    match s {
        Severity::High => "high",
        Severity::Low => "low",
    }
}

fn parse_severity(s: &str) -> Option<Severity> {
    match s {
        "high" => Some(Severity::High),
        "low" => Some(Severity::Low),
        _ => None,
    }
}

/// Lossless signal tag. Named XID variants encode as `xid<code>`; the
/// catch-all [`XidError::Other`] encodes as `xido<code>` so that e.g.
/// `Other(48)` and `DoubleBitEcc` (also code 48) stay distinct.
fn signal_tag(s: SignalKind) -> String {
    match s {
        SignalKind::Xid(XidError::Other(code)) => format!("xido{code}"),
        SignalKind::Xid(x) => format!("xid{}", x.code()),
        other => other.label(),
    }
}

fn parse_signal(s: &str) -> Option<SignalKind> {
    match s {
        "pcie_err" => return Some(SignalKind::PcieError),
        "ipmi_critical" => return Some(SignalKind::IpmiCriticalInterrupt),
        "ib_link_err" => return Some(SignalKind::IbLinkError),
        "eth_link_err" => return Some(SignalKind::EthLinkError),
        "fs_mount_missing" => return Some(SignalKind::FsMountMissing),
        "dram_ue" => return Some(SignalKind::MainMemoryError),
        "service_down" => return Some(SignalKind::ServiceFailure),
        "blockdev_err" => return Some(SignalKind::BlockDeviceError),
        "unresponsive" => return Some(SignalKind::NodeUnresponsive),
        "power_fault" => return Some(SignalKind::PowerFault),
        "thermal_warn" => return Some(SignalKind::ThermalWarning),
        _ => {}
    }
    if let Some(code) = s.strip_prefix("xido") {
        return code
            .parse::<u16>()
            .ok()
            .map(|c| SignalKind::Xid(XidError::Other(c)));
    }
    if let Some(code) = s.strip_prefix("xid") {
        let xid = match code.parse::<u16>().ok()? {
            48 => XidError::DoubleBitEcc,
            64 => XidError::RowRemapFailure,
            74 => XidError::NvlinkError,
            79 => XidError::FallenOffBus,
            119 => XidError::GspTimeout,
            31 => XidError::MemoryPageFault,
            _ => return None,
        };
        return Some(SignalKind::Xid(xid));
    }
    None
}

fn parse_check(s: &str) -> Option<CheckKind> {
    CheckKind::ALL.iter().copied().find(|c| c.label() == s)
}

fn parse_symptom(s: &str) -> Option<FailureSymptom> {
    FailureSymptom::ALL.iter().copied().find(|x| x.label() == s)
}

fn node_event_kind_label(k: NodeEventKind) -> &'static str {
    match k {
        NodeEventKind::Drain => "drain",
        NodeEventKind::EnterRemediation => "enter_remediation",
        NodeEventKind::ExitRemediation => "exit_remediation",
        NodeEventKind::RepairAttemptFailed => "repair_attempt_failed",
        NodeEventKind::RepairEscalated => "repair_escalated",
        NodeEventKind::EnterProbation => "enter_probation",
        NodeEventKind::ProbationPassed => "probation_passed",
        NodeEventKind::ProbationFailed => "probation_failed",
        NodeEventKind::Quarantined => "quarantined",
    }
}

/// Version-gated kind parser: the v1 vocabulary rejects lifecycle kinds.
fn parse_node_event_kind(s: &str, version: u32) -> Option<NodeEventKind> {
    match s {
        "drain" => Some(NodeEventKind::Drain),
        "enter_remediation" => Some(NodeEventKind::EnterRemediation),
        "exit_remediation" => Some(NodeEventKind::ExitRemediation),
        _ if version < 2 => None,
        "repair_attempt_failed" => Some(NodeEventKind::RepairAttemptFailed),
        "repair_escalated" => Some(NodeEventKind::RepairEscalated),
        "enter_probation" => Some(NodeEventKind::EnterProbation),
        "probation_passed" => Some(NodeEventKind::ProbationPassed),
        "probation_failed" => Some(NodeEventKind::ProbationFailed),
        "quarantined" => Some(NodeEventKind::Quarantined),
        _ => None,
    }
}

/// Whether a view holds anything outside the version-1 vocabulary.
fn has_v2_content(view: &TelemetryView) -> bool {
    !view.ckpt_fallbacks().is_empty() || view.node_events().iter().any(|e| !e.kind.is_v1())
}

/// Writes a sealed view as a snapshot: version 1 when the view has no
/// version-2 content (keeping legacy runs byte-identical), version 2
/// otherwise.
///
/// # Errors
///
/// Propagates I/O errors from the writer; rejects cluster names containing
/// newlines (they would corrupt the line-oriented format).
pub fn write_snapshot<W: Write>(w: &mut W, view: &TelemetryView) -> io::Result<()> {
    if view.cluster_name().contains(['\n', '\r']) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cluster name contains a newline",
        ));
    }
    let v2 = has_v2_content(view);
    writeln!(w, "{}", if v2 { MAGIC_V2 } else { MAGIC_V1 })?;
    writeln!(w, "cluster {}", view.cluster_name())?;
    writeln!(w, "nodes {}", view.num_nodes())?;
    writeln!(w, "horizon {}", view.horizon().as_secs())?;
    writeln!(w, "gpu_swaps {}", view.gpu_swaps())?;

    writeln!(w, "jobs {}", view.jobs().len())?;
    for r in view.jobs() {
        writeln!(w, "{}", format_job_row(r))?;
    }

    writeln!(w, "health {}", view.health_events().len())?;
    for e in view.health_events() {
        writeln!(
            w,
            "{},{},{},{},{},{}",
            e.at.as_secs(),
            e.node.index(),
            e.check.label(),
            severity_label(e.severity),
            e.signal.map(signal_tag).unwrap_or_default(),
            u8::from(e.false_positive),
        )?;
    }

    writeln!(w, "node_events {}", view.node_events().len())?;
    for e in view.node_events() {
        writeln!(
            w,
            "{},{},{}",
            e.at.as_secs(),
            e.node.index(),
            node_event_kind_label(e.kind),
        )?;
    }

    writeln!(w, "exclusions {}", view.exclusions().len())?;
    for e in view.exclusions() {
        writeln!(w, "{},{},{}", e.at.as_secs(), e.node.index(), e.job.raw())?;
    }

    writeln!(w, "failures {}", view.ground_truth_failures().len())?;
    for e in view.ground_truth_failures() {
        writeln!(
            w,
            "{},{},{},{},{}",
            e.at.as_secs(),
            e.node.index(),
            e.mode.0,
            e.symptom.label(),
            u8::from(e.permanent),
        )?;
    }

    if v2 {
        writeln!(w, "ckpt_fallbacks {}", view.ckpt_fallbacks().len())?;
        for e in view.ckpt_fallbacks() {
            writeln!(
                w,
                "{},{},{},{},{}",
                e.at.as_secs(),
                e.job.raw(),
                e.gpus,
                e.intervals,
                e.lost.as_secs(),
            )?;
        }
    }

    writeln!(w, "end")?;
    Ok(())
}

struct Lines<R> {
    inner: io::Lines<R>,
    line_no: usize,
}

impl<R: BufRead> Lines<R> {
    fn next_line(&mut self) -> Result<String, SnapshotError> {
        self.line_no += 1;
        match self.inner.next() {
            Some(Ok(line)) => Ok(line),
            Some(Err(e)) => Err(SnapshotError::Io(e)),
            None => Err(SnapshotError::Parse {
                line: self.line_no,
                message: "unexpected end of snapshot".to_string(),
            }),
        }
    }

    fn err(&self, message: impl Into<String>) -> SnapshotError {
        SnapshotError::Parse {
            line: self.line_no,
            message: message.into(),
        }
    }
}

/// Expects `<keyword> <value>` and returns the value.
fn keyword_value<'a, R: BufRead>(
    lines: &Lines<R>,
    line: &'a str,
    keyword: &str,
) -> Result<&'a str, SnapshotError> {
    match line.split_once(' ') {
        Some((k, v)) if k == keyword => Ok(v),
        _ => Err(lines.err(format!("expected `{keyword} <value>`, got {line:?}"))),
    }
}

fn parse_count<R: BufRead>(lines: &Lines<R>, value: &str) -> Result<usize, SnapshotError> {
    value
        .parse::<usize>()
        .map_err(|_| lines.err(format!("bad count: {value:?}")))
}

fn parse_u64_field<R: BufRead>(
    lines: &Lines<R>,
    s: &str,
    what: &str,
) -> Result<u64, SnapshotError> {
    s.parse::<u64>()
        .map_err(|_| lines.err(format!("bad {what}: {s:?}")))
}

/// Reads a version-1 or version-2 snapshot into a sealed view.
///
/// # Errors
///
/// Returns [`SnapshotError::Parse`] with the 1-based line number on any
/// malformed or truncated input — never panics — and
/// [`SnapshotError::Io`] if the reader fails. Unknown versions and v2
/// vocabulary inside a v1 snapshot are rejected.
pub fn read_snapshot<R: BufRead>(r: R) -> Result<TelemetryView, SnapshotError> {
    let mut lines = Lines {
        inner: r.lines(),
        line_no: 0,
    };

    let magic = lines.next_line()?;
    let version = match magic.as_str() {
        m if m == MAGIC_V1 => 1,
        m if m == MAGIC_V2 => 2,
        _ => {
            return Err(lines.err(format!(
                "bad header: {magic:?} (expected {MAGIC_V1:?} or {MAGIC_V2:?})"
            )))
        }
    };
    let line = lines.next_line()?;
    let name = keyword_value(&lines, &line, "cluster")?.to_string();
    let line = lines.next_line()?;
    let num_nodes = parse_u64_field(&lines, keyword_value(&lines, &line, "nodes")?, "node count")?;
    let line = lines.next_line()?;
    let horizon = parse_u64_field(&lines, keyword_value(&lines, &line, "horizon")?, "horizon")?;
    let line = lines.next_line()?;
    let gpu_swaps = parse_u64_field(
        &lines,
        keyword_value(&lines, &line, "gpu_swaps")?,
        "gpu_swaps",
    )?;

    let mut store = TelemetryStore::new(name, num_nodes as u32);
    store.set_horizon(SimTime::from_secs(horizon));
    store.set_gpu_swaps(gpu_swaps);

    let line = lines.next_line()?;
    let count = parse_count(&lines, keyword_value(&lines, &line, "jobs")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let record = parse_job_row(&row, lines.line_no)
            .map_err(|e| lines.err(format!("bad job row: {}", e.message)))?;
        store.push_job(record);
    }

    let line = lines.next_line()?;
    let count = parse_count(&lines, keyword_value(&lines, &line, "health")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 6 {
            return Err(lines.err(format!("health row needs 6 fields, got {}", fields.len())));
        }
        let signal = if fields[4].is_empty() {
            None
        } else {
            Some(
                parse_signal(fields[4])
                    .ok_or_else(|| lines.err(format!("bad signal: {:?}", fields[4])))?,
            )
        };
        store.push_health_event(HealthEvent {
            at: SimTime::from_secs(parse_u64_field(&lines, fields[0], "time")?),
            node: NodeId::new(parse_u64_field(&lines, fields[1], "node")? as u32),
            check: parse_check(fields[2])
                .ok_or_else(|| lines.err(format!("bad check: {:?}", fields[2])))?,
            severity: parse_severity(fields[3])
                .ok_or_else(|| lines.err(format!("bad severity: {:?}", fields[3])))?,
            signal,
            false_positive: parse_bool_field(&lines, fields[5])?,
        });
    }

    let line = lines.next_line()?;
    let count = parse_count(&lines, keyword_value(&lines, &line, "node_events")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 3 {
            return Err(lines.err(format!(
                "node_event row needs 3 fields, got {}",
                fields.len()
            )));
        }
        store.push_node_event(NodeEvent {
            at: SimTime::from_secs(parse_u64_field(&lines, fields[0], "time")?),
            node: NodeId::new(parse_u64_field(&lines, fields[1], "node")? as u32),
            kind: parse_node_event_kind(fields[2], version)
                .ok_or_else(|| lines.err(format!("bad node event kind: {:?}", fields[2])))?,
        });
    }

    let line = lines.next_line()?;
    let count = parse_count(&lines, keyword_value(&lines, &line, "exclusions")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 3 {
            return Err(lines.err(format!(
                "exclusion row needs 3 fields, got {}",
                fields.len()
            )));
        }
        store.push_exclusion(ExclusionEvent {
            at: SimTime::from_secs(parse_u64_field(&lines, fields[0], "time")?),
            node: NodeId::new(parse_u64_field(&lines, fields[1], "node")? as u32),
            job: JobId::new(parse_u64_field(&lines, fields[2], "job")?),
        });
    }

    let line = lines.next_line()?;
    let count = parse_count(&lines, keyword_value(&lines, &line, "failures")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 5 {
            return Err(lines.err(format!("failure row needs 5 fields, got {}", fields.len())));
        }
        store.push_ground_truth(FailureEvent {
            at: SimTime::from_secs(parse_u64_field(&lines, fields[0], "time")?),
            node: NodeId::new(parse_u64_field(&lines, fields[1], "node")? as u32),
            mode: ModeId(parse_u64_field(&lines, fields[2], "mode")? as usize),
            symptom: parse_symptom(fields[3])
                .ok_or_else(|| lines.err(format!("bad symptom: {:?}", fields[3])))?,
            permanent: parse_bool_field(&lines, fields[4])?,
        });
    }

    if version >= 2 {
        let line = lines.next_line()?;
        let count = parse_count(&lines, keyword_value(&lines, &line, "ckpt_fallbacks")?)?;
        for _ in 0..count {
            let row = lines.next_line()?;
            let fields: Vec<&str> = row.split(',').collect();
            if fields.len() != 5 {
                return Err(lines.err(format!(
                    "ckpt_fallback row needs 5 fields, got {}",
                    fields.len()
                )));
            }
            store.push_ckpt_fallback(CheckpointFallbackEvent {
                at: SimTime::from_secs(parse_u64_field(&lines, fields[0], "time")?),
                job: JobId::new(parse_u64_field(&lines, fields[1], "job")?),
                gpus: parse_u64_field(&lines, fields[2], "gpus")? as u32,
                intervals: parse_u64_field(&lines, fields[3], "intervals")? as u32,
                lost: SimDuration::from_secs(parse_u64_field(&lines, fields[4], "lost")?),
            });
        }
    }

    let line = lines.next_line()?;
    if line != "end" {
        return Err(lines.err(format!("expected `end`, got {line:?}")));
    }
    Ok(store.seal())
}

fn parse_bool_field<R: BufRead>(lines: &Lines<R>, s: &str) -> Result<bool, SnapshotError> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(lines.err(format!("bad bool: {s:?}"))),
    }
}

/// Writes a snapshot to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_snapshot_file(path: &Path, view: &TelemetryView) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut buf = Vec::new();
    write_snapshot(&mut buf, view)?;
    fs::write(path, buf)
}

/// Loads a snapshot from `path`.
///
/// # Errors
///
/// Returns [`SnapshotError`] on I/O failure or malformed content.
pub fn load_snapshot_file(path: &Path) -> Result<TelemetryView, SnapshotError> {
    let file = fs::File::open(path)?;
    read_snapshot(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::JobRunId;
    use rsc_sched::accounting::JobRecord;
    use rsc_sched::job::{JobStatus, QosClass};

    fn sample_view() -> TelemetryView {
        let mut store = TelemetryStore::new("RSC-T", 16);
        store.set_horizon(SimTime::from_hours(24));
        store.set_gpu_swaps(5);
        store.push_job(JobRecord {
            job: JobId::new(7),
            attempt: 1,
            run: Some(JobRunId::new(3)),
            gpus: 16,
            qos: QosClass::High,
            nodes: vec![NodeId::new(0), NodeId::new(4)],
            enqueued_at: SimTime::from_secs(10),
            started_at: Some(SimTime::from_secs(60)),
            ended_at: SimTime::from_secs(5000),
            status: JobStatus::NodeFail,
            preempted_by: None,
            instigator: Some(JobId::new(2)),
        });
        store.push_health_event(HealthEvent {
            at: SimTime::from_secs(120),
            node: NodeId::new(4),
            check: CheckKind::GpuMemory,
            severity: Severity::High,
            signal: Some(SignalKind::Xid(XidError::DoubleBitEcc)),
            false_positive: false,
        });
        store.push_health_event(HealthEvent {
            at: SimTime::from_secs(130),
            node: NodeId::new(4),
            check: CheckKind::GpuDriver,
            severity: Severity::Low,
            signal: Some(SignalKind::Xid(XidError::Other(48))),
            false_positive: true,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(140),
            kind: NodeEventKind::EnterRemediation,
        });
        store.push_exclusion(ExclusionEvent {
            node: NodeId::new(4),
            job: JobId::new(7),
            at: SimTime::from_secs(150),
        });
        store.push_ground_truth(FailureEvent {
            at: SimTime::from_secs(115),
            node: NodeId::new(4),
            mode: ModeId(2),
            symptom: FailureSymptom::GpuMemoryError,
            permanent: true,
        });
        store.seal()
    }

    fn to_bytes(view: &TelemetryView) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, view).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let view = sample_view();
        let bytes = to_bytes(&view);
        let back = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(to_bytes(&back), bytes);
        assert_eq!(back.jobs(), view.jobs());
        assert_eq!(back.health_events(), view.health_events());
        assert_eq!(back.node_events(), view.node_events());
        assert_eq!(back.exclusions(), view.exclusions());
        assert_eq!(back.ground_truth_failures(), view.ground_truth_failures());
        assert_eq!(back.gpu_swaps(), view.gpu_swaps());
        assert_eq!(back.horizon(), view.horizon());
        assert_eq!(back.cluster_name(), view.cluster_name());
        assert_eq!(back.num_nodes(), view.num_nodes());
    }

    #[test]
    fn named_and_other_xids_stay_distinct() {
        let view = sample_view();
        let back = read_snapshot(to_bytes(&view).as_slice()).unwrap();
        let signals: Vec<Option<SignalKind>> =
            back.health_events().iter().map(|e| e.signal).collect();
        assert_eq!(signals[0], Some(SignalKind::Xid(XidError::DoubleBitEcc)));
        assert_eq!(signals[1], Some(SignalKind::Xid(XidError::Other(48))));
    }

    #[test]
    fn empty_store_round_trips() {
        let view = TelemetryStore::new("empty", 0).seal();
        let bytes = to_bytes(&view);
        let back = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(to_bytes(&back), bytes);
        assert!(back.jobs().is_empty());
    }

    #[test]
    fn truncated_input_is_a_clean_error() {
        let bytes = to_bytes(&sample_view());
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 5] {
            let err = read_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Parse { .. }),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_fields_error_with_line_numbers() {
        let text = String::from_utf8(to_bytes(&sample_view())).unwrap();
        let corrupted = text.replace("gpu_memory", "not_a_check");
        let err = read_snapshot(corrupted.as_bytes()).unwrap_err();
        match err {
            SnapshotError::Parse { line, message } => {
                assert!(line > 0);
                assert!(message.contains("bad"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let err = read_snapshot("some other file\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    /// A view with v2 content: lifecycle node events plus one checkpoint
    /// fallback.
    fn sample_v2_view() -> TelemetryView {
        let base = sample_view();
        let mut store = base.to_store();
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(200),
            kind: NodeEventKind::RepairAttemptFailed,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(210),
            kind: NodeEventKind::RepairEscalated,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(400),
            kind: NodeEventKind::EnterProbation,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(500),
            kind: NodeEventKind::ProbationFailed,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(900),
            kind: NodeEventKind::Quarantined,
        });
        store.push_ckpt_fallback(CheckpointFallbackEvent {
            at: SimTime::from_secs(600),
            job: JobId::new(7),
            gpus: 16,
            intervals: 2,
            lost: SimDuration::from_hours(2),
        });
        store.seal()
    }

    #[test]
    fn v1_views_still_write_the_v1_magic() {
        let bytes = to_bytes(&sample_view());
        let first = bytes.split(|&b| b == b'\n').next().unwrap();
        assert_eq!(first, MAGIC_V1.as_bytes());
        assert!(!String::from_utf8(bytes).unwrap().contains("ckpt_fallbacks"));
    }

    #[test]
    fn v2_round_trip_is_byte_identical() {
        let view = sample_v2_view();
        let bytes = to_bytes(&view);
        let first = bytes.split(|&b| b == b'\n').next().unwrap();
        assert_eq!(first, MAGIC_V2.as_bytes());
        let back = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(to_bytes(&back), bytes);
        assert_eq!(back.node_events(), view.node_events());
        assert_eq!(back.ckpt_fallbacks(), view.ckpt_fallbacks());
    }

    #[test]
    fn v1_header_rejects_v2_event_kinds() {
        let text = String::from_utf8(to_bytes(&sample_v2_view())).unwrap();
        // Forge a v1 header onto a stream carrying v2 vocabulary: the
        // version-gated parser must refuse the lifecycle kind.
        let forged = text.replace(MAGIC_V2, MAGIC_V1);
        let err = read_snapshot(forged.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("bad node event kind"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn unknown_kind_tag_rejected_in_v2() {
        let text = String::from_utf8(to_bytes(&sample_v2_view())).unwrap();
        let corrupted = text.replace("repair_escalated", "warp_drive_realigned");
        let err = read_snapshot(corrupted.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad node event kind"), "{err}");
    }

    #[test]
    fn unknown_version_rejected() {
        let text = String::from_utf8(to_bytes(&sample_v2_view())).unwrap();
        let bumped = text.replace(MAGIC_V2, "rsc-telemetry-snapshot v3");
        let err = read_snapshot(bumped.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad header"), "{err}");
    }

    #[test]
    fn truncated_v2_stream_is_a_clean_error() {
        let bytes = to_bytes(&sample_v2_view());
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 5] {
            let err = read_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Parse { .. }),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn v2_requires_ckpt_fallbacks_section() {
        let text = String::from_utf8(to_bytes(&sample_v2_view())).unwrap();
        // Drop the ckpt_fallbacks section entirely: the v2 reader must not
        // silently accept a v1-shaped body.
        let gutted: String = text
            .lines()
            .filter(|l| !l.starts_with("ckpt_fallbacks") && !l.starts_with("600,7,"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = read_snapshot(gutted.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("expected `ckpt_fallbacks"),
            "{err}"
        );
    }

    #[test]
    fn corrupt_fallback_row_rejected() {
        let text = String::from_utf8(to_bytes(&sample_v2_view())).unwrap();
        let corrupted = text.replace("600,7,16,2,7200", "600,7,sixteen,2,7200");
        let err = read_snapshot(corrupted.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad gpus"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("rsc-snap-test-{}", std::process::id()));
        let path = dir.join("sample.snap");
        let view = sample_view();
        save_snapshot_file(&path, &view).unwrap();
        let back = load_snapshot_file(&path).unwrap();
        assert_eq!(to_bytes(&back), to_bytes(&view));
        let _ = fs::remove_dir_all(&dir);
    }
}
