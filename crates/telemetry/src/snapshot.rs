//! Versioned on-disk snapshots of sealed telemetry.
//!
//! A snapshot is the cacheable artifact of one simulated run: every stream
//! a [`TelemetryView`] holds, in a hand-rolled, line-oriented text format in
//! the same spirit as the `sacct`-style job trace (`trace.rs`) — no external
//! serialization crates. The encoding is canonical, so
//! `write → read → write` reproduces the original bytes exactly; the
//! scenario runner relies on this to prove cache hits are byte-identical to
//! fresh simulation.
//!
//! Layout (versions 3 and 4, the formats [`write_snapshot`] emits):
//!
//! ```text
//! rsc-telemetry-snapshot v3
//! cluster <name>
//! nodes <u32>
//! horizon <seconds>
//! gpu_swaps <u64>
//! frame_rows 4096
//! jobs <count>           — framed rows, trace format
//! frame <rows> <hash>    — then <rows> record rows
//! ...
//! health <count>         — at,node,check,severity,signal,false_positive
//! node_events <count>    — at,node,kind
//! exclusions <count>     — at,node,job
//! failures <count>       — at,node,mode,symptom,permanent
//! ckpt_fallbacks <count> — at,job,gpus,intervals,lost
//! chain <hash>
//! end
//! ```
//!
//! Each stream is split into *frames* of `frame_rows` rows (all frames full
//! except possibly the last). A frame line carries the stream's running
//! [`ChainHasher`] digest *after* the frame's rows, chained from
//! [`GENESIS`]; the reader re-hashes every parsed row and rejects any frame
//! whose checkpoint does not match ([`SnapshotError::Chain`]), catching bit
//! flips, truncation, frame reordering, and cross-snapshot splices. The
//! trailing `chain` line covers the header fields plus every stream head.
//! Frame geometry is fixed at [`SNAPSHOT_FRAME_ROWS`] no matter what
//! segment capacity the in-memory store rotated at, so the same records
//! always serialize to the same bytes.
//!
//! Version 4 adds one framed section, `control_actions <count>`
//! (at,kind,trigger,node,job,accepted,value), after `ckpt_fallbacks`, and
//! folds its head into the trailing `chain`. The writer emits v4 only for
//! views that actually contain control actions; any open-loop run keeps
//! producing bytes identical to the version-3 format, which is what pins
//! controller-disabled runs to their pre-control snapshots.
//!
//! Versions 1 and 2 (the unframed, unhashed legacy formats — v2 added the
//! fallible-remediation vocabulary and the `ckpt_fallbacks` section to v1)
//! remain fully readable; `write_snapshot_legacy` keeps emitting them for
//! the back-compat fixtures.

use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use rsc_sim_core::time::SimTime;

use crate::chain::{ChainHasher, ChainRecord, GENESIS};
use crate::rows;
use crate::store::TelemetryStore;
use crate::view::TelemetryView;

/// Highest format version [`write_snapshot`] emits; bumped on any change
/// to the encoding. Participates in the scenario-cache fingerprint so
/// stale artifacts are never loaded by a newer binary.
pub const SNAPSHOT_VERSION: u32 = 4;

/// Rows per frame in a framed (v3/v4) snapshot. A format constant:
/// changing it changes the emitted bytes and requires a version bump.
pub const SNAPSHOT_FRAME_ROWS: usize = 4096;

const MAGIC_V1: &str = "rsc-telemetry-snapshot v1";
const MAGIC_V2: &str = "rsc-telemetry-snapshot v2";
const MAGIC_V3: &str = "rsc-telemetry-snapshot v3";
const MAGIC_V4: &str = "rsc-telemetry-snapshot v4";

/// Error from loading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The snapshot text is malformed; `line` is 1-based.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A version-3 chain checkpoint did not match the re-hashed records —
    /// the snapshot was corrupted, reordered, or spliced.
    Chain {
        /// 1-based line number of the last row covered by the checkpoint.
        line: usize,
        /// Which stream failed (`"combined"` for the trailing chain line).
        stream: String,
        /// 0-based frame ordinal within the stream.
        frame: u64,
        /// The checkpoint digest recorded in the snapshot.
        expected: u64,
        /// The digest of the records actually read.
        actual: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Parse { line, message } => {
                write!(f, "snapshot line {line}: {message}")
            }
            SnapshotError::Chain {
                line,
                stream,
                frame,
                expected,
                actual,
            } => write!(
                f,
                "snapshot line {line}: {stream} frame {frame} chain mismatch \
                 (expected {expected:016x}, got {actual:016x})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Whether a view holds anything outside the version-1 vocabulary.
fn has_v2_content(view: &TelemetryView) -> bool {
    !view.ckpt_fallbacks().is_empty() || view.node_events().iter().any(|e| !e.kind.is_v1())
}

/// Whether a view needs the version-4 format (closed-loop control
/// actions). Open-loop views keep the version-3 bytes.
fn has_v4_content(view: &TelemetryView) -> bool {
    !view.control_actions().is_empty()
}

fn reject_newline_name(view: &TelemetryView) -> io::Result<()> {
    if view.cluster_name().contains(['\n', '\r']) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cluster name contains a newline",
        ));
    }
    Ok(())
}

/// Writes one framed v3 stream section and returns its chain head.
fn write_section<W: Write, T: ChainRecord>(
    w: &mut W,
    name: &str,
    records: &[T],
    frame_rows: usize,
    encode: impl Fn(&T) -> String,
) -> io::Result<u64> {
    writeln!(w, "{name} {}", records.len())?;
    let mut h = ChainHasher::new(GENESIS);
    for chunk in records.chunks(frame_rows) {
        for r in chunk {
            r.chain(&mut h);
        }
        writeln!(w, "frame {} {:016x}", chunk.len(), h.digest())?;
        for r in chunk {
            writeln!(w, "{}", encode(r))?;
        }
    }
    Ok(h.digest())
}

fn combined_chain(view: &TelemetryView, frame_rows: usize, heads: &[u64]) -> u64 {
    let mut h = ChainHasher::new(GENESIS);
    h.write_bytes(view.cluster_name().as_bytes());
    h.write_u64(u64::from(view.num_nodes()));
    h.write_u64(view.horizon().as_secs());
    h.write_u64(view.gpu_swaps());
    h.write_u64(frame_rows as u64);
    for &head in heads {
        h.write_u64(head);
    }
    h.digest()
}

/// Writes a sealed view as a framed snapshot: chain checkpoints every
/// [`SNAPSHOT_FRAME_ROWS`] rows, a combined chain head, and byte-for-byte
/// canonical output independent of the segment capacity the run's store
/// rotated at. Views without control actions serialize as version 3 —
/// bitwise identical to the pre-control format — and views with them as
/// version 4.
///
/// # Errors
///
/// Propagates I/O errors from the writer; rejects cluster names containing
/// newlines (they would corrupt the line-oriented format).
pub fn write_snapshot<W: Write>(w: &mut W, view: &TelemetryView) -> io::Result<()> {
    write_snapshot_with_frame_rows(w, view, SNAPSHOT_FRAME_ROWS)
}

/// [`write_snapshot`] with a caller-chosen frame geometry. Only the
/// canonical [`SNAPSHOT_FRAME_ROWS`] produces cacheable artifacts; other
/// values exist for corruption/robustness tests that need many small
/// frames without millions of records.
#[doc(hidden)]
pub fn write_snapshot_with_frame_rows<W: Write>(
    w: &mut W,
    view: &TelemetryView,
    frame_rows: usize,
) -> io::Result<()> {
    assert!(frame_rows >= 1, "frame_rows must be positive");
    reject_newline_name(view)?;
    let v4 = has_v4_content(view);
    writeln!(w, "{}", if v4 { MAGIC_V4 } else { MAGIC_V3 })?;
    writeln!(w, "cluster {}", view.cluster_name())?;
    writeln!(w, "nodes {}", view.num_nodes())?;
    writeln!(w, "horizon {}", view.horizon().as_secs())?;
    writeln!(w, "gpu_swaps {}", view.gpu_swaps())?;
    writeln!(w, "frame_rows {frame_rows}")?;
    let mut heads = vec![
        write_section(w, "jobs", view.jobs(), frame_rows, rows::encode_job)?,
        write_section(
            w,
            "health",
            view.health_events(),
            frame_rows,
            rows::encode_health,
        )?,
        write_section(
            w,
            "node_events",
            view.node_events(),
            frame_rows,
            rows::encode_node_event,
        )?,
        write_section(
            w,
            "exclusions",
            view.exclusions(),
            frame_rows,
            rows::encode_exclusion,
        )?,
        write_section(
            w,
            "failures",
            view.ground_truth_failures(),
            frame_rows,
            rows::encode_failure,
        )?,
        write_section(
            w,
            "ckpt_fallbacks",
            view.ckpt_fallbacks(),
            frame_rows,
            rows::encode_ckpt_fallback,
        )?,
    ];
    if v4 {
        heads.push(write_section(
            w,
            "control_actions",
            view.control_actions(),
            frame_rows,
            rows::encode_control_action,
        )?);
    }
    writeln!(w, "chain {:016x}", combined_chain(view, frame_rows, &heads))?;
    writeln!(w, "end")?;
    Ok(())
}

/// Writes the legacy (version 1 or 2) snapshot encoding: version 1 when
/// the view has no version-2 content, version 2 otherwise. Kept so the
/// checked-in back-compat fixtures can be regenerated and verified; new
/// artifacts should use [`write_snapshot`].
///
/// # Errors
///
/// Propagates I/O errors from the writer; rejects cluster names containing
/// newlines.
#[doc(hidden)]
pub fn write_snapshot_legacy<W: Write>(w: &mut W, view: &TelemetryView) -> io::Result<()> {
    reject_newline_name(view)?;
    let v2 = has_v2_content(view);
    writeln!(w, "{}", if v2 { MAGIC_V2 } else { MAGIC_V1 })?;
    writeln!(w, "cluster {}", view.cluster_name())?;
    writeln!(w, "nodes {}", view.num_nodes())?;
    writeln!(w, "horizon {}", view.horizon().as_secs())?;
    writeln!(w, "gpu_swaps {}", view.gpu_swaps())?;

    writeln!(w, "jobs {}", view.jobs().len())?;
    for r in view.jobs() {
        writeln!(w, "{}", rows::encode_job(r))?;
    }
    writeln!(w, "health {}", view.health_events().len())?;
    for e in view.health_events() {
        writeln!(w, "{}", rows::encode_health(e))?;
    }
    writeln!(w, "node_events {}", view.node_events().len())?;
    for e in view.node_events() {
        writeln!(w, "{}", rows::encode_node_event(e))?;
    }
    writeln!(w, "exclusions {}", view.exclusions().len())?;
    for e in view.exclusions() {
        writeln!(w, "{}", rows::encode_exclusion(e))?;
    }
    writeln!(w, "failures {}", view.ground_truth_failures().len())?;
    for e in view.ground_truth_failures() {
        writeln!(w, "{}", rows::encode_failure(e))?;
    }
    if v2 {
        writeln!(w, "ckpt_fallbacks {}", view.ckpt_fallbacks().len())?;
        for e in view.ckpt_fallbacks() {
            writeln!(w, "{}", rows::encode_ckpt_fallback(e))?;
        }
    }
    writeln!(w, "end")?;
    Ok(())
}

struct Lines<R> {
    inner: io::Lines<R>,
    line_no: usize,
}

impl<R: BufRead> Lines<R> {
    fn next_line(&mut self) -> Result<String, SnapshotError> {
        self.line_no += 1;
        match self.inner.next() {
            Some(Ok(line)) => Ok(line),
            Some(Err(e)) => Err(SnapshotError::Io(e)),
            None => Err(SnapshotError::Parse {
                line: self.line_no,
                message: "unexpected end of snapshot".to_string(),
            }),
        }
    }

    fn err(&self, message: impl Into<String>) -> SnapshotError {
        SnapshotError::Parse {
            line: self.line_no,
            message: message.into(),
        }
    }
}

/// Expects `<keyword> <value>` and returns the value.
fn keyword_value<'a, R: BufRead>(
    lines: &Lines<R>,
    line: &'a str,
    keyword: &str,
) -> Result<&'a str, SnapshotError> {
    match line.split_once(' ') {
        Some((k, v)) if k == keyword => Ok(v),
        _ => Err(lines.err(format!("expected `{keyword} <value>`, got {line:?}"))),
    }
}

fn parse_count<R: BufRead>(lines: &Lines<R>, value: &str) -> Result<usize, SnapshotError> {
    value
        .parse::<usize>()
        .map_err(|_| lines.err(format!("bad count: {value:?}")))
}

fn parse_u64_field<R: BufRead>(
    lines: &Lines<R>,
    s: &str,
    what: &str,
) -> Result<u64, SnapshotError> {
    s.parse::<u64>()
        .map_err(|_| lines.err(format!("bad {what}: {s:?}")))
}

fn parse_hash<R: BufRead>(lines: &Lines<R>, s: &str) -> Result<u64, SnapshotError> {
    // Strictly lowercase, exactly 16 digits: the writer's canonical form.
    // `from_str_radix` alone would accept uppercase too, letting a
    // byte-different snapshot parse to the same digest.
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err(lines.err(format!(
            "bad chain hash (need 16 lowercase hex digits): {s:?}"
        )));
    }
    u64::from_str_radix(s, 16).map_err(|_| lines.err(format!("bad chain hash: {s:?}")))
}

/// Reads one framed v3 section, verifying every frame checkpoint, and
/// returns the stream's chain head.
fn read_section_v3<R: BufRead, T: ChainRecord>(
    lines: &mut Lines<R>,
    name: &str,
    frame_rows: usize,
    decode: impl Fn(&str) -> Result<T, String>,
    mut push: impl FnMut(T),
) -> Result<u64, SnapshotError> {
    let line = lines.next_line()?;
    let count = parse_count(lines, keyword_value(lines, &line, name)?)?;
    let mut h = ChainHasher::new(GENESIS);
    let mut consumed = 0usize;
    let mut frame = 0u64;
    while consumed < count {
        let line = lines.next_line()?;
        let spec = keyword_value(lines, &line, "frame")?;
        let (rows_str, hash_str) = spec
            .split_once(' ')
            .ok_or_else(|| lines.err(format!("expected `frame <rows> <hash>`, got {line:?}")))?;
        let rows = parse_count(lines, rows_str)?;
        let expected = parse_hash(lines, hash_str)?;
        if rows == 0 || rows > frame_rows {
            return Err(lines.err(format!("frame of {rows} rows outside 1..={frame_rows}")));
        }
        if consumed + rows < count && rows != frame_rows {
            return Err(lines.err(format!(
                "non-final frame has {rows} rows, expected {frame_rows}"
            )));
        }
        if consumed + rows > count {
            return Err(lines.err(format!(
                "frame overruns section: {consumed}+{rows} rows of {count}"
            )));
        }
        for _ in 0..rows {
            let row = lines.next_line()?;
            let record = decode(&row).map_err(|msg| lines.err(msg))?;
            record.chain(&mut h);
            push(record);
        }
        let actual = h.digest();
        if actual != expected {
            return Err(SnapshotError::Chain {
                line: lines.line_no,
                stream: name.to_string(),
                frame,
                expected,
                actual,
            });
        }
        consumed += rows;
        frame += 1;
    }
    Ok(h.digest())
}

/// Reads a snapshot (any supported version) into a sealed view.
///
/// # Errors
///
/// Returns [`SnapshotError::Parse`] with the 1-based line number on any
/// malformed or truncated input — never panics — and
/// [`SnapshotError::Io`] if the reader fails. Version-3 inputs are
/// chain-verified frame by frame; any checkpoint mismatch is a
/// [`SnapshotError::Chain`]. Unknown versions and v2 vocabulary inside a
/// v1 snapshot are rejected.
pub fn read_snapshot<R: BufRead>(r: R) -> Result<TelemetryView, SnapshotError> {
    let mut lines = Lines {
        inner: r.lines(),
        line_no: 0,
    };

    let magic = lines.next_line()?;
    let version = match magic.as_str() {
        m if m == MAGIC_V1 => 1,
        m if m == MAGIC_V2 => 2,
        m if m == MAGIC_V3 => 3,
        m if m == MAGIC_V4 => 4,
        _ => {
            return Err(lines.err(format!(
                "bad header: {magic:?} (expected {MAGIC_V1:?}, {MAGIC_V2:?}, {MAGIC_V3:?}, \
                 or {MAGIC_V4:?})"
            )))
        }
    };
    let line = lines.next_line()?;
    let name = keyword_value(&lines, &line, "cluster")?.to_string();
    let line = lines.next_line()?;
    let num_nodes = parse_u64_field(&lines, keyword_value(&lines, &line, "nodes")?, "node count")?;
    let line = lines.next_line()?;
    let horizon = parse_u64_field(&lines, keyword_value(&lines, &line, "horizon")?, "horizon")?;
    let line = lines.next_line()?;
    let gpu_swaps = parse_u64_field(
        &lines,
        keyword_value(&lines, &line, "gpu_swaps")?,
        "gpu_swaps",
    )?;

    let mut store = TelemetryStore::new(name, num_nodes as u32);
    store.set_horizon(SimTime::from_secs(horizon));
    store.set_gpu_swaps(gpu_swaps);

    if version >= 3 {
        read_snapshot_framed_body(&mut lines, &mut store, version)?;
    } else {
        read_snapshot_legacy_body(&mut lines, &mut store, version)?;
    }

    let line = lines.next_line()?;
    if line != "end" {
        return Err(lines.err(format!("expected `end`, got {line:?}")));
    }
    Ok(store.seal())
}

fn read_snapshot_framed_body<R: BufRead>(
    lines: &mut Lines<R>,
    store: &mut TelemetryStore,
    version: u32,
) -> Result<(), SnapshotError> {
    let line = lines.next_line()?;
    let frame_rows = parse_count(lines, keyword_value(lines, &line, "frame_rows")?)?;
    if frame_rows == 0 {
        return Err(lines.err("frame_rows must be positive"));
    }

    let mut heads = vec![
        read_section_v3(lines, "jobs", frame_rows, rows::decode_job, |r| {
            store.push_job(r)
        })?,
        read_section_v3(lines, "health", frame_rows, rows::decode_health, |e| {
            store.push_health_event(e)
        })?,
        read_section_v3(
            lines,
            "node_events",
            frame_rows,
            |row| rows::decode_node_event(row, version),
            |e| store.push_node_event(e),
        )?,
        read_section_v3(
            lines,
            "exclusions",
            frame_rows,
            rows::decode_exclusion,
            |e| store.push_exclusion(e),
        )?,
        read_section_v3(lines, "failures", frame_rows, rows::decode_failure, |e| {
            store.push_ground_truth(e)
        })?,
        read_section_v3(
            lines,
            "ckpt_fallbacks",
            frame_rows,
            rows::decode_ckpt_fallback,
            |e| store.push_ckpt_fallback(e),
        )?,
    ];
    if version >= 4 {
        heads.push(read_section_v3(
            lines,
            "control_actions",
            frame_rows,
            rows::decode_control_action,
            |e| store.push_control_action(e),
        )?);
    }

    let line = lines.next_line()?;
    let expected = parse_hash(lines, keyword_value(lines, &line, "chain")?)?;
    let mut h = ChainHasher::new(GENESIS);
    h.write_bytes(store.cluster_name().as_bytes());
    h.write_u64(u64::from(store.num_nodes()));
    h.write_u64(store.horizon().as_secs());
    h.write_u64(store.gpu_swaps());
    h.write_u64(frame_rows as u64);
    for head in heads {
        h.write_u64(head);
    }
    let actual = h.digest();
    if actual != expected {
        return Err(SnapshotError::Chain {
            line: lines.line_no,
            stream: "combined".to_string(),
            frame: 0,
            expected,
            actual,
        });
    }
    Ok(())
}

fn read_snapshot_legacy_body<R: BufRead>(
    lines: &mut Lines<R>,
    store: &mut TelemetryStore,
    version: u32,
) -> Result<(), SnapshotError> {
    let line = lines.next_line()?;
    let count = parse_count(lines, keyword_value(lines, &line, "jobs")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let record = rows::decode_job(&row).map_err(|msg| lines.err(msg))?;
        store.push_job(record);
    }

    let line = lines.next_line()?;
    let count = parse_count(lines, keyword_value(lines, &line, "health")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let event = rows::decode_health(&row).map_err(|msg| lines.err(msg))?;
        store.push_health_event(event);
    }

    let line = lines.next_line()?;
    let count = parse_count(lines, keyword_value(lines, &line, "node_events")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let event = rows::decode_node_event(&row, version).map_err(|msg| lines.err(msg))?;
        store.push_node_event(event);
    }

    let line = lines.next_line()?;
    let count = parse_count(lines, keyword_value(lines, &line, "exclusions")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let event = rows::decode_exclusion(&row).map_err(|msg| lines.err(msg))?;
        store.push_exclusion(event);
    }

    let line = lines.next_line()?;
    let count = parse_count(lines, keyword_value(lines, &line, "failures")?)?;
    for _ in 0..count {
        let row = lines.next_line()?;
        let event = rows::decode_failure(&row).map_err(|msg| lines.err(msg))?;
        store.push_ground_truth(event);
    }

    if version >= 2 {
        let line = lines.next_line()?;
        let count = parse_count(lines, keyword_value(lines, &line, "ckpt_fallbacks")?)?;
        for _ in 0..count {
            let row = lines.next_line()?;
            let event = rows::decode_ckpt_fallback(&row).map_err(|msg| lines.err(msg))?;
            store.push_ckpt_fallback(event);
        }
    }
    Ok(())
}

/// Writes a snapshot to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_snapshot_file(path: &Path, view: &TelemetryView) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut buf = Vec::new();
    write_snapshot(&mut buf, view)?;
    fs::write(path, buf)
}

/// Loads a snapshot from `path`.
///
/// # Errors
///
/// Returns [`SnapshotError`] on I/O failure or malformed content.
pub fn load_snapshot_file(path: &Path) -> Result<TelemetryView, SnapshotError> {
    let file = fs::File::open(path)?;
    read_snapshot(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::gpu::XidError;
    use rsc_cluster::ids::{JobId, JobRunId, NodeId};
    use rsc_failure::injector::FailureEvent;
    use rsc_failure::modes::{ModeId, Severity};
    use rsc_failure::signals::SignalKind;
    use rsc_failure::taxonomy::FailureSymptom;
    use rsc_health::check::CheckKind;
    use rsc_health::monitor::HealthEvent;
    use rsc_sched::accounting::JobRecord;
    use rsc_sched::job::{JobStatus, QosClass};
    use rsc_sim_core::time::SimDuration;

    use crate::store::{
        CheckpointFallbackEvent, ControlActionEvent, ControlActionKind, ControlTrigger,
        ExclusionEvent, NodeEvent, NodeEventKind,
    };

    fn sample_view() -> TelemetryView {
        let mut store = TelemetryStore::new("RSC-T", 16);
        store.set_horizon(SimTime::from_hours(24));
        store.set_gpu_swaps(5);
        store.push_job(JobRecord {
            job: JobId::new(7),
            attempt: 1,
            run: Some(JobRunId::new(3)),
            gpus: 16,
            qos: QosClass::High,
            nodes: vec![NodeId::new(0), NodeId::new(4)],
            enqueued_at: SimTime::from_secs(10),
            started_at: Some(SimTime::from_secs(60)),
            ended_at: SimTime::from_secs(5000),
            status: JobStatus::NodeFail,
            preempted_by: None,
            instigator: Some(JobId::new(2)),
        });
        store.push_health_event(HealthEvent {
            at: SimTime::from_secs(120),
            node: NodeId::new(4),
            check: CheckKind::GpuMemory,
            severity: Severity::High,
            signal: Some(SignalKind::Xid(XidError::DoubleBitEcc)),
            false_positive: false,
        });
        store.push_health_event(HealthEvent {
            at: SimTime::from_secs(130),
            node: NodeId::new(4),
            check: CheckKind::GpuDriver,
            severity: Severity::Low,
            signal: Some(SignalKind::Xid(XidError::Other(48))),
            false_positive: true,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(140),
            kind: NodeEventKind::EnterRemediation,
        });
        store.push_exclusion(ExclusionEvent {
            node: NodeId::new(4),
            job: JobId::new(7),
            at: SimTime::from_secs(150),
        });
        store.push_ground_truth(FailureEvent {
            at: SimTime::from_secs(115),
            node: NodeId::new(4),
            mode: ModeId(2),
            symptom: FailureSymptom::GpuMemoryError,
            permanent: true,
        });
        store.seal()
    }

    fn to_bytes(view: &TelemetryView) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(&mut buf, view).unwrap();
        buf
    }

    fn to_legacy_bytes(view: &TelemetryView) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot_legacy(&mut buf, view).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let view = sample_view();
        let bytes = to_bytes(&view);
        let back = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(to_bytes(&back), bytes);
        assert_eq!(back.jobs(), view.jobs());
        assert_eq!(back.health_events(), view.health_events());
        assert_eq!(back.node_events(), view.node_events());
        assert_eq!(back.exclusions(), view.exclusions());
        assert_eq!(back.ground_truth_failures(), view.ground_truth_failures());
        assert_eq!(back.gpu_swaps(), view.gpu_swaps());
        assert_eq!(back.horizon(), view.horizon());
        assert_eq!(back.cluster_name(), view.cluster_name());
        assert_eq!(back.num_nodes(), view.num_nodes());
        assert_eq!(back.chain_heads(), view.chain_heads());
    }

    #[test]
    fn v3_bytes_are_segment_capacity_invariant() {
        let fill = |capacity: usize| {
            let mut store = TelemetryStore::with_segment_capacity("cap", 8, capacity);
            store.set_horizon(SimTime::from_hours(4));
            for i in 0..40u64 {
                store.push_health_event(HealthEvent {
                    at: SimTime::from_secs(i * 9),
                    node: NodeId::new((i % 8) as u32),
                    check: CheckKind::IbLink,
                    severity: Severity::High,
                    signal: Some(SignalKind::IbLinkError),
                    false_positive: false,
                });
                store.push_ground_truth(FailureEvent {
                    at: SimTime::from_secs(i * 9),
                    node: NodeId::new((i % 8) as u32),
                    mode: ModeId(1),
                    symptom: FailureSymptom::InfinibandLink,
                    permanent: false,
                });
            }
            store
        };
        let small = fill(7);
        assert!(small.segment_stats().rotations > 0);
        let bytes_small = to_bytes(&small.seal());
        let bytes_mono = to_bytes(&fill(usize::MAX).seal());
        assert_eq!(bytes_small, bytes_mono);
    }

    #[test]
    fn named_and_other_xids_stay_distinct() {
        let view = sample_view();
        let back = read_snapshot(to_bytes(&view).as_slice()).unwrap();
        let signals: Vec<Option<SignalKind>> =
            back.health_events().iter().map(|e| e.signal).collect();
        assert_eq!(signals[0], Some(SignalKind::Xid(XidError::DoubleBitEcc)));
        assert_eq!(signals[1], Some(SignalKind::Xid(XidError::Other(48))));
    }

    #[test]
    fn empty_store_round_trips() {
        let view = TelemetryStore::new("empty", 0).seal();
        let bytes = to_bytes(&view);
        let back = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(to_bytes(&back), bytes);
        assert!(back.jobs().is_empty());
    }

    #[test]
    fn truncated_input_is_a_clean_error() {
        let bytes = to_bytes(&sample_view());
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 5] {
            let err = read_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Parse { .. } | SnapshotError::Chain { .. }
                ),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_fields_error_with_line_numbers() {
        let text = String::from_utf8(to_bytes(&sample_view())).unwrap();
        let corrupted = text.replace("gpu_memory", "not_a_check");
        let err = read_snapshot(corrupted.as_bytes()).unwrap_err();
        match err {
            SnapshotError::Parse { line, message } => {
                assert!(line > 0);
                assert!(message.contains("bad"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn flipped_record_content_fails_the_chain() {
        let text = String::from_utf8(to_bytes(&sample_view())).unwrap();
        // `115` (ground-truth failure time) → `116`: still parses, but no
        // longer matches the frame checkpoint.
        let corrupted = text.replace("\n115,4,2,", "\n116,4,2,");
        assert_ne!(corrupted, text);
        let err = read_snapshot(corrupted.as_bytes()).unwrap_err();
        match err {
            SnapshotError::Chain { stream, frame, .. } => {
                assert_eq!(stream, "failures");
                assert_eq!(frame, 0);
            }
            other => panic!("expected chain error, got {other}"),
        }
    }

    #[test]
    fn tampered_chain_head_is_rejected() {
        let text = String::from_utf8(to_bytes(&sample_view())).unwrap();
        let chain_line = text
            .lines()
            .find(|l| l.starts_with("chain "))
            .unwrap()
            .to_string();
        let mut forged = chain_line.clone().into_bytes();
        let last = forged.last_mut().unwrap();
        *last = if *last == b'0' { b'1' } else { b'0' };
        let corrupted = text.replace(&chain_line, std::str::from_utf8(&forged).unwrap());
        let err = read_snapshot(corrupted.as_bytes()).unwrap_err();
        match err {
            SnapshotError::Chain { stream, .. } => assert_eq!(stream, "combined"),
            other => panic!("expected chain error, got {other}"),
        }
    }

    #[test]
    fn undersized_nonfinal_frame_rejected() {
        // Hand-build a section whose first frame claims fewer rows than
        // frame_rows while more remain: the strict framing must refuse it.
        let view = sample_view();
        let mut buf = Vec::new();
        write_snapshot_with_frame_rows(&mut buf, &view, 1).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let loosened = text.replace("frame_rows 1", "frame_rows 2");
        let err = read_snapshot(loosened.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("non-final frame"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn wrong_magic_rejected() {
        let err = read_snapshot("some other file\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    /// A view with v2 content: lifecycle node events plus one checkpoint
    /// fallback.
    fn sample_v2_view() -> TelemetryView {
        let base = sample_view();
        let mut store = base.to_store();
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(200),
            kind: NodeEventKind::RepairAttemptFailed,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(210),
            kind: NodeEventKind::RepairEscalated,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(400),
            kind: NodeEventKind::EnterProbation,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(500),
            kind: NodeEventKind::ProbationFailed,
        });
        store.push_node_event(NodeEvent {
            node: NodeId::new(4),
            at: SimTime::from_secs(900),
            kind: NodeEventKind::Quarantined,
        });
        store.push_ckpt_fallback(CheckpointFallbackEvent {
            at: SimTime::from_secs(600),
            job: JobId::new(7),
            gpus: 16,
            intervals: 2,
            lost: SimDuration::from_hours(2),
        });
        store.seal()
    }

    #[test]
    fn legacy_writer_keeps_the_v1_magic_for_v1_views() {
        let bytes = to_legacy_bytes(&sample_view());
        let first = bytes.split(|&b| b == b'\n').next().unwrap();
        assert_eq!(first, MAGIC_V1.as_bytes());
        assert!(!String::from_utf8(bytes).unwrap().contains("ckpt_fallbacks"));
    }

    #[test]
    fn v1_snapshot_still_decodes() {
        let view = sample_view();
        let bytes = to_legacy_bytes(&view);
        let back = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(back.jobs(), view.jobs());
        assert_eq!(back.health_events(), view.health_events());
        assert_eq!(to_legacy_bytes(&back), bytes);
    }

    #[test]
    fn v2_legacy_round_trip_is_byte_identical() {
        let view = sample_v2_view();
        let bytes = to_legacy_bytes(&view);
        let first = bytes.split(|&b| b == b'\n').next().unwrap();
        assert_eq!(first, MAGIC_V2.as_bytes());
        let back = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(to_legacy_bytes(&back), bytes);
        assert_eq!(back.node_events(), view.node_events());
        assert_eq!(back.ckpt_fallbacks(), view.ckpt_fallbacks());
    }

    #[test]
    fn current_writer_always_emits_v3() {
        let bytes = to_bytes(&sample_v2_view());
        let first = bytes.split(|&b| b == b'\n').next().unwrap();
        assert_eq!(first, MAGIC_V3.as_bytes());
    }

    #[test]
    fn v1_header_rejects_v2_event_kinds() {
        let text = String::from_utf8(to_legacy_bytes(&sample_v2_view())).unwrap();
        // Forge a v1 header onto a stream carrying v2 vocabulary: the
        // version-gated parser must refuse the lifecycle kind.
        let forged = text.replace(MAGIC_V2, MAGIC_V1);
        let err = read_snapshot(forged.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("bad node event kind"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn unknown_kind_tag_rejected_in_v2() {
        let text = String::from_utf8(to_legacy_bytes(&sample_v2_view())).unwrap();
        let corrupted = text.replace("repair_escalated", "warp_drive_realigned");
        let err = read_snapshot(corrupted.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad node event kind"), "{err}");
    }

    #[test]
    fn unknown_version_rejected() {
        let text = String::from_utf8(to_bytes(&sample_v2_view())).unwrap();
        let bumped = text.replace(MAGIC_V3, "rsc-telemetry-snapshot v5");
        let err = read_snapshot(bumped.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad header"), "{err}");
    }

    /// A view with closed-loop control actions on top of the v2 content.
    fn sample_v4_view() -> TelemetryView {
        let base = sample_v2_view();
        let mut store = base.to_store();
        store.push_control_action(ControlActionEvent {
            at: SimTime::from_secs(700),
            kind: ControlActionKind::QuarantineNode,
            trigger: ControlTrigger::LemonSuspect,
            node: Some(NodeId::new(4)),
            job: None,
            accepted: true,
            value: 0,
        });
        store.push_control_action(ControlActionEvent {
            at: SimTime::from_secs(710),
            kind: ControlActionKind::RetuneCheckpoint,
            trigger: ControlTrigger::MttfRegression,
            node: None,
            job: Some(JobId::new(7)),
            accepted: false,
            value: 1800,
        });
        store.seal()
    }

    #[test]
    fn control_actions_force_v4_and_round_trip() {
        let view = sample_v4_view();
        let bytes = to_bytes(&view);
        let first = bytes.split(|&b| b == b'\n').next().unwrap();
        assert_eq!(first, MAGIC_V4.as_bytes());
        let back = read_snapshot(bytes.as_slice()).unwrap();
        assert_eq!(to_bytes(&back), bytes);
        assert_eq!(back.control_actions(), view.control_actions());
        assert_eq!(back.chain_heads(), view.chain_heads());
    }

    #[test]
    fn open_loop_views_keep_v3_bytes() {
        // No control actions → exact version-3 output, so pre-control
        // snapshots of the same run stay bitwise identical.
        let bytes = to_bytes(&sample_v2_view());
        let first = bytes.split(|&b| b == b'\n').next().unwrap();
        assert_eq!(first, MAGIC_V3.as_bytes());
        assert!(!String::from_utf8(bytes)
            .unwrap()
            .contains("control_actions"));
    }

    #[test]
    fn flipped_control_action_fails_the_chain() {
        let text = String::from_utf8(to_bytes(&sample_v4_view())).unwrap();
        let corrupted = text.replace("\n700,quarantine_node,", "\n701,quarantine_node,");
        assert_ne!(corrupted, text);
        let err = read_snapshot(corrupted.as_bytes()).unwrap_err();
        match err {
            SnapshotError::Chain { stream, .. } => assert_eq!(stream, "control_actions"),
            other => panic!("expected chain error, got {other}"),
        }
    }

    #[test]
    fn v3_header_rejects_control_actions_section() {
        // Forge a v3 magic onto a v4 body: the reader expects the trailing
        // `chain` right after ckpt_fallbacks and must refuse the extra
        // section rather than silently dropping it.
        let text = String::from_utf8(to_bytes(&sample_v4_view())).unwrap();
        let forged = text.replace(MAGIC_V4, MAGIC_V3);
        assert!(read_snapshot(forged.as_bytes()).is_err());
    }

    #[test]
    fn truncated_v2_stream_is_a_clean_error() {
        let bytes = to_legacy_bytes(&sample_v2_view());
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 5] {
            let err = read_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Parse { .. }),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn v2_requires_ckpt_fallbacks_section() {
        let text = String::from_utf8(to_legacy_bytes(&sample_v2_view())).unwrap();
        // Drop the ckpt_fallbacks section entirely: the v2 reader must not
        // silently accept a v1-shaped body.
        let gutted: String = text
            .lines()
            .filter(|l| !l.starts_with("ckpt_fallbacks") && !l.starts_with("600,7,"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = read_snapshot(gutted.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("expected `ckpt_fallbacks"),
            "{err}"
        );
    }

    #[test]
    fn corrupt_fallback_row_rejected() {
        let text = String::from_utf8(to_legacy_bytes(&sample_v2_view())).unwrap();
        let corrupted = text.replace("600,7,16,2,7200", "600,7,sixteen,2,7200");
        let err = read_snapshot(corrupted.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad gpus"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("rsc-snap-test-{}", std::process::id()));
        let path = dir.join("sample.snap");
        let view = sample_view();
        save_snapshot_file(&path, &view).unwrap();
        let back = load_snapshot_file(&path).unwrap();
        assert_eq!(to_bytes(&back), to_bytes(&view));
        let _ = fs::remove_dir_all(&dir);
    }
}
