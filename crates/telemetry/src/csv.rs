//! Minimal CSV output for exporting simulated telemetry and figure data.
//!
//! Hand-rolled (RFC-4180 quoting) to keep the dependency set to the
//! workspace allowlist.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Escapes one CSV field per RFC 4180: fields containing commas, quotes,
/// or newlines are quoted, with embedded quotes doubled.
pub fn escape_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Renders one row.
pub fn format_row<I, S>(fields: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut row = String::new();
    for (i, f) in fields.into_iter().enumerate() {
        if i > 0 {
            row.push(',');
        }
        let _ = write!(row, "{}", escape_field(f.as_ref()));
    }
    row
}

/// Writes a CSV table to `w`.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_csv<W, R, S>(w: &mut W, header: &[&str], rows: R) -> io::Result<()>
where
    W: Write,
    R: IntoIterator<Item = Vec<S>>,
    S: AsRef<str>,
{
    writeln!(w, "{}", format_row(header.iter().copied()))?;
    for row in rows {
        writeln!(w, "{}", format_row(row.iter().map(|s| s.as_ref())))?;
    }
    Ok(())
}

/// Writes a CSV table to a file path, creating parent directories.
///
/// The write lands atomically (private temp file + rename), so concurrent
/// writers producing the same deterministic table never tear each other's
/// output.
///
/// # Errors
///
/// Returns any error from directory creation or file I/O.
pub fn write_csv_file<P, R, S>(path: P, header: &[&str], rows: R) -> io::Result<()>
where
    P: AsRef<Path>,
    R: IntoIterator<Item = Vec<S>>,
    S: AsRef<str>,
{
    let mut bytes = Vec::new();
    write_csv(&mut bytes, header, rows)?;
    write_file_atomic(path.as_ref(), &bytes)
}

/// Writes `bytes` to `path` atomically: parent directories are created,
/// the content goes to a uniquely-named temp sibling, and an atomic
/// `rename` publishes it — readers see the old file or the new one, never
/// a torn mix, even with concurrent writers in other threads or processes.
///
/// # Errors
///
/// Returns any error from directory creation or file I/O.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(bytes)?;
        w.flush()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_unquoted() {
        assert_eq!(escape_field("abc"), "abc");
        assert_eq!(escape_field("1.5"), "1.5");
    }

    #[test]
    fn special_fields_quoted() {
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape_field("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn full_table_roundtrip() {
        let mut buf = Vec::new();
        write_csv(
            &mut buf,
            &["name", "value"],
            vec![
                vec!["plain".to_string(), "1".to_string()],
                vec!["with,comma".to_string(), "2".to_string()],
            ],
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "name,value\nplain,1\n\"with,comma\",2\n");
    }
}
