//! Storage requirements implied by reliability targets.
//!
//! Closes the loop the paper opens: Fig. 10 says a 100k-GPU run needs
//! ~2-minute checkpoints for ETTR 0.9 at an RSC-2-like failure rate; this
//! module computes what that *costs* the storage system — sustained write
//! bandwidth, stall overhead, and the ETTR actually achieved once
//! checkpoint stalls are charged as restart-overhead-like unproductive
//! time.

use serde::{Deserialize, Serialize};

use rsc_sim_core::time::SimDuration;

use crate::checkpoint::CheckpointSpec;
use crate::tier::TierSpec;

/// The storage-side verdict on a checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CadenceCost {
    /// Per-job sustained write demand, GB/s.
    pub sustained_write_gbps: f64,
    /// Training-time fraction lost to checkpoint stalls.
    pub stall_fraction: f64,
    /// Whether writes drain before the next checkpoint.
    pub sustainable: bool,
}

/// Prices a checkpoint cadence on a tier.
pub fn cadence_cost(spec: &CheckpointSpec, tier: &TierSpec) -> CadenceCost {
    CadenceCost {
        sustained_write_gbps: spec.fleet_demand_gbps(1),
        stall_fraction: spec.stall_fraction(tier),
        sustainable: spec.is_sustainable(tier),
    }
}

/// ETTR degradation factor from checkpoint stalls: multiply an interval's
/// productive share by `1 − stall_fraction`. This composes with the
/// failure-driven expected-ETTR: stalls are deterministic unproductive
/// time *every* interval, not just on interruption.
pub fn ettr_with_stalls(failure_driven_ettr: f64, stall_fraction: f64) -> f64 {
    (failure_driven_ettr * (1.0 - stall_fraction.clamp(0.0, 1.0))).clamp(0.0, 1.0)
}

/// The smallest checkpoint size shards (writers) needed to land a
/// checkpoint of `size_gb` within `budget` on a tier, or `None` if even
/// unlimited sharding cannot (aggregate bandwidth bound).
pub fn writers_needed(size_gb: f64, budget: SimDuration, tier: &TierSpec) -> Option<u32> {
    let budget_secs = budget.as_secs().max(1) as f64;
    // Aggregate bound: even infinitely sharded, the tier moves at most
    // aggregate × budget.
    if size_gb > tier.aggregate_write_gbps * budget_secs {
        return None;
    }
    // Each writer moves at most per_client × budget.
    let per_writer_gb = tier.per_client_write_gbps * budget_secs;
    Some((size_gb / per_writer_gb).ceil().max(1.0) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::WriteMode;
    use crate::tier::{StorageTier, TierSpec};

    #[test]
    fn two_minute_checkpoints_at_100k_gpus_are_storage_feasible_only_sharded() {
        // A 100k-GPU run: ~2T params → 32 TB checkpoints, 2-minute cadence
        // (Fig. 10's ETTR-0.9 requirement at the RSC-2 rate).
        let tier = TierSpec::rsc_default(StorageTier::ObjectStore);
        let size_gb = 32_000.0;
        let budget = SimDuration::from_mins(1); // drain well within cadence
        let writers = writers_needed(size_gb, budget, &tier).expect("feasible");
        // 32 TB in 60 s needs ≥534 GB/s: > 13 writers at 40 GB/s each.
        assert!(writers > 13, "writers={writers}");
        let spec = CheckpointSpec {
            size_gb,
            interval: SimDuration::from_mins(2),
            mode: WriteMode::NonBlocking {
                snapshot_secs: 10.0,
            },
            writers,
        };
        let cost = cadence_cost(&spec, &tier);
        assert!(cost.sustainable, "{cost:?}");
        // Sustained demand ≈ 267 GB/s from this one job.
        assert!((cost.sustained_write_gbps - 266.7).abs() < 5.0);
    }

    #[test]
    fn infeasible_when_aggregate_bound() {
        let tier = TierSpec::rsc_default(StorageTier::Nfs); // 200 GB/s aggregate
                                                            // 100 TB in one minute is beyond the tier no matter the sharding.
        assert!(writers_needed(100_000.0, SimDuration::from_mins(1), &tier).is_none());
    }

    #[test]
    fn stalls_compound_with_failure_ettr() {
        assert!((ettr_with_stalls(0.9, 0.1) - 0.81).abs() < 1e-12);
        assert_eq!(ettr_with_stalls(0.9, 0.0), 0.9);
        assert_eq!(ettr_with_stalls(1.2, -0.5), 1.0); // clamped
    }

    #[test]
    fn blocking_writes_erase_fig10_gains() {
        // The paper's caveat, quantified: a blocking 2-minute cadence for
        // a big model can stall a large share of training time.
        let tier = TierSpec::rsc_default(StorageTier::ObjectStore);
        let spec = CheckpointSpec {
            size_gb: 32_000.0,
            interval: SimDuration::from_mins(2),
            mode: WriteMode::Blocking,
            writers: 25, // aggregate-saturating
        };
        let blocking_stall = spec.stall_fraction(&tier);
        assert!(blocking_stall > 0.2, "stall={blocking_stall}");
        let nonblocking = CheckpointSpec {
            mode: WriteMode::NonBlocking {
                snapshot_secs: 10.0,
            },
            ..spec
        };
        assert!(nonblocking.stall_fraction(&tier) < 0.1);
    }
}
