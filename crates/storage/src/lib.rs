#![warn(missing_docs)]

//! Storage substrate for the `rsc-reliability` workspace.
//!
//! Models the paper's three storage offerings (§II-A: NFS, AirStore,
//! ObjectStore) at the granularity reliability analysis needs — write
//! bandwidth under contention — and prices the checkpoint cadences the
//! ETTR analysis demands (Fig. 10 assumes non-blocking checkpoint writes;
//! [`requirements`] quantifies what happens when they are not, and how
//! much sustained bandwidth frequent checkpointing costs).
//!
//! # Example
//!
//! ```
//! use rsc_sim_core::time::SimDuration;
//! use rsc_storage::checkpoint::CheckpointSpec;
//! use rsc_storage::tier::{StorageTier, TierSpec};
//!
//! // A 70B-parameter model checkpointing every 30 minutes via 8 shards.
//! let spec = CheckpointSpec::for_model(70.0, SimDuration::from_mins(30), 8);
//! let tier = TierSpec::rsc_default(StorageTier::ObjectStore);
//! assert!(spec.is_sustainable(&tier));
//! assert!(spec.stall_fraction(&tier) < 0.01); // non-blocking: cheap
//! ```

pub mod checkpoint;
pub mod requirements;
pub mod tier;

pub use checkpoint::{CheckpointFallbackPolicy, CheckpointSpec, WriteMode};
pub use requirements::{cadence_cost, ettr_with_stalls, writers_needed, CadenceCost};
pub use tier::{StorageTier, TierSpec};
