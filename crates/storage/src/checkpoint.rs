//! Checkpoint cost modelling.
//!
//! Fig. 10's conclusion — minute-scale checkpoint intervals at 100k GPUs —
//! silently assumes "checkpoint writes are non-blocking" (paper §III).
//! This module makes that assumption explicit and priceable: checkpoint
//! size follows from model scale, write time from storage bandwidth, and
//! the training-time stall from the write mode.

use serde::{Deserialize, Serialize};

use rsc_sim_core::time::SimDuration;

use crate::tier::TierSpec;

/// How a checkpoint write interacts with training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WriteMode {
    /// Training halts for the full write (naive synchronous save).
    Blocking,
    /// Training halts only to snapshot state to host memory; the write
    /// drains asynchronously. The stall is the snapshot time.
    NonBlocking {
        /// Seconds to snapshot state into host memory.
        snapshot_secs: f64,
    },
}

/// A job's checkpointing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSpec {
    /// Checkpoint size in GB (roughly 12–16 bytes/parameter for mixed
    /// precision with optimizer state).
    pub size_gb: f64,
    /// Interval between checkpoints.
    pub interval: SimDuration,
    /// Write mode.
    pub mode: WriteMode,
    /// Number of parallel writer clients (typically data-parallel ranks
    /// sharding the save).
    pub writers: u32,
}

impl CheckpointSpec {
    /// A spec sized for a model of `params_billions` parameters saved in
    /// sharded form by `writers` clients (16 bytes/param: bf16 weights +
    /// fp32 optimizer moments).
    pub fn for_model(params_billions: f64, interval: SimDuration, writers: u32) -> Self {
        CheckpointSpec {
            size_gb: params_billions * 16.0,
            interval,
            mode: WriteMode::NonBlocking {
                snapshot_secs: 10.0,
            },
            writers: writers.max(1),
        }
    }

    /// Wallclock time for the full write to land on `tier`, accounting for
    /// per-client and aggregate bandwidth limits.
    pub fn write_duration(&self, tier: &TierSpec) -> SimDuration {
        let per_client = tier.write_bandwidth_per_client(self.writers);
        let per_client_share_gb = self.size_gb / self.writers as f64;
        SimDuration::from_secs_f64(per_client_share_gb / per_client.max(1e-9))
    }

    /// Training stall per checkpoint under the write mode.
    pub fn stall_duration(&self, tier: &TierSpec) -> SimDuration {
        match self.mode {
            WriteMode::Blocking => self.write_duration(tier),
            WriteMode::NonBlocking { snapshot_secs } => SimDuration::from_secs_f64(snapshot_secs),
        }
    }

    /// Fraction of training time lost to checkpoint stalls (0 when the
    /// interval is zero-length — treated as undefined → 0).
    pub fn stall_fraction(&self, tier: &TierSpec) -> f64 {
        let interval = self.interval.as_secs() as f64;
        if interval <= 0.0 {
            return 0.0;
        }
        (self.stall_duration(tier).as_secs() as f64 / interval).min(1.0)
    }

    /// Whether the async write drains before the next checkpoint starts —
    /// if not, the configured interval is *infeasible* on this tier and
    /// writes will back up.
    pub fn is_sustainable(&self, tier: &TierSpec) -> bool {
        self.write_duration(tier) <= self.interval
    }

    /// The minimum sustainable checkpoint interval on a tier: the write
    /// duration itself (any shorter and writes pile up).
    pub fn min_sustainable_interval(&self, tier: &TierSpec) -> SimDuration {
        self.write_duration(tier)
    }

    /// The aggregate write bandwidth (GB/s) a fleet of `jobs` identical
    /// jobs checkpointing on this cadence demands in steady state.
    pub fn fleet_demand_gbps(&self, jobs: u32) -> f64 {
        let interval = self.interval.as_secs().max(1) as f64;
        jobs as f64 * self.size_gb / interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::{StorageTier, TierSpec};

    fn objectstore() -> TierSpec {
        TierSpec::rsc_default(StorageTier::ObjectStore)
    }

    #[test]
    fn write_duration_scales_with_size() {
        // 1.6 TB checkpoint (100B params), 25 writers at 40 GB/s each.
        let spec = CheckpointSpec::for_model(100.0, SimDuration::from_mins(30), 25);
        let d = spec.write_duration(&objectstore());
        // 1600 GB / (25 × 40 GB/s) = 1.6 s... per client share 64 GB / 40 = 1.6 s.
        assert!((d.as_secs() as f64 - 2.0).abs() <= 1.0, "{d}");
        let bigger = CheckpointSpec::for_model(1000.0, SimDuration::from_mins(30), 25);
        assert!(bigger.write_duration(&objectstore()) > d);
    }

    #[test]
    fn aggregate_limit_binds_with_many_writers() {
        // 1000 writers: fair share = 1 GB/s each, not the 40 GB/s cap.
        let spec = CheckpointSpec {
            size_gb: 1000.0,
            interval: SimDuration::from_mins(10),
            mode: WriteMode::Blocking,
            writers: 1000,
        };
        let d = spec.write_duration(&objectstore());
        // Per-client share 1 GB at 1 GB/s → 1 s.
        assert_eq!(d.as_secs(), 1);
    }

    #[test]
    fn blocking_stall_equals_write_nonblocking_is_snapshot() {
        let tier = objectstore();
        let mut spec = CheckpointSpec::for_model(400.0, SimDuration::from_mins(10), 8);
        spec.mode = WriteMode::Blocking;
        assert_eq!(spec.stall_duration(&tier), spec.write_duration(&tier));
        spec.mode = WriteMode::NonBlocking {
            snapshot_secs: 10.0,
        };
        assert_eq!(spec.stall_duration(&tier).as_secs(), 10);
        assert!(spec.stall_fraction(&tier) < 0.02);
    }

    #[test]
    fn nfs_cannot_sustain_minute_checkpoints_for_big_models() {
        let nfs = TierSpec::rsc_default(StorageTier::Nfs);
        // 70B params sharded over 8 writers to NFS (5 GB/s per client cap,
        // 200 GB/s aggregate): 1120 GB / 40 GB/s = 28 s per write... but a
        // 2-minute cadence across a fleet is the killer (see fleet_demand).
        let spec = CheckpointSpec::for_model(70.0, SimDuration::from_mins(2), 8);
        assert!(spec.is_sustainable(&nfs));
        // One hundred such jobs demand 100 × 1120 GB / 120 s ≈ 933 GB/s —
        // far beyond the NFS tier's 200 GB/s aggregate.
        assert!(spec.fleet_demand_gbps(100) > nfs.aggregate_write_gbps);
    }

    #[test]
    fn unsustainable_interval_detected() {
        let nfs = TierSpec::rsc_default(StorageTier::Nfs);
        // A 10 TB checkpoint from one writer at 5 GB/s = 2000 s > 60 s.
        let spec = CheckpointSpec {
            size_gb: 10_000.0,
            interval: SimDuration::from_mins(1),
            mode: WriteMode::NonBlocking {
                snapshot_secs: 10.0,
            },
            writers: 1,
        };
        assert!(!spec.is_sustainable(&nfs));
        assert!(spec.min_sustainable_interval(&nfs) > spec.interval);
    }
}
