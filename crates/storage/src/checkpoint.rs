//! Checkpoint cost modelling.
//!
//! Fig. 10's conclusion — minute-scale checkpoint intervals at 100k GPUs —
//! silently assumes "checkpoint writes are non-blocking" (paper §III).
//! This module makes that assumption explicit and priceable: checkpoint
//! size follows from model scale, write time from storage bandwidth, and
//! the training-time stall from the write mode.

use serde::{Deserialize, Serialize};

use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::SimDuration;

use crate::tier::TierSpec;

/// How a checkpoint write interacts with training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WriteMode {
    /// Training halts for the full write (naive synchronous save).
    Blocking,
    /// Training halts only to snapshot state to host memory; the write
    /// drains asynchronously. The stall is the snapshot time.
    NonBlocking {
        /// Seconds to snapshot state into host memory.
        snapshot_secs: f64,
    },
}

/// A job's checkpointing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSpec {
    /// Checkpoint size in GB (roughly 12–16 bytes/parameter for mixed
    /// precision with optimizer state).
    pub size_gb: f64,
    /// Interval between checkpoints.
    pub interval: SimDuration,
    /// Write mode.
    pub mode: WriteMode,
    /// Number of parallel writer clients (typically data-parallel ranks
    /// sharding the save).
    pub writers: u32,
}

impl CheckpointSpec {
    /// A spec sized for a model of `params_billions` parameters saved in
    /// sharded form by `writers` clients (16 bytes/param: bf16 weights +
    /// fp32 optimizer moments).
    pub fn for_model(params_billions: f64, interval: SimDuration, writers: u32) -> Self {
        CheckpointSpec {
            size_gb: params_billions * 16.0,
            interval,
            mode: WriteMode::NonBlocking {
                snapshot_secs: 10.0,
            },
            writers: writers.max(1),
        }
    }

    /// Wallclock time for the full write to land on `tier`, accounting for
    /// per-client and aggregate bandwidth limits.
    pub fn write_duration(&self, tier: &TierSpec) -> SimDuration {
        let per_client = tier.write_bandwidth_per_client(self.writers);
        let per_client_share_gb = self.size_gb / self.writers as f64;
        SimDuration::from_secs_f64(per_client_share_gb / per_client.max(1e-9))
    }

    /// Training stall per checkpoint under the write mode.
    pub fn stall_duration(&self, tier: &TierSpec) -> SimDuration {
        match self.mode {
            WriteMode::Blocking => self.write_duration(tier),
            WriteMode::NonBlocking { snapshot_secs } => SimDuration::from_secs_f64(snapshot_secs),
        }
    }

    /// Fraction of training time lost to checkpoint stalls (0 when the
    /// interval is zero-length — treated as undefined → 0).
    pub fn stall_fraction(&self, tier: &TierSpec) -> f64 {
        let interval = self.interval.as_secs() as f64;
        if interval <= 0.0 {
            return 0.0;
        }
        (self.stall_duration(tier).as_secs() as f64 / interval).min(1.0)
    }

    /// Whether the async write drains before the next checkpoint starts —
    /// if not, the configured interval is *infeasible* on this tier and
    /// writes will back up.
    pub fn is_sustainable(&self, tier: &TierSpec) -> bool {
        self.write_duration(tier) <= self.interval
    }

    /// The minimum sustainable checkpoint interval on a tier: the write
    /// duration itself (any shorter and writes pile up).
    pub fn min_sustainable_interval(&self, tier: &TierSpec) -> SimDuration {
        self.write_duration(tier)
    }

    /// The aggregate write bandwidth (GB/s) a fleet of `jobs` identical
    /// jobs checkpointing on this cadence demands in steady state.
    pub fn fleet_demand_gbps(&self, jobs: u32) -> f64 {
        let interval = self.interval.as_secs().max(1) as f64;
        jobs as f64 * self.size_gb / interval
    }
}

/// Fallible checkpoint reads at restart time.
///
/// The paper's ETTR model assumes the newest checkpoint always restores; in
/// practice restores fail — partial writes racing a crash, silent object
/// corruption, metadata loss — and the attempt falls back to an older
/// checkpoint, re-doing the work in between. Each checkpoint is tried
/// newest-first; every unreadable one costs one more interval of lost work,
/// up to [`max_fallback`](Self::max_fallback).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointFallbackPolicy {
    /// Probability an individual checkpoint is unreadable at restore time.
    pub corrupt_prob: f64,
    /// Most intervals a single restart may fall back (the retention floor:
    /// older checkpoints are assumed readable from cold storage).
    pub max_fallback: u32,
}

impl CheckpointFallbackPolicy {
    /// Checkpoints never fail to restore — the pre-fallible behaviour.
    /// Samples draw nothing from the RNG, keeping legacy runs
    /// byte-identical.
    pub fn disabled() -> Self {
        CheckpointFallbackPolicy {
            corrupt_prob: 0.0,
            max_fallback: 0,
        }
    }

    /// The fallible default used by the remediation ablation: a 2% per-
    /// checkpoint restore failure rate with at most 3 intervals of fallback.
    pub fn rsc_default() -> Self {
        CheckpointFallbackPolicy {
            corrupt_prob: 0.02,
            max_fallback: 3,
        }
    }

    /// Whether restores can fail at all under this policy.
    pub fn is_enabled(&self) -> bool {
        self.corrupt_prob > 0.0 && self.max_fallback > 0
    }

    /// Samples how many checkpoint intervals a restart falls back: tries
    /// checkpoints newest-first, each unreadable with
    /// [`corrupt_prob`](Self::corrupt_prob), stopping at the first readable
    /// one or at the [`max_fallback`](Self::max_fallback) floor. Draws
    /// nothing when disabled.
    pub fn sample_fallback(&self, rng: &mut SimRng) -> u32 {
        if !self.is_enabled() {
            return 0;
        }
        let mut intervals = 0;
        while intervals < self.max_fallback && rng.chance(self.corrupt_prob) {
            intervals += 1;
        }
        intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::{StorageTier, TierSpec};

    fn objectstore() -> TierSpec {
        TierSpec::rsc_default(StorageTier::ObjectStore)
    }

    #[test]
    fn write_duration_scales_with_size() {
        // 1.6 TB checkpoint (100B params), 25 writers at 40 GB/s each.
        let spec = CheckpointSpec::for_model(100.0, SimDuration::from_mins(30), 25);
        let d = spec.write_duration(&objectstore());
        // 1600 GB / (25 × 40 GB/s) = 1.6 s... per client share 64 GB / 40 = 1.6 s.
        assert!((d.as_secs() as f64 - 2.0).abs() <= 1.0, "{d}");
        let bigger = CheckpointSpec::for_model(1000.0, SimDuration::from_mins(30), 25);
        assert!(bigger.write_duration(&objectstore()) > d);
    }

    #[test]
    fn aggregate_limit_binds_with_many_writers() {
        // 1000 writers: fair share = 1 GB/s each, not the 40 GB/s cap.
        let spec = CheckpointSpec {
            size_gb: 1000.0,
            interval: SimDuration::from_mins(10),
            mode: WriteMode::Blocking,
            writers: 1000,
        };
        let d = spec.write_duration(&objectstore());
        // Per-client share 1 GB at 1 GB/s → 1 s.
        assert_eq!(d.as_secs(), 1);
    }

    #[test]
    fn blocking_stall_equals_write_nonblocking_is_snapshot() {
        let tier = objectstore();
        let mut spec = CheckpointSpec::for_model(400.0, SimDuration::from_mins(10), 8);
        spec.mode = WriteMode::Blocking;
        assert_eq!(spec.stall_duration(&tier), spec.write_duration(&tier));
        spec.mode = WriteMode::NonBlocking {
            snapshot_secs: 10.0,
        };
        assert_eq!(spec.stall_duration(&tier).as_secs(), 10);
        assert!(spec.stall_fraction(&tier) < 0.02);
    }

    #[test]
    fn nfs_cannot_sustain_minute_checkpoints_for_big_models() {
        let nfs = TierSpec::rsc_default(StorageTier::Nfs);
        // 70B params sharded over 8 writers to NFS (5 GB/s per client cap,
        // 200 GB/s aggregate): 1120 GB / 40 GB/s = 28 s per write... but a
        // 2-minute cadence across a fleet is the killer (see fleet_demand).
        let spec = CheckpointSpec::for_model(70.0, SimDuration::from_mins(2), 8);
        assert!(spec.is_sustainable(&nfs));
        // One hundred such jobs demand 100 × 1120 GB / 120 s ≈ 933 GB/s —
        // far beyond the NFS tier's 200 GB/s aggregate.
        assert!(spec.fleet_demand_gbps(100) > nfs.aggregate_write_gbps);
    }

    #[test]
    fn disabled_fallback_never_draws() {
        let policy = CheckpointFallbackPolicy::disabled();
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..10 {
            assert_eq!(policy.sample_fallback(&mut a), 0);
        }
        // Same stream position as a never-sampled twin: no draws happened.
        assert_eq!(a.below(1 << 30), b.below(1 << 30));
    }

    #[test]
    fn fallback_capped_at_max() {
        let policy = CheckpointFallbackPolicy {
            corrupt_prob: 1.0,
            max_fallback: 3,
        };
        let mut rng = SimRng::seed_from(7);
        for _ in 0..5 {
            assert_eq!(policy.sample_fallback(&mut rng), 3);
        }
    }

    #[test]
    fn fallback_rate_tracks_corrupt_prob() {
        let policy = CheckpointFallbackPolicy {
            corrupt_prob: 0.5,
            max_fallback: 8,
        };
        let mut rng = SimRng::seed_from(42);
        let n = 4000;
        let nonzero = (0..n)
            .filter(|_| policy.sample_fallback(&mut rng) > 0)
            .count();
        let rate = nonzero as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn unsustainable_interval_detected() {
        let nfs = TierSpec::rsc_default(StorageTier::Nfs);
        // A 10 TB checkpoint from one writer at 5 GB/s = 2000 s > 60 s.
        let spec = CheckpointSpec {
            size_gb: 10_000.0,
            interval: SimDuration::from_mins(1),
            mode: WriteMode::NonBlocking {
                snapshot_secs: 10.0,
            },
            writers: 1,
        };
        assert!(!spec.is_sustainable(&nfs));
        assert!(spec.min_sustainable_interval(&nfs) > spec.interval);
    }
}
