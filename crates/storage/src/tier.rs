//! The cluster's three storage offerings (paper §II-A).
//!
//! 1. an NFS-exported flash tier for home directories, environments, and
//!    "common patterns such as checkpointing";
//! 2. **AirStore**, a high-bandwidth read-only dataset cache;
//! 3. **ObjectStore**, high-capacity object storage "for checkpointing and
//!    storing files when the NFS endpoint is insufficient".
//!
//! Users "interpolate between ease of use and performance" by picking a
//! tier; the models here carry the knobs that matter to reliability
//! analysis — aggregate and per-client write bandwidth.

use serde::{Deserialize, Serialize};

/// One storage offering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageTier {
    /// POSIX/NFS flash tier: easiest to use, least write bandwidth.
    Nfs,
    /// AirStore dataset cache: read-optimized (writes are for ingestion,
    /// not checkpoints, but modelled for completeness).
    AirStore,
    /// ObjectStore: the high-throughput checkpoint target.
    ObjectStore,
}

impl StorageTier {
    /// All tiers.
    pub const ALL: [StorageTier; 3] = [
        StorageTier::Nfs,
        StorageTier::AirStore,
        StorageTier::ObjectStore,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StorageTier::Nfs => "nfs",
            StorageTier::AirStore => "airstore",
            StorageTier::ObjectStore => "objectstore",
        }
    }
}

impl std::fmt::Display for StorageTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Bandwidth/capacity description of a tier deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Which tier this describes.
    pub tier: StorageTier,
    /// Aggregate write bandwidth across all clients, GB/s.
    pub aggregate_write_gbps: f64,
    /// Per-client write bandwidth cap, GB/s.
    pub per_client_write_gbps: f64,
    /// Aggregate read bandwidth, GB/s.
    pub aggregate_read_gbps: f64,
}

impl TierSpec {
    /// RSC-like deployment defaults: flash NFS at moderate write
    /// bandwidth, AirStore read-optimized, ObjectStore write-scalable.
    pub fn rsc_default(tier: StorageTier) -> Self {
        match tier {
            StorageTier::Nfs => TierSpec {
                tier,
                aggregate_write_gbps: 200.0,
                per_client_write_gbps: 5.0,
                aggregate_read_gbps: 400.0,
            },
            StorageTier::AirStore => TierSpec {
                tier,
                aggregate_write_gbps: 100.0,
                per_client_write_gbps: 2.0,
                aggregate_read_gbps: 2_000.0,
            },
            StorageTier::ObjectStore => TierSpec {
                tier,
                aggregate_write_gbps: 1_000.0,
                per_client_write_gbps: 40.0,
                aggregate_read_gbps: 1_000.0,
            },
        }
    }

    /// Effective per-writer bandwidth with `writers` concurrent clients:
    /// the per-client cap until the aggregate saturates, then a fair share.
    ///
    /// # Panics
    ///
    /// Panics if `writers == 0`.
    pub fn write_bandwidth_per_client(&self, writers: u32) -> f64 {
        assert!(writers > 0, "need at least one writer");
        let fair = self.aggregate_write_gbps / writers as f64;
        fair.min(self.per_client_write_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = StorageTier::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn per_client_cap_binds_at_low_concurrency() {
        let spec = TierSpec::rsc_default(StorageTier::ObjectStore);
        assert_eq!(spec.write_bandwidth_per_client(1), 40.0);
        // 1000 GB/s aggregate / 40 GB/s cap = 25 writers before sharing.
        assert_eq!(spec.write_bandwidth_per_client(25), 40.0);
        assert_eq!(spec.write_bandwidth_per_client(100), 10.0);
    }

    #[test]
    fn airstore_is_read_optimized() {
        let spec = TierSpec::rsc_default(StorageTier::AirStore);
        assert!(spec.aggregate_read_gbps > 10.0 * spec.aggregate_write_gbps);
    }

    #[test]
    #[should_panic(expected = "at least one writer")]
    fn zero_writers_rejected() {
        let _ = TierSpec::rsc_default(StorageTier::Nfs).write_bandwidth_per_client(0);
    }
}
