//! Property-based tests of the storage models.

use proptest::prelude::*;

use rsc_sim_core::time::SimDuration;
use rsc_storage::checkpoint::{CheckpointSpec, WriteMode};
use rsc_storage::requirements::{ettr_with_stalls, writers_needed};
use rsc_storage::tier::{StorageTier, TierSpec};

proptest! {
    /// Per-client bandwidth is monotone non-increasing in writer count and
    /// never exceeds either limit.
    #[test]
    fn bandwidth_sharing_monotone(writers in 1u32..10_000) {
        for tier in StorageTier::ALL {
            let spec = TierSpec::rsc_default(tier);
            let bw = spec.write_bandwidth_per_client(writers);
            prop_assert!(bw > 0.0);
            prop_assert!(bw <= spec.per_client_write_gbps + 1e-9);
            prop_assert!(bw * writers as f64 <= spec.aggregate_write_gbps * 1.0 + 1e-6
                || bw == spec.per_client_write_gbps);
            let bw_more = spec.write_bandwidth_per_client(writers + 1);
            prop_assert!(bw_more <= bw + 1e-12);
        }
    }

    /// Write duration is monotone in size and anti-monotone in writers
    /// (until the aggregate limit binds, where it flattens).
    #[test]
    fn write_duration_monotonicity(
        size_gb in 1.0f64..100_000.0,
        writers in 1u32..1000,
    ) {
        let tier = TierSpec::rsc_default(StorageTier::ObjectStore);
        let mk = |size: f64, w: u32| CheckpointSpec {
            size_gb: size,
            interval: SimDuration::from_mins(10),
            mode: WriteMode::Blocking,
            writers: w,
        };
        let base = mk(size_gb, writers).write_duration(&tier);
        let bigger = mk(size_gb * 2.0, writers).write_duration(&tier);
        prop_assert!(bigger >= base);
        let more_writers = mk(size_gb, writers * 2).write_duration(&tier);
        prop_assert!(more_writers <= base + SimDuration::from_secs(1));
    }

    /// `writers_needed` returns a count that actually meets the budget.
    #[test]
    fn writers_needed_is_sufficient(
        size_gb in 1.0f64..50_000.0,
        budget_secs in 10u64..3600,
    ) {
        let tier = TierSpec::rsc_default(StorageTier::ObjectStore);
        let budget = SimDuration::from_secs(budget_secs);
        if let Some(writers) = writers_needed(size_gb, budget, &tier) {
            let spec = CheckpointSpec {
                size_gb,
                interval: budget,
                mode: WriteMode::Blocking,
                writers,
            };
            prop_assert!(
                spec.write_duration(&tier) <= budget + SimDuration::from_secs(1),
                "writers={writers} duration={} budget={budget}",
                spec.write_duration(&tier)
            );
        } else {
            // Infeasible means even the aggregate can't move it in time.
            prop_assert!(size_gb > tier.aggregate_write_gbps * budget_secs as f64);
        }
    }

    /// Stall fractions stay in [0, 1] and compose sanely with ETTR.
    #[test]
    fn stall_fraction_bounded(
        size_gb in 1.0f64..100_000.0,
        interval_mins in 1u64..240,
        writers in 1u32..500,
        blocking in any::<bool>(),
        ettr in 0.0f64..1.0,
    ) {
        let tier = TierSpec::rsc_default(StorageTier::Nfs);
        let spec = CheckpointSpec {
            size_gb,
            interval: SimDuration::from_mins(interval_mins),
            mode: if blocking {
                WriteMode::Blocking
            } else {
                WriteMode::NonBlocking { snapshot_secs: 10.0 }
            },
            writers,
        };
        let stall = spec.stall_fraction(&tier);
        prop_assert!((0.0..=1.0).contains(&stall));
        let combined = ettr_with_stalls(ettr, stall);
        prop_assert!((0.0..=1.0).contains(&combined));
        prop_assert!(combined <= ettr + 1e-12);
    }
}
