//! Property-based tests of the hazard model and failure injector.

use proptest::prelude::*;

use rsc_cluster::ids::NodeId;
use rsc_failure::injector::FailureInjector;
use rsc_failure::lemon::LemonPlan;
use rsc_failure::modes::{ModeCatalog, ModeId};
use rsc_failure::process::{HazardSchedule, NodeFilter, RateModifier};
use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The thinning envelope really bounds the instantaneous rate for any
    /// stack of random era modifiers.
    #[test]
    fn max_rate_is_an_envelope(
        mods in prop::collection::vec(
            (0usize..12, 0u64..300, 1u64..100, 0.1f64..20.0, any::<bool>()),
            0..6
        ),
        probe_day in 0u64..400,
        probe_node in 0u32..8,
    ) {
        let catalog = ModeCatalog::rsc1();
        let nmodes = catalog.modes().len();
        let mut schedule = HazardSchedule::new(catalog);
        for (mode, from, len, mult, scoped) in mods {
            schedule.add_modifier(RateModifier {
                mode: ModeId(mode % nmodes),
                nodes: if scoped {
                    NodeFilter::Set(vec![NodeId::new(1), NodeId::new(3)])
                } else {
                    NodeFilter::All
                },
                from: SimTime::from_days(from),
                until: SimTime::from_days(from + len),
                multiplier: mult,
            });
        }
        let node = NodeId::new(probe_node);
        for m in 0..nmodes {
            let mode = ModeId(m);
            let r = schedule.rate(node, mode, SimTime::from_days(probe_day));
            prop_assert!(r <= schedule.max_rate(node, mode) + 1e-12);
            prop_assert!(r >= 0.0);
        }
    }

    /// The injector's event stream is time-ordered and deterministic for
    /// any seed and horizon.
    #[test]
    fn injector_stream_ordered_and_deterministic(seed in 0u64..500, days in 1u64..120) {
        let make = || {
            let schedule = HazardSchedule::new(ModeCatalog::rsc2());
            FailureInjector::new(schedule, 64, SimRng::seed_from(seed))
        };
        let a = make().drain_until(SimTime::from_days(days));
        let b = make().drain_until(SimTime::from_days(days));
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        for ev in &a {
            prop_assert!(ev.node.index() < 64);
        }
    }

    /// Lemon plans always produce valid, distinct node ids and positive
    /// multipliers, for any fleet size and count.
    #[test]
    fn lemon_plans_valid(seed in 0u64..1000, nodes in 10u32..2000, frac in 1u32..50) {
        let count = ((nodes * frac) / 1000).max(1) as usize;
        let mut rng = SimRng::seed_from(seed);
        let plan = LemonPlan::plant(&mut rng, nodes, count);
        prop_assert_eq!(plan.lemons().len(), count);
        let mut ids: Vec<_> = plan.node_ids();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), count);
        for l in plan.lemons() {
            prop_assert!(l.node.index() < nodes);
            prop_assert!(l.extra_rate_per_day > 0.0);
        }
    }

    /// Applying a lemon plan never *reduces* any rate.
    #[test]
    fn lemons_only_increase_rates(seed in 0u64..200) {
        let catalog = ModeCatalog::rsc1();
        let base = HazardSchedule::new(catalog.clone());
        let mut rng = SimRng::seed_from(seed);
        let plan = LemonPlan::plant(&mut rng, 50, 5);
        let mut with = HazardSchedule::new(catalog);
        plan.apply(&mut with);
        for n in 0..50u32 {
            for (mode, _) in with.catalog().clone().iter() {
                let node = NodeId::new(n);
                prop_assert!(
                    with.rate(node, mode, SimTime::ZERO)
                        >= base.rate(node, mode, SimTime::ZERO) - 1e-15
                );
            }
        }
    }
}
