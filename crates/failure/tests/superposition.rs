//! Statistical-equivalence suite: superposition sampling vs. per-stream
//! thinning.
//!
//! The two injector backends realize the *same* non-homogeneous Poisson law
//! from different random draws, so no test here compares event-by-event —
//! instead each pins distributional marginals (per-mode rates, era-window
//! counts, permanent fractions, a chi-square over the mode split) for both
//! backends against the analytic expectation and against each other, across
//! several seeds. CI runs this file as the injector-equivalence smoke gate.

use std::collections::HashMap;

use rsc_cluster::ids::NodeId;
use rsc_failure::injector::{FailureEvent, FailureInjector};
use rsc_failure::modes::{ModeCatalog, ModeId};
use rsc_failure::process::{HazardSchedule, NodeFilter, RateModifier};
use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::SimTime;

const NODES: u32 = 1000;
const DAYS: u64 = 100;
const SEEDS: [u64; 4] = [11, 22, 33, 44];

fn superposition(schedule: HazardSchedule, seed: u64) -> FailureInjector {
    FailureInjector::new(schedule, NODES, SimRng::seed_from(seed))
}

fn per_stream(schedule: HazardSchedule, seed: u64) -> FailureInjector {
    FailureInjector::new_per_stream(schedule, NODES, SimRng::seed_from(seed))
}

/// Pooled event streams over [`SEEDS`] for one backend.
fn pooled<F>(make: F) -> Vec<FailureEvent>
where
    F: Fn(u64) -> FailureInjector,
{
    let mut all = Vec::new();
    for seed in SEEDS {
        all.extend(make(seed).drain_until(SimTime::from_days(DAYS)));
    }
    all
}

fn counts_by_mode(events: &[FailureEvent]) -> HashMap<ModeId, f64> {
    let mut counts = HashMap::new();
    for ev in events {
        *counts.entry(ev.mode).or_insert(0.0) += 1.0;
    }
    counts
}

/// Per-mode expected pooled counts for a flat (era-free) schedule.
fn expected_by_mode(catalog: &ModeCatalog) -> HashMap<ModeId, f64> {
    let scale = (NODES as u64 * DAYS * SEEDS.len() as u64) as f64;
    catalog
        .iter()
        .map(|(id, spec)| (id, spec.rate_per_node_day * scale))
        .collect()
}

#[test]
fn per_mode_rates_match_analytic_expectation_on_both_backends() {
    let catalog = ModeCatalog::rsc1();
    let expected = expected_by_mode(&catalog);
    for (name, events) in [
        (
            "superposition",
            pooled(|s| superposition(HazardSchedule::new(catalog.clone()), s)),
        ),
        (
            "per_stream",
            pooled(|s| per_stream(HazardSchedule::new(catalog.clone()), s)),
        ),
    ] {
        let counts = counts_by_mode(&events);
        for (&mode, &exp) in &expected {
            let got = counts.get(&mode).copied().unwrap_or(0.0);
            // 4σ Poisson tolerance on the pooled count.
            let tol = 4.0 * exp.sqrt().max(1.0);
            assert!(
                (got - exp).abs() < tol,
                "{name}: mode {mode} count {got} vs expected {exp} (tol {tol:.1})"
            );
        }
    }
}

#[test]
fn backends_agree_per_mode_within_joint_poisson_tolerance() {
    let catalog = ModeCatalog::rsc1();
    let sp = counts_by_mode(&pooled(|s| {
        superposition(HazardSchedule::new(catalog.clone()), s)
    }));
    let ps = counts_by_mode(&pooled(|s| {
        per_stream(HazardSchedule::new(catalog.clone()), s)
    }));
    for (id, _) in catalog.iter() {
        let a = sp.get(&id).copied().unwrap_or(0.0);
        let b = ps.get(&id).copied().unwrap_or(0.0);
        // Var(A - B) = E[A] + E[B] for independent Poisson counts.
        let tol = 4.0 * (a + b).sqrt().max(1.0);
        assert!(
            (a - b).abs() < tol,
            "mode {id}: superposition {a} vs per-stream {b} (tol {tol:.1})"
        );
    }
}

#[test]
fn chi_square_mode_split_fits_on_both_backends() {
    // Pearson chi-square of pooled per-mode counts against the analytic
    // expectation. df = modes - 1 = 7; the α = 0.0005 critical value is
    // ≈ 26.0, and seeds are fixed so this is a pinned, non-flaky check.
    let catalog = ModeCatalog::rsc1();
    let expected = expected_by_mode(&catalog);
    for (name, events) in [
        (
            "superposition",
            pooled(|s| superposition(HazardSchedule::new(catalog.clone()), s)),
        ),
        (
            "per_stream",
            pooled(|s| per_stream(HazardSchedule::new(catalog.clone()), s)),
        ),
    ] {
        let counts = counts_by_mode(&events);
        let chi2: f64 = expected
            .iter()
            .map(|(mode, &exp)| {
                let got = counts.get(mode).copied().unwrap_or(0.0);
                (got - exp).powi(2) / exp
            })
            .sum();
        assert!(chi2 < 26.0, "{name}: chi-square {chi2:.2} exceeds critical");
    }
}

#[test]
fn era_window_counts_agree_under_rsc1_storyline() {
    // The RSC-1 eras: GSP ×10 for days 0–90 then ×0.05, plus a 15× IB
    // spike on two nodes during days 240–270. Both backends must put the
    // same (analytically expected) mass in each window.
    let spike_nodes = vec![NodeId::new(3), NodeId::new(7)];
    let horizon = SimTime::from_days(300);
    let make_schedule = || HazardSchedule::new(ModeCatalog::rsc1()).rsc1_eras(spike_nodes.clone());
    let catalog = ModeCatalog::rsc1();
    let gsp = make_schedule()
        .mode_by_symptom(rsc_failure::taxonomy::FailureSymptom::GspTimeout)
        .unwrap();
    let gsp_base = catalog.mode(gsp).rate_per_node_day;

    let window_count = |events: &[FailureEvent], mode: ModeId, lo: u64, hi: u64| {
        events
            .iter()
            .filter(|e| {
                e.mode == mode && e.at >= SimTime::from_days(lo) && e.at < SimTime::from_days(hi)
            })
            .count() as f64
    };

    for (name, make) in [
        (
            "superposition",
            Box::new(|seed| superposition(make_schedule(), seed))
                as Box<dyn Fn(u64) -> FailureInjector>,
        ),
        (
            "per_stream",
            Box::new(|seed| per_stream(make_schedule(), seed)),
        ),
    ] {
        let mut events = Vec::new();
        for seed in SEEDS {
            events.extend(make(seed).drain_until(horizon));
        }
        let pool = (NODES as u64 * SEEDS.len() as u64) as f64;
        // GSP regression era: ×10 for the first 90 days.
        let exp_early = pool * 90.0 * 10.0 * gsp_base;
        let got_early = window_count(&events, gsp, 0, 90);
        let tol = 4.0 * exp_early.sqrt().max(1.0);
        assert!(
            (got_early - exp_early).abs() < tol,
            "{name}: early GSP {got_early} vs {exp_early:.1} (tol {tol:.1})"
        );
        // Post-patch era: ×0.05 for days 90–300.
        let exp_late = pool * 210.0 * 0.05 * gsp_base;
        let got_late = window_count(&events, gsp, 90, 300);
        let tol = 4.0 * exp_late.sqrt().max(2.0);
        assert!(
            (got_late - exp_late).abs() < tol,
            "{name}: late GSP {got_late} vs {exp_late:.1} (tol {tol:.1})"
        );
        // The IB spike stays confined to the spike nodes.
        let ib = make_schedule()
            .mode_by_symptom(rsc_failure::taxonomy::FailureSymptom::InfinibandLink)
            .unwrap();
        let spike_hits = events
            .iter()
            .filter(|e| {
                e.mode == ib
                    && e.at >= SimTime::from_days(240)
                    && e.at < SimTime::from_days(270)
                    && spike_nodes.contains(&e.node)
            })
            .count() as f64;
        let ib_base = catalog.mode(ib).rate_per_node_day;
        let exp_spike = (spike_nodes.len() * SEEDS.len()) as f64 * 30.0 * 15.0 * ib_base;
        // Small absolute counts: loose 5σ window with a floor.
        let tol = (5.0 * exp_spike.sqrt()).max(5.0);
        assert!(
            (spike_hits - exp_spike).abs() < tol,
            "{name}: IB spike {spike_hits} vs {exp_spike:.1} (tol {tol:.1})"
        );
    }
}

#[test]
fn permanent_fractions_agree_with_mode_specs() {
    let catalog = ModeCatalog::rsc1();
    for (name, events) in [
        (
            "superposition",
            pooled(|s| superposition(HazardSchedule::new(catalog.clone()), s)),
        ),
        (
            "per_stream",
            pooled(|s| per_stream(HazardSchedule::new(catalog.clone()), s)),
        ),
    ] {
        let counts = counts_by_mode(&events);
        for (id, spec) in catalog.iter() {
            let n = counts.get(&id).copied().unwrap_or(0.0);
            if n < 200.0 {
                continue; // too few events for a meaningful fraction
            }
            let perm = events
                .iter()
                .filter(|e| e.mode == id && e.permanent)
                .count() as f64
                / n;
            // 5σ binomial tolerance (floored: low-p modes are Poisson-skewed).
            let tol = 5.0 * (spec.permanent_prob * (1.0 - spec.permanent_prob) / n).sqrt();
            assert!(
                (perm - spec.permanent_prob).abs() < tol.max(0.04),
                "{name}: mode {id} permanent fraction {perm:.3} vs spec {p:.3}",
                p = spec.permanent_prob
            );
        }
    }
}

#[test]
fn node_multipliers_shift_mass_to_lemon_nodes() {
    // A 40× lemon multiplier on one node/mode should give that node ~40×
    // its fair share of that mode's events — on both backends, proving the
    // alias weights carry per-node multipliers.
    let catalog = ModeCatalog::rsc1();
    let (mode, _) = catalog.iter().next().expect("non-empty catalog");
    let lemon = NodeId::new(123);
    let make_schedule = || {
        let mut s = HazardSchedule::new(catalog.clone());
        s.add_node_multiplier(lemon, mode, 40.0);
        s
    };
    for (name, make) in [
        (
            "superposition",
            Box::new(|seed| superposition(make_schedule(), seed))
                as Box<dyn Fn(u64) -> FailureInjector>,
        ),
        (
            "per_stream",
            Box::new(|seed| per_stream(make_schedule(), seed)),
        ),
    ] {
        let events = pooled(&make);
        let mode_events: Vec<_> = events.iter().filter(|e| e.mode == mode).collect();
        let on_lemon = mode_events.iter().filter(|e| e.node == lemon).count() as f64;
        let expect_frac = 40.0 / (40.0 + (NODES - 1) as f64);
        let n = mode_events.len() as f64;
        assert!(n > 100.0, "{name}: too few mode events ({n})");
        let frac = on_lemon / n;
        let tol = 5.0 * (expect_frac * (1.0 - expect_frac) / n).sqrt();
        assert!(
            (frac - expect_frac).abs() < tol.max(0.01),
            "{name}: lemon share {frac:.4} vs expected {expect_frac:.4}"
        );
    }
}

#[test]
fn determinism_given_seed_on_both_backends() {
    let schedule =
        || HazardSchedule::new(ModeCatalog::rsc1()).rsc1_eras(vec![NodeId::new(1), NodeId::new(2)]);
    let horizon = SimTime::from_days(300);
    let a = superposition(schedule(), 77).drain_until(horizon);
    let b = superposition(schedule(), 77).drain_until(horizon);
    assert_eq!(a, b, "superposition stream not reproducible");
    assert!(!a.is_empty());
    let c = per_stream(schedule(), 77).drain_until(horizon);
    let d = per_stream(schedule(), 77).drain_until(horizon);
    assert_eq!(c, d, "per-stream stream not reproducible");

    let e = superposition(schedule(), 78).drain_until(horizon);
    assert_ne!(a, e, "different seeds should differ");
}

#[test]
fn rate_modifier_shared_with_all_filter_hits_same_totals() {
    // An All-nodes window modifier must scale the merged rate identically
    // on both backends (exercises alias rebuild at both window edges).
    let ib_like = |schedule: &HazardSchedule| {
        schedule
            .catalog()
            .iter()
            .next()
            .map(|(id, _)| id)
            .expect("non-empty catalog")
    };
    let make_schedule = || {
        let mut s = HazardSchedule::new(ModeCatalog::rsc2());
        let mode = ib_like(&s);
        s.add_modifier(RateModifier {
            mode,
            nodes: NodeFilter::All,
            from: SimTime::from_days(20),
            until: SimTime::from_days(40),
            multiplier: 8.0,
        });
        s
    };
    let horizon = SimTime::from_days(60);
    let count_in_window = |events: &[FailureEvent]| {
        events
            .iter()
            .filter(|e| e.at >= SimTime::from_days(20) && e.at < SimTime::from_days(40))
            .count() as f64
    };
    let mut sp_total = 0.0;
    let mut ps_total = 0.0;
    for seed in SEEDS {
        sp_total += count_in_window(&superposition(make_schedule(), seed).drain_until(horizon));
        ps_total += count_in_window(&per_stream(make_schedule(), seed).drain_until(horizon));
    }
    let tol = 4.0 * (sp_total + ps_total).sqrt().max(1.0);
    assert!(
        (sp_total - ps_total).abs() < tol,
        "window counts: superposition {sp_total} vs per-stream {ps_total} (tol {tol:.1})"
    );
}
