//! Lemon nodes: servers with recurring, correlated failures.
//!
//! The paper (§IV-A) found 40 such nodes across both clusters — 1.2% of
//! RSC-1 and 1.7% of RSC-2 — whose repeat failures existing health checks
//! could not pin down. Table II gives the root-cause breakdown after manual
//! diagnosis. Here we *plant* lemons with known ground truth so the
//! detection pipeline (in `rsc-core`) can be evaluated quantitatively.

use serde::{Deserialize, Serialize};

use rsc_cluster::component::ComponentKind;
use rsc_cluster::ids::NodeId;
use rsc_sim_core::bitset::HierBitSet;
use rsc_sim_core::rng::{SimRng, WeightedIndex};

use crate::process::HazardSchedule;
use crate::taxonomy::FailureSymptom;

/// Table II of the paper: root causes of diagnosed lemon nodes and their
/// fractions (percent).
pub const ROOT_CAUSE_TABLE: [(ComponentKind, f64); 9] = [
    (ComponentKind::Optics, 2.6),
    (ComponentKind::Cpu, 2.6),
    (ComponentKind::Psu, 5.1),
    (ComponentKind::Nic, 7.7),
    (ComponentKind::Eud, 10.3),
    (ComponentKind::Pcie, 15.4),
    (ComponentKind::Dimm, 20.5),
    (ComponentKind::Gpu, 28.2),
    (ComponentKind::Bios, 7.7),
];

/// A planted lemon node with known ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LemonNode {
    /// The afflicted node.
    pub node: NodeId,
    /// The true root cause (sampled from Table II).
    pub root_cause: ComponentKind,
    /// The lemon's *added* failure rate, failures per day, spread across
    /// the modes its root-cause component drives. Targeting a rate rather
    /// than a bare multiplier keeps lemons comparably sick no matter how
    /// rare their root cause's base mode is.
    pub extra_rate_per_day: f64,
}

/// The set of lemons planted in a simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LemonPlan {
    lemons: Vec<LemonNode>,
}

impl LemonPlan {
    /// No lemons.
    pub fn none() -> Self {
        LemonPlan::default()
    }

    /// Plants `count` lemons on distinct nodes chosen uniformly from
    /// `0..num_nodes`, with root causes drawn from Table II and extra
    /// failure rates lognormal around ~0.12 failures/day.
    ///
    /// # Panics
    ///
    /// Panics if `count > num_nodes`.
    pub fn plant(rng: &mut SimRng, num_nodes: u32, count: usize) -> Self {
        Self::plant_with_rate(rng, num_nodes, count, 0.12)
    }

    /// [`Self::plant`] with an explicit median extra failure rate
    /// (failures per day) — lets scenarios trade lemon severity against
    /// the background rate while keeping the observed total fixed.
    ///
    /// # Panics
    ///
    /// Panics if `count > num_nodes` or the rate is not positive.
    pub fn plant_with_rate(
        rng: &mut SimRng,
        num_nodes: u32,
        count: usize,
        median_rate_per_day: f64,
    ) -> Self {
        assert!(count as u32 <= num_nodes, "more lemons than nodes");
        assert!(
            median_rate_per_day > 0.0 && median_rate_per_day.is_finite(),
            "median rate must be positive"
        );
        let cause_dist = WeightedIndex::new(ROOT_CAUSE_TABLE.iter().map(|&(_, w)| w))
            .expect("Table II weights are valid");
        // Rejection sampling with bitset membership: same draw/accept
        // sequence as a linear `contains` scan (so existing seeds reproduce
        // identical plans), but O(1) per candidate — at fleet scale the
        // quadratic scan over ~100k chosen lemons dominated construction.
        let mut taken = HierBitSet::new(num_nodes as usize);
        let mut chosen: Vec<u32> = Vec::with_capacity(count);
        while chosen.len() < count {
            let candidate = rng.below(num_nodes as u64) as u32;
            if taken.insert(candidate) {
                chosen.push(candidate);
            }
        }
        let lemons = chosen
            .into_iter()
            .map(|idx| {
                let root_cause = ROOT_CAUSE_TABLE[cause_dist.sample(rng)].0;
                // Lognormal, sigma 0.5: at the default 0.12/day median a
                // typical lemon fails a job every week or two — roughly
                // 20–40× a healthy node's total rate, concentrated in its
                // root cause's modes.
                let extra_rate_per_day = rng.lognormal(median_rate_per_day.ln(), 0.5);
                LemonNode {
                    node: NodeId::new(idx),
                    root_cause,
                    extra_rate_per_day,
                }
            })
            .collect();
        LemonPlan { lemons }
    }

    /// The planted lemons.
    pub fn lemons(&self) -> &[LemonNode] {
        &self.lemons
    }

    /// Whether a node is a planted lemon.
    pub fn is_lemon(&self, node: NodeId) -> bool {
        self.lemons.iter().any(|l| l.node == node)
    }

    /// The lemon set as a bitset over `[0, num_nodes)` — the O(1)
    /// membership form of [`Self::is_lemon`] for per-event hot paths, where
    /// a linear scan over ~1% of the fleet per failure would dominate.
    pub fn node_mask(&self, num_nodes: u32) -> HierBitSet {
        let mut mask = HierBitSet::new(num_nodes as usize);
        for l in &self.lemons {
            if l.node.index() < num_nodes {
                mask.insert(l.node.index());
            }
        }
        mask
    }

    /// The ground-truth lemon node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.lemons.iter().map(|l| l.node).collect()
    }

    /// Applies the plan to a hazard schedule: each lemon's extra rate is
    /// converted into per-mode multipliers over the modes its root-cause
    /// component drives, proportionally to their base rates.
    pub fn apply(&self, schedule: &mut HazardSchedule) {
        for lemon in &self.lemons {
            let modes: Vec<_> = symptoms_for_cause(lemon.root_cause)
                .iter()
                .filter_map(|s| schedule.mode_by_symptom(*s))
                .collect();
            let base_sum: f64 = modes
                .iter()
                .map(|&m| schedule.catalog().mode(m).rate_per_node_day)
                .sum();
            if base_sum <= 0.0 {
                continue;
            }
            // base × factor = base + extra  ⇒  factor = 1 + extra/base.
            let factor = 1.0 + lemon.extra_rate_per_day / base_sum;
            for mode in modes {
                schedule.add_node_multiplier(lemon.node, mode, factor);
            }
        }
    }

    /// Root-cause histogram over the planted lemons, as `(kind, count)`.
    pub fn root_cause_counts(&self) -> Vec<(ComponentKind, usize)> {
        ROOT_CAUSE_TABLE
            .iter()
            .map(|&(kind, _)| {
                let n = self.lemons.iter().filter(|l| l.root_cause == kind).count();
                (kind, n)
            })
            .collect()
    }
}

/// Failure symptoms a defective component of the given kind produces.
///
/// Components without a dedicated failure mode (PSU, BIOS, EUD, CPU) map
/// onto the symptoms they would present as — typically hangs
/// (NODE_FAIL-only) or GPU unavailability.
pub fn symptoms_for_cause(kind: ComponentKind) -> &'static [FailureSymptom] {
    use FailureSymptom::*;
    match kind {
        ComponentKind::Gpu => &[GpuMemoryError, GpuUnavailable, GpuNvlinkError],
        ComponentKind::Dimm => &[MainMemoryError],
        ComponentKind::Pcie => &[PcieError, GpuUnavailable],
        ComponentKind::Nic => &[EthlinkError, FilesystemMount],
        ComponentKind::Optics => &[InfinibandLink],
        ComponentKind::Psu => &[NcclTimeout, GpuUnavailable],
        ComponentKind::Cpu => &[SystemService, NcclTimeout],
        ComponentKind::Bios => &[GpuUnavailable, GpuDriverFirmwareError],
        ComponentKind::Eud => &[SystemService],
        ComponentKind::NvSwitch => &[GpuNvlinkError],
        ComponentKind::BlockDevice => &[FilesystemMount],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ModeCatalog;

    #[test]
    fn plants_requested_count_on_distinct_nodes() {
        let mut rng = SimRng::seed_from(1);
        let plan = LemonPlan::plant(&mut rng, 1000, 24);
        assert_eq!(plan.lemons().len(), 24);
        let mut ids = plan.node_ids();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 24);
    }

    #[test]
    fn root_causes_follow_table_two_roughly() {
        let mut rng = SimRng::seed_from(2);
        let plan = LemonPlan::plant(&mut rng, 100_000, 5_000);
        let counts = plan.root_cause_counts();
        let gpu = counts
            .iter()
            .find(|(k, _)| *k == ComponentKind::Gpu)
            .unwrap()
            .1 as f64
            / 5_000.0;
        // Table II says 28.2% GPU.
        assert!((gpu - 0.282).abs() < 0.03, "gpu fraction={gpu}");
    }

    #[test]
    fn extra_rates_are_meaningful() {
        let mut rng = SimRng::seed_from(3);
        let plan = LemonPlan::plant(&mut rng, 1000, 40);
        for l in plan.lemons() {
            assert!(
                l.extra_rate_per_day > 0.01,
                "lemon extra rate too small: {}",
                l.extra_rate_per_day
            );
        }
    }

    #[test]
    fn apply_raises_rates_only_for_lemons() {
        let mut rng = SimRng::seed_from(4);
        let plan = LemonPlan::plant(&mut rng, 100, 5);
        let mut schedule = HazardSchedule::new(ModeCatalog::rsc1());
        plan.apply(&mut schedule);
        let lemon = plan.lemons()[0].clone();
        let symptom = symptoms_for_cause(lemon.root_cause)[0];
        let mode = schedule.mode_by_symptom(symptom).unwrap();
        let healthy = (0..100)
            .map(NodeId::new)
            .find(|n| !plan.is_lemon(*n))
            .unwrap();
        let lemon_rate = schedule.rate(lemon.node, mode, rsc_sim_core::time::SimTime::ZERO);
        let healthy_rate = schedule.rate(healthy, mode, rsc_sim_core::time::SimTime::ZERO);
        assert!(lemon_rate > 3.0 * healthy_rate);
    }

    #[test]
    fn every_component_maps_to_symptoms() {
        for kind in ComponentKind::ALL {
            assert!(!symptoms_for_cause(kind).is_empty(), "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "more lemons than nodes")]
    fn too_many_lemons_rejected() {
        let mut rng = SimRng::seed_from(5);
        let _ = LemonPlan::plant(&mut rng, 3, 4);
    }
}
