#![warn(missing_docs)]

//! Failure modelling for the `rsc-reliability` workspace.
//!
//! Implements the paper's failure taxonomy (Table I), per-mode hazard
//! processes with time-varying "era" effects (Fig. 5), planted lemon nodes
//! with the Table II root-cause mix, and the co-occurring signal structure
//! observed in production (PCIe ↔ XID 79 ↔ IPMI).
//!
//! The central flow:
//!
//! 1. build a [`modes::ModeCatalog`] (calibrated failure rates per cause),
//! 2. wrap it in a [`process::HazardSchedule`] and layer on eras and
//!    [`lemon::LemonPlan`] multipliers,
//! 3. feed it to a [`injector::FailureInjector`] to get the deterministic
//!    failure event stream,
//! 4. expand each event into raw node signals with a
//!    [`cooccur::CooccurrenceProfile`].
//!
//! # Example
//!
//! ```
//! use rsc_failure::injector::FailureInjector;
//! use rsc_failure::modes::ModeCatalog;
//! use rsc_failure::process::HazardSchedule;
//! use rsc_sim_core::rng::SimRng;
//! use rsc_sim_core::time::SimTime;
//!
//! let schedule = HazardSchedule::new(ModeCatalog::rsc1());
//! let mut injector = FailureInjector::new(schedule, 128, SimRng::seed_from(7));
//! let failures = injector.drain_until(SimTime::from_days(30));
//! // ~128 nodes * 30 days * 6.5e-3 ≈ 25 failures.
//! assert!(!failures.is_empty());
//! ```

pub mod cooccur;
pub mod injector;
pub mod lemon;
pub mod modes;
pub mod process;
pub mod signals;
pub mod taxonomy;

pub use cooccur::CooccurrenceProfile;
pub use injector::{FailureEvent, FailureInjector};
pub use lemon::{LemonNode, LemonPlan};
pub use modes::{ModeCatalog, ModeId, ModeSpec, Severity};
pub use process::{HazardSchedule, NodeFilter, RateModifier};
pub use signals::{NodeSignal, SignalKind};
pub use taxonomy::{FailureDomain, FailureSymptom};
