//! The failure injector: turns hazard schedules into a deterministic stream
//! of failure events.
//!
//! # Superposition sampling (default)
//!
//! The merged candidate process over all `(node, mode)` streams is itself a
//! Poisson process at the summed rate — the classical superposition
//! theorem. The injector therefore keeps **no per-stream state at all**: it
//! draws one exponential gap at the total rate, then attributes the event
//! to a stream categorically via an O(1) [`AliasTable`] whose weights are
//! each stream's *exact* rate in the current hazard era. Because
//! [`HazardSchedule`] rates are piecewise-constant in time (era modifiers)
//! and node multipliers are time-independent, the weight vector only
//! changes at [`HazardSchedule::era_boundaries`]; the table is rebuilt
//! exactly there, and the in-flight gap that crossed the boundary is
//! discarded and redrawn at the new total rate — exact by memorylessness.
//! A Lewis–Shedler thinning acceptance (`rate(t) / weight`) is kept as a
//! numerical safety net, but since the weight *is* the era rate the ratio
//! is exactly 1 and consumes no randomness.
//!
//! This replaces a `nodes × modes`-entry candidate heap (819k entries at
//! 102k nodes) with O(1) amortized work per emitted failure, and makes
//! [`FailureInjector::peek_candidate_time`] a field read.
//!
//! # Per-stream thinning (reference)
//!
//! The previous implementation — one candidate stream per `(node, mode)`
//! drawn at the mode's *maximum* rate and thin-accepted with probability
//! `rate(t) / max_rate` — is retained behind
//! [`FailureInjector::new_per_stream`] (`#[doc(hidden)]`, mirroring the
//! indexed-vs-naive scheduler pattern). The two samplers realize the same
//! law from different random draws, so the statistical-equivalence suite in
//! `tests/superposition.rs` pins their marginals against each other.

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_sim_core::event::EventQueue;
use rsc_sim_core::rng::{AliasTable, SimRng};
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::modes::ModeId;
use crate::process::HazardSchedule;
use crate::taxonomy::FailureSymptom;

/// A realized failure occurrence on a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// When the failure occurred.
    pub at: SimTime,
    /// The afflicted node.
    pub node: NodeId,
    /// Which failure mode fired.
    pub mode: ModeId,
    /// The mode's primary symptom (denormalized for convenience).
    pub symptom: FailureSymptom,
    /// Whether the underlying component is permanently damaged (needs
    /// vendor repair) or the fault is transient.
    pub permanent: bool,
}

/// Pre-allocation ceiling for [`FailureInjector::drain_until`], so an
/// open-ended horizon can never request absurd memory up front.
const DRAIN_PRESIZE_CAP: f64 = (1 << 20) as f64;

/// Merged-process sampler state: one pending candidate plus the current
/// era's attribution table. Weights are laid out node-major:
/// `index = node * num_modes + mode_position`.
struct Superposition {
    mode_ids: Vec<ModeId>,
    num_nodes: u32,
    /// Sorted instants where some stream's rate changes.
    boundaries: Vec<SimTime>,
    /// First instant of the current era (zero or a boundary). The exact
    /// per-stream weight the attribution table was built from is
    /// reconstructed on demand as `schedule.rate(node, mode, era_start)` —
    /// bitwise the same value, so the `nodes × modes` weight vector does
    /// not need to outlive table construction.
    era_start: SimTime,
    /// Exclusive end of the current era ([`SimTime::MAX`] for the last).
    era_end: SimTime,
    /// Attribution table over the era's per-stream rates; `None` when the
    /// era's total rate is zero.
    table: Option<AliasTable>,
    /// Summed rate of the merged process in the current era (per day).
    total: f64,
    /// Pre-drawn time of the next merged-process candidate; `None` once no
    /// further event can ever occur.
    next_candidate: Option<SimTime>,
}

impl Superposition {
    fn new(schedule: &HazardSchedule, num_nodes: u32, rng: &mut SimRng) -> Self {
        let mode_ids: Vec<ModeId> = schedule.catalog().iter().map(|(id, _)| id).collect();
        let mut sp = Superposition {
            mode_ids,
            num_nodes,
            boundaries: schedule.era_boundaries(),
            era_start: SimTime::ZERO,
            era_end: SimTime::MAX,
            table: None,
            total: 0.0,
            next_candidate: None,
        };
        sp.rebuild(schedule, SimTime::ZERO);
        sp.roll_next(schedule, rng, SimTime::ZERO);
        sp
    }

    /// Rebuilds the era state for the era containing `era_start` (which
    /// must be an era's first instant: zero or a boundary).
    fn rebuild(&mut self, schedule: &HazardSchedule, era_start: SimTime) {
        self.era_start = era_start;
        self.era_end = self
            .boundaries
            .iter()
            .copied()
            .find(|&b| b > era_start)
            .unwrap_or(SimTime::MAX);
        // The *exact* rates at the era start; constant through the era, so
        // acceptance-time `rate(t)` matches them bitwise. The vector is
        // consumed by the table build (its allocation becomes the
        // acceptance-probability array) rather than retained: at fleet
        // scale `nodes × modes` doubles are too big to keep twice.
        let weights = schedule.era_rates_node_major(&self.mode_ids, self.num_nodes, era_start);
        self.table = AliasTable::from_weights_vec(weights).ok();
        self.total = self.table.as_ref().map_or(0.0, AliasTable::total);
    }

    /// Draws the next merged-process candidate strictly after `from`,
    /// advancing eras (and rebuilding the table) as needed. A gap that
    /// lands past the era end is discarded and redrawn at the next era's
    /// rate — exact for a non-homogeneous Poisson process with
    /// piecewise-constant intensity, by memorylessness.
    fn roll_next(&mut self, schedule: &HazardSchedule, rng: &mut SimRng, mut from: SimTime) {
        loop {
            if self.total <= 0.0 {
                if self.era_end == SimTime::MAX {
                    self.next_candidate = None;
                    return;
                }
                from = self.era_end;
                self.rebuild(schedule, from);
                continue;
            }
            let gap = SimDuration::from_days_f64(rng.exponential(self.total));
            let cand = from + gap;
            if cand >= self.era_end {
                if self.era_end == SimTime::MAX {
                    self.next_candidate = None;
                    return;
                }
                from = self.era_end;
                self.rebuild(schedule, from);
                continue;
            }
            self.next_candidate = Some(cand);
            return;
        }
    }
}

/// Legacy per-stream thinning state: one candidate per `(node, mode)` in a
/// shared queue, drawn at the stream's maximum rate.
struct PerStream {
    candidates: EventQueue<(NodeId, ModeId)>,
    /// Sum of all stream caps (per day), for drain pre-sizing.
    total_cap: f64,
}

// One backend lives per injector; the size gap between the variants is
// irrelevant and boxing would only add an indirection.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Superposition(Superposition),
    PerStream(PerStream),
}

/// Generates the failure event stream for a cluster.
pub struct FailureInjector {
    schedule: HazardSchedule,
    backend: Backend,
    rng: SimRng,
}

impl FailureInjector {
    /// Creates an injector for `num_nodes` nodes under `schedule`, using
    /// superposition sampling over the merged `(node, mode)` process.
    pub fn new(schedule: HazardSchedule, num_nodes: u32, mut rng: SimRng) -> Self {
        let sp = Superposition::new(&schedule, num_nodes, &mut rng);
        FailureInjector {
            schedule,
            backend: Backend::Superposition(sp),
            rng,
        }
    }

    /// Creates an injector on the retained per-stream thinning backend:
    /// one candidate stream per `(node, mode)` at the mode's maximum rate.
    ///
    /// Reference implementation for the statistical-equivalence suite; not
    /// part of the public API.
    #[doc(hidden)]
    pub fn new_per_stream(schedule: HazardSchedule, num_nodes: u32, mut rng: SimRng) -> Self {
        let mut candidates = EventQueue::new();
        let mut total_cap = 0.0;
        let mode_ids: Vec<ModeId> = schedule.catalog().iter().map(|(id, _)| id).collect();
        for node_idx in 0..num_nodes {
            let node = NodeId::new(node_idx);
            for &mode in &mode_ids {
                let cap = schedule.max_rate(node, mode);
                if cap > 0.0 {
                    total_cap += cap;
                    let gap = SimDuration::from_days_f64(rng.exponential(cap));
                    candidates.schedule(SimTime::ZERO + gap, (node, mode));
                }
            }
        }
        FailureInjector {
            schedule,
            backend: Backend::PerStream(PerStream {
                candidates,
                total_cap,
            }),
            rng,
        }
    }

    /// True when this injector runs the superposition backend.
    #[doc(hidden)]
    pub fn is_superposition(&self) -> bool {
        matches!(self.backend, Backend::Superposition(_))
    }

    /// The hazard schedule driving this injector.
    pub fn schedule(&self) -> &HazardSchedule {
        &self.schedule
    }

    /// Timestamp of the next *candidate* event (an upper bound on when the
    /// next real failure can occur). On the superposition backend this is
    /// a field read (O(1)); on the per-stream backend, a heap peek.
    pub fn peek_candidate_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Superposition(sp) => sp.next_candidate,
            Backend::PerStream(ps) => ps.candidates.peek_time(),
        }
    }

    /// Returns the next accepted failure at or before `limit`, if any.
    ///
    /// Rejected candidates are consumed and rescheduled internally; calling
    /// this repeatedly yields the full ordered failure stream.
    pub fn next_before(&mut self, limit: SimTime) -> Option<FailureEvent> {
        match &mut self.backend {
            Backend::Superposition(sp) => loop {
                let at = sp.next_candidate?;
                if at > limit {
                    return None;
                }
                let table = sp.table.as_ref().expect("pending candidate implies table");
                // Attribute the merged event to a stream: O(1) alias draw.
                let i = table.sample(&mut self.rng);
                let node = NodeId::new((i / sp.mode_ids.len()) as u32);
                let mode = sp.mode_ids[i % sp.mode_ids.len()];
                // Thinning safety net: the sampling weight is the exact era
                // rate — recomputed at the era start, bitwise what the table
                // was built from — so the ratio is 1 and `chance`
                // short-circuits without a draw.
                let rate = self.schedule.rate(node, mode, at);
                let weight = self.schedule.rate(node, mode, sp.era_start);
                let event = if rate > 0.0 && self.rng.chance(rate / weight) {
                    let spec = self.schedule.catalog().mode(mode);
                    let permanent = self.rng.chance(spec.permanent_prob);
                    Some(FailureEvent {
                        at,
                        node,
                        mode,
                        symptom: spec.symptom,
                        permanent,
                    })
                } else {
                    None
                };
                sp.roll_next(&self.schedule, &mut self.rng, at);
                if let Some(ev) = event {
                    return Some(ev);
                }
            },
            Backend::PerStream(ps) => {
                while let Some((at, (node, mode))) = ps.candidates.pop_until(limit) {
                    // Reschedule the stream's next candidate first.
                    let cap = self.schedule.max_rate(node, mode);
                    let gap = SimDuration::from_days_f64(self.rng.exponential(cap));
                    ps.candidates.schedule(at + gap, (node, mode));

                    // Thinning acceptance.
                    let rate = self.schedule.rate(node, mode, at);
                    if rate > 0.0 && self.rng.chance(rate / cap) {
                        let spec = self.schedule.catalog().mode(mode);
                        let permanent = self.rng.chance(spec.permanent_prob);
                        return Some(FailureEvent {
                            at,
                            node,
                            mode,
                            symptom: spec.symptom,
                            permanent,
                        });
                    }
                }
                None
            }
        }
    }

    /// Drains all failures up to `limit` into a vector (test/analysis aid),
    /// pre-sized from the expected count (`total rate × horizon`) to avoid
    /// reallocation churn.
    pub fn drain_until(&mut self, limit: SimTime) -> Vec<FailureEvent> {
        let per_day = match &self.backend {
            Backend::Superposition(sp) => sp.total,
            Backend::PerStream(ps) => ps.total_cap,
        };
        let days = limit.as_secs() as f64 / 86_400.0;
        // Expected count padded ~3σ; clamped so `SimTime::MAX` horizons
        // cannot demand absurd allocations.
        let expected = per_day * days;
        let padded = expected + 3.0 * expected.sqrt() + 8.0;
        let presize = if padded.is_finite() {
            padded.min(DRAIN_PRESIZE_CAP) as usize
        } else {
            0
        };
        let mut out = Vec::with_capacity(presize);
        while let Some(ev) = self.next_before(limit) {
            out.push(ev);
        }
        out
    }
}

impl std::fmt::Debug for FailureInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.backend {
            Backend::Superposition(sp) => f
                .debug_struct("FailureInjector")
                .field("backend", &"superposition")
                .field("total_rate_per_day", &sp.total)
                .field("next_candidate", &sp.next_candidate)
                .finish(),
            Backend::PerStream(ps) => f
                .debug_struct("FailureInjector")
                .field("backend", &"per_stream")
                .field("pending_candidates", &ps.candidates.len())
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ModeCatalog;
    use crate::process::{NodeFilter, RateModifier};

    fn injector(num_nodes: u32, seed: u64) -> FailureInjector {
        let schedule = HazardSchedule::new(ModeCatalog::rsc1());
        FailureInjector::new(schedule, num_nodes, SimRng::seed_from(seed))
    }

    fn per_stream_injector(num_nodes: u32, seed: u64) -> FailureInjector {
        let schedule = HazardSchedule::new(ModeCatalog::rsc1());
        FailureInjector::new_per_stream(schedule, num_nodes, SimRng::seed_from(seed))
    }

    #[test]
    fn events_are_time_ordered() {
        let mut inj = injector(128, 1);
        let events = inj.drain_until(SimTime::from_days(60));
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn rate_matches_expectation() {
        // 1000 nodes × 100 days × 6.5e-3 failures/node-day ≈ 650 failures.
        let mut inj = injector(1000, 2);
        let events = inj.drain_until(SimTime::from_days(100));
        let n = events.len() as f64;
        assert!((n - 650.0).abs() < 3.0 * 650.0f64.sqrt(), "n={n}");
    }

    #[test]
    fn era_multiplier_increases_counts_in_window() {
        let mut schedule = HazardSchedule::new(ModeCatalog::rsc1());
        let ib = schedule
            .mode_by_symptom(FailureSymptom::InfinibandLink)
            .unwrap();
        schedule.add_modifier(RateModifier {
            mode: ib,
            nodes: NodeFilter::All,
            from: SimTime::from_days(50),
            until: SimTime::from_days(60),
            multiplier: 50.0,
        });
        let mut inj = FailureInjector::new(schedule, 500, SimRng::seed_from(3));
        let events = inj.drain_until(SimTime::from_days(100));
        let ib_in_window = events
            .iter()
            .filter(|e| {
                e.mode == ib && e.at >= SimTime::from_days(50) && e.at < SimTime::from_days(60)
            })
            .count();
        let ib_before = events
            .iter()
            .filter(|e| e.mode == ib && e.at < SimTime::from_days(50))
            .count();
        // Window is 10 days at 50×; the 50 days before are at 1×. Expect the
        // window to hold roughly 10× the count of the preceding 50 days.
        assert!(
            ib_in_window as f64 > 3.0 * ib_before as f64,
            "in_window={ib_in_window} before={ib_before}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = injector(64, 7).drain_until(SimTime::from_days(30));
        let b: Vec<_> = injector(64, 7).drain_until(SimTime::from_days(30));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = injector(64, 7).drain_until(SimTime::from_days(90));
        let b: Vec<_> = injector(64, 8).drain_until(SimTime::from_days(90));
        assert_ne!(a, b);
    }

    #[test]
    fn permanent_fraction_tracks_mode_spec() {
        let mut inj = injector(2000, 9);
        let events = inj.drain_until(SimTime::from_days(200));
        let gpu_mem: Vec<_> = events
            .iter()
            .filter(|e| e.symptom == FailureSymptom::GpuMemoryError)
            .collect();
        assert!(gpu_mem.len() > 100);
        let perm = gpu_mem.iter().filter(|e| e.permanent).count() as f64 / gpu_mem.len() as f64;
        assert!((perm - 0.35).abs() < 0.1, "perm={perm}");
    }

    #[test]
    fn per_stream_backend_same_contract() {
        let mut inj = per_stream_injector(1000, 2);
        assert!(!inj.is_superposition());
        let events = inj.drain_until(SimTime::from_days(100));
        let n = events.len() as f64;
        assert!((n - 650.0).abs() < 3.0 * 650.0f64.sqrt(), "n={n}");
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let a: Vec<_> = per_stream_injector(64, 7).drain_until(SimTime::from_days(30));
        let b: Vec<_> = per_stream_injector(64, 7).drain_until(SimTime::from_days(30));
        assert_eq!(a, b);
    }

    #[test]
    fn peek_candidate_bounds_next_event() {
        let mut inj = injector(256, 4);
        let peek = inj.peek_candidate_time().expect("positive-rate schedule");
        let ev = inj
            .next_before(SimTime::from_days(3650))
            .expect("some failure within a decade");
        assert!(ev.at >= peek, "first event precedes the peeked candidate");
    }

    #[test]
    fn superposition_total_tracks_era_rebuilds() {
        // A 50× IB era should raise the merged rate inside the window and
        // drop it back after — observable via inter-event density.
        let mut schedule = HazardSchedule::new(ModeCatalog::rsc1());
        let ib = schedule
            .mode_by_symptom(FailureSymptom::InfinibandLink)
            .unwrap();
        schedule.add_modifier(RateModifier {
            mode: ib,
            nodes: NodeFilter::All,
            from: SimTime::from_days(10),
            until: SimTime::from_days(20),
            multiplier: 50.0,
        });
        let mut inj = FailureInjector::new(schedule, 2000, SimRng::seed_from(5));
        let events = inj.drain_until(SimTime::from_days(30));
        let count = |lo: u64, hi: u64| {
            events
                .iter()
                .filter(|e| e.at >= SimTime::from_days(lo) && e.at < SimTime::from_days(hi))
                .count() as f64
        };
        let (before, during, after) = (count(0, 10), count(10, 20), count(20, 30));
        assert!(during > 2.0 * before, "during={during} before={before}");
        assert!(during > 2.0 * after, "during={during} after={after}");
    }

    #[test]
    fn zero_rate_schedule_yields_no_events() {
        // All-zero node multipliers force total rate 0 in every era.
        let mut schedule = HazardSchedule::new(ModeCatalog::rsc1());
        let mode_ids: Vec<ModeId> = schedule.catalog().iter().map(|(id, _)| id).collect();
        for node_idx in 0..8 {
            for &mode in &mode_ids {
                schedule.add_node_multiplier(NodeId::new(node_idx), mode, 0.0);
            }
        }
        let mut inj = FailureInjector::new(schedule, 8, SimRng::seed_from(6));
        assert_eq!(inj.peek_candidate_time(), None);
        assert!(inj.drain_until(SimTime::from_days(365)).is_empty());
    }
}
