//! The failure injector: turns hazard schedules into a deterministic stream
//! of failure events via Lewis–Shedler thinning.
//!
//! For each `(node, mode)` pair we maintain a candidate event stream drawn
//! at the mode's *maximum* rate; candidates are accepted with probability
//! `rate(t) / max_rate`, which yields an exact non-homogeneous Poisson
//! process for the piecewise-constant schedules used here.

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_sim_core::event::EventQueue;
use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::modes::ModeId;
use crate::process::HazardSchedule;
use crate::taxonomy::FailureSymptom;

/// A realized failure occurrence on a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// When the failure occurred.
    pub at: SimTime,
    /// The afflicted node.
    pub node: NodeId,
    /// Which failure mode fired.
    pub mode: ModeId,
    /// The mode's primary symptom (denormalized for convenience).
    pub symptom: FailureSymptom,
    /// Whether the underlying component is permanently damaged (needs
    /// vendor repair) or the fault is transient.
    pub permanent: bool,
}

/// Generates the failure event stream for a cluster.
pub struct FailureInjector {
    schedule: HazardSchedule,
    candidates: EventQueue<(NodeId, ModeId)>,
    rng: SimRng,
}

impl FailureInjector {
    /// Creates an injector for `num_nodes` nodes under `schedule`, seeding
    /// one candidate stream per `(node, mode)` with a positive rate bound.
    pub fn new(schedule: HazardSchedule, num_nodes: u32, mut rng: SimRng) -> Self {
        let mut candidates = EventQueue::new();
        let mode_ids: Vec<ModeId> = schedule.catalog().iter().map(|(id, _)| id).collect();
        for node_idx in 0..num_nodes {
            let node = NodeId::new(node_idx);
            for &mode in &mode_ids {
                let cap = schedule.max_rate(node, mode);
                if cap > 0.0 {
                    let gap = SimDuration::from_days_f64(rng.exponential(cap));
                    candidates.schedule(SimTime::ZERO + gap, (node, mode));
                }
            }
        }
        FailureInjector {
            schedule,
            candidates,
            rng,
        }
    }

    /// The hazard schedule driving this injector.
    pub fn schedule(&self) -> &HazardSchedule {
        &self.schedule
    }

    /// Timestamp of the next *candidate* event (an upper bound on when the
    /// next real failure can occur).
    pub fn peek_candidate_time(&self) -> Option<SimTime> {
        self.candidates.peek_time()
    }

    /// Returns the next accepted failure at or before `limit`, if any.
    ///
    /// Rejected candidates are consumed and rescheduled internally; calling
    /// this repeatedly yields the full ordered failure stream.
    pub fn next_before(&mut self, limit: SimTime) -> Option<FailureEvent> {
        while let Some((at, (node, mode))) = self.candidates.pop_until(limit) {
            // Reschedule the stream's next candidate first.
            let cap = self.schedule.max_rate(node, mode);
            let gap = SimDuration::from_days_f64(self.rng.exponential(cap));
            self.candidates.schedule(at + gap, (node, mode));

            // Thinning acceptance.
            let rate = self.schedule.rate(node, mode, at);
            if rate > 0.0 && self.rng.chance(rate / cap) {
                let spec = self.schedule.catalog().mode(mode);
                let permanent = self.rng.chance(spec.permanent_prob);
                return Some(FailureEvent {
                    at,
                    node,
                    mode,
                    symptom: spec.symptom,
                    permanent,
                });
            }
        }
        None
    }

    /// Drains all failures up to `limit` into a vector (test/analysis aid).
    pub fn drain_until(&mut self, limit: SimTime) -> Vec<FailureEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_before(limit) {
            out.push(ev);
        }
        out
    }
}

impl std::fmt::Debug for FailureInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureInjector")
            .field("pending_candidates", &self.candidates.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ModeCatalog;
    use crate::process::{NodeFilter, RateModifier};

    fn injector(num_nodes: u32, seed: u64) -> FailureInjector {
        let schedule = HazardSchedule::new(ModeCatalog::rsc1());
        FailureInjector::new(schedule, num_nodes, SimRng::seed_from(seed))
    }

    #[test]
    fn events_are_time_ordered() {
        let mut inj = injector(128, 1);
        let events = inj.drain_until(SimTime::from_days(60));
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn rate_matches_expectation() {
        // 1000 nodes × 100 days × 6.5e-3 failures/node-day ≈ 650 failures.
        let mut inj = injector(1000, 2);
        let events = inj.drain_until(SimTime::from_days(100));
        let n = events.len() as f64;
        assert!((n - 650.0).abs() < 3.0 * 650.0f64.sqrt(), "n={n}");
    }

    #[test]
    fn era_multiplier_increases_counts_in_window() {
        let mut schedule = HazardSchedule::new(ModeCatalog::rsc1());
        let ib = schedule
            .mode_by_symptom(FailureSymptom::InfinibandLink)
            .unwrap();
        schedule.add_modifier(RateModifier {
            mode: ib,
            nodes: NodeFilter::All,
            from: SimTime::from_days(50),
            until: SimTime::from_days(60),
            multiplier: 50.0,
        });
        let mut inj = FailureInjector::new(schedule, 500, SimRng::seed_from(3));
        let events = inj.drain_until(SimTime::from_days(100));
        let ib_in_window = events
            .iter()
            .filter(|e| {
                e.mode == ib && e.at >= SimTime::from_days(50) && e.at < SimTime::from_days(60)
            })
            .count();
        let ib_before = events
            .iter()
            .filter(|e| e.mode == ib && e.at < SimTime::from_days(50))
            .count();
        // Window is 10 days at 50×; the 50 days before are at 1×. Expect the
        // window to hold roughly 10× the count of the preceding 50 days.
        assert!(
            ib_in_window as f64 > 3.0 * ib_before as f64,
            "in_window={ib_in_window} before={ib_before}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = injector(64, 7).drain_until(SimTime::from_days(30));
        let b: Vec<_> = injector(64, 7).drain_until(SimTime::from_days(30));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = injector(64, 7).drain_until(SimTime::from_days(90));
        let b: Vec<_> = injector(64, 8).drain_until(SimTime::from_days(90));
        assert_ne!(a, b);
    }

    #[test]
    fn permanent_fraction_tracks_mode_spec() {
        let mut inj = injector(2000, 9);
        let events = inj.drain_until(SimTime::from_days(200));
        let gpu_mem: Vec<_> = events
            .iter()
            .filter(|e| e.symptom == FailureSymptom::GpuMemoryError)
            .collect();
        assert!(gpu_mem.len() > 100);
        let perm = gpu_mem.iter().filter(|e| e.permanent).count() as f64 / gpu_mem.len() as f64;
        assert!((perm - 0.35).abs() < 0.1, "perm={perm}");
    }
}
