//! Low-level hardware signals emitted when failures occur.
//!
//! A single physical fault typically raises *several* signals — e.g. a PCIe
//! fault raises a PCIe AER error, often XID 79 ("GPU fell off the bus"), and
//! an IPMI "Critical Interrupt" (paper §III: 43% / 21% co-occurrence on
//! RSC-1). Health checks observe signals; the attribution engine later works
//! backwards from them.

use std::fmt;

use serde::{Deserialize, Serialize};

use rsc_cluster::gpu::XidError;
use rsc_cluster::ids::NodeId;
use rsc_sim_core::time::SimTime;

/// A kind of raw telemetry signal a node can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SignalKind {
    /// A GPU XID event from the driver.
    Xid(XidError),
    /// PCIe AER error.
    PcieError,
    /// IPMI "Critical Interrupt" event from the BMC.
    IpmiCriticalInterrupt,
    /// Backend InfiniBand link error/flap.
    IbLinkError,
    /// Frontend Ethernet link error.
    EthLinkError,
    /// A required filesystem mountpoint is missing or hung.
    FsMountMissing,
    /// Host DRAM uncorrectable error.
    MainMemoryError,
    /// A host system service is down.
    ServiceFailure,
    /// Local block-device error.
    BlockDeviceError,
    /// Node stopped responding entirely (only the scheduler heartbeat —
    /// NODE_FAIL — can catch this).
    NodeUnresponsive,
    /// Power-delivery fault.
    PowerFault,
    /// Thermal excursion warning.
    ThermalWarning,
}

impl SignalKind {
    /// Short stable label for reports.
    pub fn label(self) -> String {
        match self {
            SignalKind::Xid(x) => format!("xid{}", x.code()),
            SignalKind::PcieError => "pcie_err".to_string(),
            SignalKind::IpmiCriticalInterrupt => "ipmi_critical".to_string(),
            SignalKind::IbLinkError => "ib_link_err".to_string(),
            SignalKind::EthLinkError => "eth_link_err".to_string(),
            SignalKind::FsMountMissing => "fs_mount_missing".to_string(),
            SignalKind::MainMemoryError => "dram_ue".to_string(),
            SignalKind::ServiceFailure => "service_down".to_string(),
            SignalKind::BlockDeviceError => "blockdev_err".to_string(),
            SignalKind::NodeUnresponsive => "unresponsive".to_string(),
            SignalKind::PowerFault => "power_fault".to_string(),
            SignalKind::ThermalWarning => "thermal_warn".to_string(),
        }
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A raw signal raised by a node at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSignal {
    /// The node that raised the signal.
    pub node: NodeId,
    /// What was observed.
    pub kind: SignalKind,
    /// When it was raised.
    pub at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(SignalKind::Xid(XidError::FallenOffBus).label(), "xid79");
        assert_eq!(SignalKind::PcieError.label(), "pcie_err");
        assert_eq!(SignalKind::NodeUnresponsive.to_string(), "unresponsive");
    }

    #[test]
    fn signals_are_comparable() {
        let a = NodeSignal {
            node: NodeId::new(1),
            kind: SignalKind::PcieError,
            at: SimTime::from_secs(10),
        };
        assert_eq!(a, a);
    }
}
