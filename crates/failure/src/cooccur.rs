//! Co-occurring signal expansion.
//!
//! The paper observes (§III) that one physical fault raises several
//! overlapping telemetry signals: on RSC-1, 43% of PCIe errors co-occur
//! with XID 79 ("GPU fell off the bus") and 21% with both XID 79 and an
//! IPMI "Critical Interrupt"; on RSC-2 the figures are 63% and 49%. IB-link
//! failures co-occur with GPU falling off the bus 2% (RSC-1) / 6% (RSC-2)
//! of the time. This module expands a [`FailureEvent`] into its raw signal
//! fan-out, which health checks then observe independently.

use serde::{Deserialize, Serialize};

use rsc_cluster::gpu::XidError;
use rsc_sim_core::rng::SimRng;

use crate::injector::FailureEvent;
use crate::signals::{NodeSignal, SignalKind};
use crate::taxonomy::FailureSymptom;

/// Cluster-specific co-occurrence probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CooccurrenceProfile {
    /// P(XID 79 | PCIe error).
    pub pcie_xid79: f64,
    /// P(XID 79 ∧ IPMI critical | PCIe error); must be ≤ `pcie_xid79`.
    pub pcie_all_three: f64,
    /// P(GPU-off-bus signal | IB link failure).
    pub iblink_gpu: f64,
    /// P(PCIe error signal | GPU unavailable).
    pub gpu_unavail_pcie: f64,
    /// P(row-remap XID | GPU memory error).
    pub gpumem_rowremap: f64,
}

impl CooccurrenceProfile {
    /// RSC-1 co-occurrence rates from the paper.
    pub fn rsc1() -> Self {
        CooccurrenceProfile {
            pcie_xid79: 0.43,
            pcie_all_three: 0.21,
            iblink_gpu: 0.02,
            gpu_unavail_pcie: 0.57,
            gpumem_rowremap: 0.30,
        }
    }

    /// RSC-2 co-occurrence rates from the paper.
    pub fn rsc2() -> Self {
        CooccurrenceProfile {
            pcie_xid79: 0.63,
            pcie_all_three: 0.49,
            iblink_gpu: 0.06,
            gpu_unavail_pcie: 0.37,
            gpumem_rowremap: 0.30,
        }
    }

    /// Expands a failure event into the set of raw signals it raises.
    ///
    /// The primary signal for the mode is always present; correlated
    /// signals are sampled per the profile. The returned set is never
    /// empty for observable modes, and contains exactly
    /// [`SignalKind::NodeUnresponsive`] for unobservable hangs.
    pub fn expand(&self, event: &FailureEvent, rng: &mut SimRng) -> Vec<NodeSignal> {
        let mut out = Vec::with_capacity(3);
        self.expand_into(event, rng, &mut out);
        out
    }

    /// [`Self::expand`] into a caller-owned buffer, so a hot loop can
    /// reuse one allocation across events. Draws the RNG in exactly the
    /// order `expand` does; the buffer is appended to, not cleared.
    pub fn expand_into(&self, event: &FailureEvent, rng: &mut SimRng, out: &mut Vec<NodeSignal>) {
        let mut raise = |kind: SignalKind| {
            out.push(NodeSignal {
                node: event.node,
                kind,
                at: event.at,
            })
        };
        match event.symptom {
            FailureSymptom::PcieError => {
                raise(SignalKind::PcieError);
                if rng.chance(self.pcie_xid79) {
                    raise(SignalKind::Xid(XidError::FallenOffBus));
                    // P(IPMI | XID79 fired) = all_three / xid79.
                    if rng.chance(self.pcie_all_three / self.pcie_xid79) {
                        raise(SignalKind::IpmiCriticalInterrupt);
                    }
                }
            }
            FailureSymptom::GpuUnavailable => {
                raise(SignalKind::Xid(XidError::FallenOffBus));
                if rng.chance(self.gpu_unavail_pcie) {
                    raise(SignalKind::PcieError);
                }
            }
            FailureSymptom::GpuMemoryError => {
                raise(SignalKind::Xid(XidError::DoubleBitEcc));
                if rng.chance(self.gpumem_rowremap) {
                    raise(SignalKind::Xid(XidError::RowRemapFailure));
                }
            }
            FailureSymptom::GpuNvlinkError => raise(SignalKind::Xid(XidError::NvlinkError)),
            FailureSymptom::GspTimeout => raise(SignalKind::Xid(XidError::GspTimeout)),
            FailureSymptom::GpuDriverFirmwareError => raise(SignalKind::Xid(XidError::Other(13))),
            FailureSymptom::InfinibandLink => {
                raise(SignalKind::IbLinkError);
                if rng.chance(self.iblink_gpu) {
                    raise(SignalKind::Xid(XidError::FallenOffBus));
                }
            }
            FailureSymptom::FilesystemMount => raise(SignalKind::FsMountMissing),
            FailureSymptom::MainMemoryError => raise(SignalKind::MainMemoryError),
            FailureSymptom::EthlinkError => raise(SignalKind::EthLinkError),
            FailureSymptom::SystemService => raise(SignalKind::ServiceFailure),
            FailureSymptom::NcclTimeout => raise(SignalKind::NodeUnresponsive),
            FailureSymptom::Oom => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ModeId;
    use rsc_cluster::ids::NodeId;
    use rsc_sim_core::time::SimTime;

    fn event(symptom: FailureSymptom) -> FailureEvent {
        FailureEvent {
            at: SimTime::from_hours(1),
            node: NodeId::new(0),
            mode: ModeId(0),
            symptom,
            permanent: false,
        }
    }

    fn count_expansions(
        profile: &CooccurrenceProfile,
        symptom: FailureSymptom,
        n: usize,
        pred: impl Fn(&[NodeSignal]) -> bool,
    ) -> f64 {
        let mut rng = SimRng::seed_from(42);
        let ev = event(symptom);
        let hits = (0..n)
            .filter(|_| pred(&profile.expand(&ev, &mut rng)))
            .count();
        hits as f64 / n as f64
    }

    fn has(signals: &[NodeSignal], kind: SignalKind) -> bool {
        signals.iter().any(|s| s.kind == kind)
    }

    #[test]
    fn pcie_cooccurrence_matches_rsc1() {
        let p = CooccurrenceProfile::rsc1();
        let xid79_frac = count_expansions(&p, FailureSymptom::PcieError, 20_000, |s| {
            has(s, SignalKind::Xid(XidError::FallenOffBus))
        });
        assert!((xid79_frac - 0.43).abs() < 0.02, "xid79={xid79_frac}");

        let all3_frac = count_expansions(&p, FailureSymptom::PcieError, 20_000, |s| {
            has(s, SignalKind::Xid(XidError::FallenOffBus))
                && has(s, SignalKind::IpmiCriticalInterrupt)
                && has(s, SignalKind::PcieError)
        });
        assert!((all3_frac - 0.21).abs() < 0.02, "all3={all3_frac}");
    }

    #[test]
    fn pcie_cooccurrence_matches_rsc2() {
        let p = CooccurrenceProfile::rsc2();
        let xid79_frac = count_expansions(&p, FailureSymptom::PcieError, 20_000, |s| {
            has(s, SignalKind::Xid(XidError::FallenOffBus))
        });
        assert!((xid79_frac - 0.63).abs() < 0.02, "xid79={xid79_frac}");
    }

    #[test]
    fn primary_signal_always_present() {
        let p = CooccurrenceProfile::rsc1();
        let mut rng = SimRng::seed_from(1);
        for symptom in FailureSymptom::ALL {
            if symptom == FailureSymptom::Oom {
                continue;
            }
            let signals = p.expand(&event(symptom), &mut rng);
            assert!(!signals.is_empty(), "{symptom} produced no signals");
        }
    }

    #[test]
    fn hang_mode_only_raises_unresponsive() {
        let p = CooccurrenceProfile::rsc1();
        let mut rng = SimRng::seed_from(2);
        let signals = p.expand(&event(FailureSymptom::NcclTimeout), &mut rng);
        assert_eq!(signals.len(), 1);
        assert_eq!(signals[0].kind, SignalKind::NodeUnresponsive);
    }

    #[test]
    fn signals_carry_event_metadata() {
        let p = CooccurrenceProfile::rsc1();
        let mut rng = SimRng::seed_from(3);
        let ev = event(FailureSymptom::MainMemoryError);
        let signals = p.expand(&ev, &mut rng);
        assert_eq!(signals[0].node, ev.node);
        assert_eq!(signals[0].at, ev.at);
    }
}
