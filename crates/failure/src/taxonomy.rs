//! The paper's failure taxonomy (Table I).
//!
//! A *symptom* is what an operator observes (a health check firing, a job
//! crash signature). Each symptom maps to one or more *failure domains* —
//! user program, system software, hardware infrastructure — and a set of
//! likely causes. Diagnosis is differential: the symptom alone rarely
//! identifies the culprit (Observation 3: "beware of the red-herrings").

use std::fmt;

use serde::{Deserialize, Serialize};

/// Who is likely at fault for a failure symptom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureDomain {
    /// The user's training program (e.g. an out-of-memory bug).
    UserProgram,
    /// Drivers, firmware, the OS, or framework software.
    SystemSoftware,
    /// Physical hardware: GPUs, links, memory, power.
    HardwareInfra,
}

impl fmt::Display for FailureDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureDomain::UserProgram => "user-program",
            FailureDomain::SystemSoftware => "system-software",
            FailureDomain::HardwareInfra => "hardware-infra",
        };
        f.write_str(s)
    }
}

/// An observable failure symptom, one per row of the paper's Table I
/// (plus GSP timeout, which the paper tracks separately in Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureSymptom {
    /// Process ran out of (GPU or host) memory.
    Oom,
    /// GPU is not accessible from the host.
    GpuUnavailable,
    /// Uncorrectable GPU memory error (ECC / row-remap).
    GpuMemoryError,
    /// GPU driver or firmware error.
    GpuDriverFirmwareError,
    /// GSP (GPU System Processor) timeout — a driver-regression era in the
    /// paper, fixed by a driver patch.
    GspTimeout,
    /// NVLink error between local GPUs.
    GpuNvlinkError,
    /// Backend InfiniBand link error.
    InfinibandLink,
    /// A filesystem mount is missing or hung.
    FilesystemMount,
    /// Host DRAM uncorrectable error.
    MainMemoryError,
    /// Frontend Ethernet link error.
    EthlinkError,
    /// PCIe bus error.
    PcieError,
    /// A NCCL collective timed out.
    NcclTimeout,
    /// Host system services failed (scheduler daemon, container runtime...).
    SystemService,
}

impl FailureSymptom {
    /// Every symptom, in Table I order.
    pub const ALL: [FailureSymptom; 13] = [
        FailureSymptom::Oom,
        FailureSymptom::GpuUnavailable,
        FailureSymptom::GpuMemoryError,
        FailureSymptom::GpuDriverFirmwareError,
        FailureSymptom::GspTimeout,
        FailureSymptom::GpuNvlinkError,
        FailureSymptom::InfinibandLink,
        FailureSymptom::FilesystemMount,
        FailureSymptom::MainMemoryError,
        FailureSymptom::EthlinkError,
        FailureSymptom::PcieError,
        FailureSymptom::NcclTimeout,
        FailureSymptom::SystemService,
    ];

    /// The failure domains this symptom may implicate (Table I check marks).
    pub fn domains(self) -> &'static [FailureDomain] {
        use FailureDomain::*;
        match self {
            FailureSymptom::Oom => &[UserProgram],
            FailureSymptom::GpuUnavailable => &[SystemSoftware, HardwareInfra],
            FailureSymptom::GpuMemoryError => &[HardwareInfra],
            FailureSymptom::GpuDriverFirmwareError => &[SystemSoftware],
            FailureSymptom::GspTimeout => &[SystemSoftware],
            FailureSymptom::GpuNvlinkError => &[HardwareInfra],
            FailureSymptom::InfinibandLink => &[HardwareInfra],
            FailureSymptom::FilesystemMount => &[SystemSoftware],
            FailureSymptom::MainMemoryError => &[HardwareInfra],
            FailureSymptom::EthlinkError => &[HardwareInfra],
            FailureSymptom::PcieError => &[HardwareInfra],
            FailureSymptom::NcclTimeout => &[UserProgram, SystemSoftware, HardwareInfra],
            FailureSymptom::SystemService => &[UserProgram, SystemSoftware, HardwareInfra],
        }
    }

    /// The paper's "likely failure cause" column for this symptom.
    pub fn likely_causes(self) -> &'static str {
        match self {
            FailureSymptom::Oom => "User bug",
            FailureSymptom::GpuUnavailable => "PCIe error, driver/BIOS, thermals",
            FailureSymptom::GpuMemoryError => "Thermal noise, cosmic rays, HBM defect or wear",
            FailureSymptom::GpuDriverFirmwareError => "Outdated software, high load",
            FailureSymptom::GspTimeout => "Driver code regression",
            FailureSymptom::GpuNvlinkError => "Electro/material failure, switch",
            FailureSymptom::InfinibandLink => "Electro/material failure, switch",
            FailureSymptom::FilesystemMount => {
                "Failed frontend network, drivers in D state, storage backend"
            }
            FailureSymptom::MainMemoryError => "Circuit wear, thermal noise, cosmic rays",
            FailureSymptom::EthlinkError => "Electro/material failure, switch",
            FailureSymptom::PcieError => "GPU failure, poor electrical contacts",
            FailureSymptom::NcclTimeout => "Userspace crash, deadlock, failed HW",
            FailureSymptom::SystemService => {
                "Userspace interference, software bugs, network partition"
            }
        }
    }

    /// Whether this symptom can implicate hardware infrastructure.
    pub fn may_be_hardware(self) -> bool {
        self.domains().contains(&FailureDomain::HardwareInfra)
    }

    /// Whether this symptom is ambiguous — i.e. implicates more than one
    /// domain, requiring differential diagnosis.
    pub fn is_ambiguous(self) -> bool {
        self.domains().len() > 1
    }

    /// Short stable label used in reports and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            FailureSymptom::Oom => "oom",
            FailureSymptom::GpuUnavailable => "gpu_unavailable",
            FailureSymptom::GpuMemoryError => "gpu_memory",
            FailureSymptom::GpuDriverFirmwareError => "gpu_driver",
            FailureSymptom::GspTimeout => "gsp_timeout",
            FailureSymptom::GpuNvlinkError => "nvlink",
            FailureSymptom::InfinibandLink => "ib_link",
            FailureSymptom::FilesystemMount => "fs_mount",
            FailureSymptom::MainMemoryError => "main_memory",
            FailureSymptom::EthlinkError => "eth_link",
            FailureSymptom::PcieError => "pcie",
            FailureSymptom::NcclTimeout => "nccl_timeout",
            FailureSymptom::SystemService => "system_service",
        }
    }
}

impl fmt::Display for FailureSymptom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_domain_counts() {
        // Table I: OOM is user-only; NCCL timeout and system services span
        // all three domains.
        assert_eq!(FailureSymptom::Oom.domains(), &[FailureDomain::UserProgram]);
        assert_eq!(FailureSymptom::NcclTimeout.domains().len(), 3);
        assert_eq!(FailureSymptom::SystemService.domains().len(), 3);
        assert!(FailureSymptom::GpuUnavailable.is_ambiguous());
        assert!(!FailureSymptom::PcieError.is_ambiguous());
    }

    #[test]
    fn hardware_symptoms() {
        assert!(FailureSymptom::InfinibandLink.may_be_hardware());
        assert!(FailureSymptom::PcieError.may_be_hardware());
        assert!(!FailureSymptom::Oom.may_be_hardware());
        assert!(!FailureSymptom::FilesystemMount.may_be_hardware());
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = FailureSymptom::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FailureSymptom::ALL.len());
    }

    #[test]
    fn causes_are_nonempty() {
        for s in FailureSymptom::ALL {
            assert!(!s.likely_causes().is_empty());
        }
    }
}
