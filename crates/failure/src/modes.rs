//! Injectable hardware/system failure modes and their per-cluster rates.
//!
//! Each mode corresponds to an attributed-failure category from the paper's
//! Fig. 4, carries the component it damages, the primary symptom it
//! manifests as, the probability the damage is permanent (vendor repair)
//! versus transient (reset clears it), and its share of the cluster's total
//! node failure rate.
//!
//! The totals are calibrated so RSC-1 ≈ 6.50 and RSC-2 ≈ 2.34 failures per
//! 1000 node-days (paper §III).

use serde::{Deserialize, Serialize};

use rsc_cluster::component::ComponentKind;

use crate::taxonomy::FailureSymptom;

/// How urgently a failing node must leave service (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Remove the node and reschedule its jobs immediately.
    High,
    /// Remove the node for remediation after the running job finishes.
    Low,
}

/// One injectable failure mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeSpec {
    /// The primary symptom this mode manifests as.
    pub symptom: FailureSymptom,
    /// The component damaged (drives repair/GPU-swap behaviour).
    pub component: ComponentKind,
    /// Base rate, failures per node-day, before era/lemon multipliers.
    pub rate_per_node_day: f64,
    /// Probability a given event permanently damages the component.
    pub permanent_prob: f64,
    /// Health-check severity when this mode is detected.
    pub severity: Severity,
    /// Whether any health check can observe this mode at all. Unobservable
    /// modes surface only as NODE_FAIL heartbeat losses and stay
    /// *unattributed* in the analysis (paper Fig. 4's "unattributed" mass).
    pub observable: bool,
}

/// Identifier of a mode within a [`ModeCatalog`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModeId(pub usize);

impl std::fmt::Display for ModeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mode{}", self.0)
    }
}

/// The set of failure modes active on a cluster, with calibrated rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeCatalog {
    modes: Vec<ModeSpec>,
}

impl ModeCatalog {
    /// Builds a catalog from explicit mode specs.
    ///
    /// # Panics
    ///
    /// Panics if any rate or probability is out of range.
    pub fn new(modes: Vec<ModeSpec>) -> Self {
        for m in &modes {
            assert!(
                m.rate_per_node_day >= 0.0 && m.rate_per_node_day.is_finite(),
                "invalid rate for {:?}",
                m.symptom
            );
            assert!(
                (0.0..=1.0).contains(&m.permanent_prob),
                "invalid permanent_prob for {:?}",
                m.symptom
            );
        }
        ModeCatalog { modes }
    }

    /// The RSC-1 catalog: total ≈ 6.50 failures per 1000 node-days, with
    /// category shares shaped like Fig. 4a (IB links, filesystem mounts,
    /// GPU memory, and PCIe dominate; a large unattributed mass).
    pub fn rsc1() -> Self {
        Self::from_shares(6.50e-3, &RSC1_SHARES)
    }

    /// The RSC-2 catalog: total ≈ 2.34 failures per 1000 node-days, tilted
    /// away from filesystem mounts relative to RSC-1 (Fig. 4b).
    pub fn rsc2() -> Self {
        Self::from_shares(2.34e-3, &RSC2_SHARES)
    }

    /// Builds a catalog by distributing `total_rate` (failures per node-day)
    /// across the standard modes according to `shares`.
    fn from_shares(total_rate: f64, shares: &[(FailureSymptom, f64)]) -> Self {
        let modes = shares
            .iter()
            .map(|&(symptom, share)| {
                let proto = prototype(symptom);
                ModeSpec {
                    rate_per_node_day: total_rate * share,
                    ..proto
                }
            })
            .collect();
        ModeCatalog::new(modes)
    }

    /// A copy with every mode's rate multiplied by `factor` — e.g. the
    /// lemon-free *residual* background when planted lemons are meant to
    /// account for part of the observed total rate.
    ///
    /// # Panics
    ///
    /// Panics if the factor is negative or non-finite.
    pub fn scaled_rates(&self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite(), "invalid scale factor");
        ModeCatalog::new(
            self.modes
                .iter()
                .map(|m| ModeSpec {
                    rate_per_node_day: m.rate_per_node_day * factor,
                    ..m.clone()
                })
                .collect(),
        )
    }

    /// All modes.
    pub fn modes(&self) -> &[ModeSpec] {
        &self.modes
    }

    /// A mode by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn mode(&self, id: ModeId) -> &ModeSpec {
        &self.modes[id.0]
    }

    /// Iterator over `(ModeId, &ModeSpec)`.
    pub fn iter(&self) -> impl Iterator<Item = (ModeId, &ModeSpec)> {
        self.modes.iter().enumerate().map(|(i, m)| (ModeId(i), m))
    }

    /// Sum of base rates, failures per node-day.
    pub fn total_rate(&self) -> f64 {
        self.modes.iter().map(|m| m.rate_per_node_day).sum()
    }

    /// The mode whose primary symptom matches, if present.
    pub fn find_by_symptom(&self, symptom: FailureSymptom) -> Option<ModeId> {
        self.modes
            .iter()
            .position(|m| m.symptom == symptom)
            .map(ModeId)
    }
}

/// Category shares for RSC-1 (fraction of the total failure rate).
const RSC1_SHARES: [(FailureSymptom, f64); 12] = [
    (FailureSymptom::InfinibandLink, 0.17),
    (FailureSymptom::FilesystemMount, 0.15),
    (FailureSymptom::GpuMemoryError, 0.14),
    (FailureSymptom::PcieError, 0.10),
    (FailureSymptom::GpuUnavailable, 0.08),
    (FailureSymptom::GspTimeout, 0.06),
    (FailureSymptom::GpuNvlinkError, 0.04),
    (FailureSymptom::MainMemoryError, 0.03),
    (FailureSymptom::EthlinkError, 0.02),
    (FailureSymptom::SystemService, 0.02),
    (FailureSymptom::GpuDriverFirmwareError, 0.02),
    // Modelled as an unobservable node hang: becomes NODE_FAIL with no
    // attributable health event.
    (FailureSymptom::NcclTimeout, 0.17),
];

/// Category shares for RSC-2: fewer filesystem-mount and GSP failures,
/// relatively more GPU memory errors (vision workloads tax HBM).
const RSC2_SHARES: [(FailureSymptom, f64); 12] = [
    (FailureSymptom::InfinibandLink, 0.15),
    (FailureSymptom::FilesystemMount, 0.06),
    (FailureSymptom::GpuMemoryError, 0.20),
    (FailureSymptom::PcieError, 0.12),
    (FailureSymptom::GpuUnavailable, 0.09),
    (FailureSymptom::GspTimeout, 0.03),
    (FailureSymptom::GpuNvlinkError, 0.05),
    (FailureSymptom::MainMemoryError, 0.04),
    (FailureSymptom::EthlinkError, 0.02),
    (FailureSymptom::SystemService, 0.03),
    (FailureSymptom::GpuDriverFirmwareError, 0.02),
    (FailureSymptom::NcclTimeout, 0.19),
];

/// Default (rate-less) spec for each standard mode.
fn prototype(symptom: FailureSymptom) -> ModeSpec {
    use FailureSymptom::*;
    let (component, permanent_prob, severity, observable) = match symptom {
        InfinibandLink => (ComponentKind::Optics, 0.25, Severity::High, true),
        FilesystemMount => (ComponentKind::Nic, 0.05, Severity::High, true),
        GpuMemoryError => (ComponentKind::Gpu, 0.35, Severity::High, true),
        PcieError => (ComponentKind::Pcie, 0.30, Severity::High, true),
        GpuUnavailable => (ComponentKind::Gpu, 0.40, Severity::High, true),
        GspTimeout => (ComponentKind::Gpu, 0.02, Severity::Low, true),
        GpuNvlinkError => (ComponentKind::NvSwitch, 0.25, Severity::High, true),
        MainMemoryError => (ComponentKind::Dimm, 0.30, Severity::High, true),
        EthlinkError => (ComponentKind::Nic, 0.15, Severity::Low, true),
        SystemService => (ComponentKind::Cpu, 0.02, Severity::Low, true),
        GpuDriverFirmwareError => (ComponentKind::Gpu, 0.03, Severity::Low, true),
        // A hard node hang: no health check fires, only the scheduler
        // heartbeat notices (NODE_FAIL).
        NcclTimeout => (ComponentKind::Cpu, 0.10, Severity::High, false),
        Oom => (ComponentKind::Cpu, 0.0, Severity::Low, true),
    };
    ModeSpec {
        symptom,
        component,
        rate_per_node_day: 0.0,
        permanent_prob,
        severity,
        observable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsc1_total_rate_matches_paper() {
        let cat = ModeCatalog::rsc1();
        assert!((cat.total_rate() - 6.50e-3).abs() < 1e-9);
    }

    #[test]
    fn rsc2_total_rate_matches_paper() {
        let cat = ModeCatalog::rsc2();
        assert!((cat.total_rate() - 2.34e-3).abs() < 1e-9);
    }

    #[test]
    fn shares_sum_to_one() {
        for shares in [&RSC1_SHARES, &RSC2_SHARES] {
            let sum: f64 = shares.iter().map(|(_, s)| s).sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        }
    }

    #[test]
    fn unattributed_mode_is_unobservable() {
        let cat = ModeCatalog::rsc1();
        let id = cat.find_by_symptom(FailureSymptom::NcclTimeout).unwrap();
        assert!(!cat.mode(id).observable);
    }

    #[test]
    fn find_by_symptom() {
        let cat = ModeCatalog::rsc1();
        let id = cat.find_by_symptom(FailureSymptom::PcieError).unwrap();
        assert_eq!(cat.mode(id).symptom, FailureSymptom::PcieError);
        assert_eq!(cat.find_by_symptom(FailureSymptom::Oom), None);
    }

    #[test]
    #[should_panic(expected = "invalid permanent_prob")]
    fn rejects_bad_probability() {
        let mut spec = prototype(FailureSymptom::PcieError);
        spec.permanent_prob = 1.5;
        let _ = ModeCatalog::new(vec![spec]);
    }

    #[test]
    fn iter_yields_dense_ids() {
        let cat = ModeCatalog::rsc1();
        for (i, (id, _)) in cat.iter().enumerate() {
            assert_eq!(id, ModeId(i));
        }
    }
}
