//! Time-varying hazard schedules.
//!
//! The paper's Fig. 5 shows that cluster failure rate is *not* stationary:
//! driver regressions come and go, a handful of nodes caused an InfiniBand
//! link spike in one summer month, and new health checks surface previously
//! invisible failure modes. We model this with piecewise-constant rate
//! multipliers layered over the base [`ModeCatalog`] rates, plus per-node
//! multipliers for lemon nodes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_sim_core::bitset::HierBitSet;
use rsc_sim_core::time::SimTime;

use crate::modes::{ModeCatalog, ModeId};
use crate::taxonomy::FailureSymptom;

/// Which nodes a rate modifier applies to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeFilter {
    /// All nodes in the cluster.
    All,
    /// An explicit set of nodes (e.g. the "handful of offending nodes" in
    /// the paper's IB-link spike).
    Set(Vec<NodeId>),
}

impl NodeFilter {
    /// Whether the filter matches a node.
    pub fn matches(&self, node: NodeId) -> bool {
        match self {
            NodeFilter::All => true,
            NodeFilter::Set(set) => set.contains(&node),
        }
    }
}

/// A piecewise-constant multiplicative adjustment to one failure mode's
/// rate over a time window ("era").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateModifier {
    /// The mode affected.
    pub mode: ModeId,
    /// Nodes affected.
    pub nodes: NodeFilter,
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive); use [`SimTime::MAX`] for open-ended.
    pub until: SimTime,
    /// Rate multiplier within the window (may be < 1 for fixes).
    pub multiplier: f64,
}

impl RateModifier {
    /// Whether this modifier is active for `(node, mode)` at time `t`.
    fn applies(&self, node: NodeId, mode: ModeId, t: SimTime) -> bool {
        self.mode == mode && t >= self.from && t < self.until && self.nodes.matches(node)
    }
}

/// The full hazard model: base mode rates, era modifiers, and per-node
/// (lemon) multipliers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HazardSchedule {
    catalog: ModeCatalog,
    modifiers: Vec<RateModifier>,
    /// Lemon multipliers: (node, mode) → factor.
    node_multipliers: HashMap<(NodeId, ModeId), f64>,
}

impl HazardSchedule {
    /// Creates a schedule with no era or lemon effects.
    pub fn new(catalog: ModeCatalog) -> Self {
        HazardSchedule {
            catalog,
            modifiers: Vec::new(),
            node_multipliers: HashMap::new(),
        }
    }

    /// The underlying mode catalog.
    pub fn catalog(&self) -> &ModeCatalog {
        &self.catalog
    }

    /// Adds an era modifier.
    ///
    /// # Panics
    ///
    /// Panics if the multiplier is negative or non-finite.
    pub fn add_modifier(&mut self, modifier: RateModifier) {
        assert!(
            modifier.multiplier >= 0.0 && modifier.multiplier.is_finite(),
            "multiplier must be non-negative and finite"
        );
        self.modifiers.push(modifier);
    }

    /// Multiplies the rate of `mode` on `node` by `factor` for the whole
    /// simulation (the lemon-node mechanism).
    ///
    /// # Panics
    ///
    /// Panics if the factor is negative or non-finite.
    pub fn add_node_multiplier(&mut self, node: NodeId, mode: ModeId, factor: f64) {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "factor must be non-negative"
        );
        *self.node_multipliers.entry((node, mode)).or_insert(1.0) *= factor;
    }

    /// The instantaneous failure rate (per node-day) for `(node, mode)` at
    /// time `t`.
    pub fn rate(&self, node: NodeId, mode: ModeId, t: SimTime) -> f64 {
        let mut r = self.catalog.mode(mode).rate_per_node_day;
        for m in &self.modifiers {
            if m.applies(node, mode, t) {
                r *= m.multiplier;
            }
        }
        if let Some(&f) = self.node_multipliers.get(&(node, mode)) {
            r *= f;
        }
        r
    }

    /// An upper bound on [`Self::rate`] over all time, used as the thinning
    /// envelope by the injector.
    pub fn max_rate(&self, node: NodeId, mode: ModeId) -> f64 {
        let mut r = self.catalog.mode(mode).rate_per_node_day;
        // Overlapping windows could compound; multiply all >1 multipliers
        // that could ever apply to this node for a safe bound.
        for m in &self.modifiers {
            if m.mode == mode && m.nodes.matches(node) && m.multiplier > 1.0 {
                r *= m.multiplier;
            }
        }
        if let Some(&f) = self.node_multipliers.get(&(node, mode)) {
            if f > 1.0 {
                r *= f;
            }
        }
        r
    }

    /// Fills a node-major rate vector (`index = node * mode_ids.len() +
    /// mode_position`) for the era containing `t`, bit-for-bit equal to
    /// calling [`Self::rate`] for every `(node, mode)` pair.
    ///
    /// The fleet-scale fast path: the overwhelming majority of nodes carry
    /// no lemon multiplier and sit in no `NodeFilter::Set` window, so their
    /// rate is a per-mode constant — base rate times the active `All`
    /// modifiers, applied in declaration order exactly as [`Self::rate`]
    /// does. Those rows are memcpy'd; only the sparse "special" nodes
    /// (collected into a [`HierBitSet`] up front) take the full per-pair
    /// path with its hash probe. At ten million nodes this turns 120M
    /// modifier scans + hash lookups into 120M float copies plus a few
    /// thousand exact computations.
    pub fn era_rates_node_major(
        &self,
        mode_ids: &[ModeId],
        num_nodes: u32,
        t: SimTime,
    ) -> Vec<f64> {
        // Nodes whose rate can deviate from the common per-mode value:
        // lemon-multiplied nodes plus members of any active Set window.
        let mut special = HierBitSet::new(num_nodes as usize);
        for &(node, _) in self.node_multipliers.keys() {
            if node.index() < num_nodes {
                special.insert(node.index());
            }
        }
        for m in &self.modifiers {
            if t >= m.from && t < m.until {
                if let NodeFilter::Set(nodes) = &m.nodes {
                    for &node in nodes {
                        if node.index() < num_nodes {
                            special.insert(node.index());
                        }
                    }
                }
            }
        }
        let common: Vec<f64> = mode_ids
            .iter()
            .map(|&mode| {
                let mut r = self.catalog.mode(mode).rate_per_node_day;
                for m in &self.modifiers {
                    if m.mode == mode
                        && t >= m.from
                        && t < m.until
                        && matches!(m.nodes, NodeFilter::All)
                    {
                        r *= m.multiplier;
                    }
                }
                r
            })
            .collect();
        let mut out = Vec::with_capacity(num_nodes as usize * mode_ids.len());
        for node_idx in 0..num_nodes {
            if special.contains(node_idx) {
                let node = NodeId::new(node_idx);
                out.extend(mode_ids.iter().map(|&mode| self.rate(node, mode, t)));
            } else {
                out.extend_from_slice(&common);
            }
        }
        out
    }

    /// The sorted, deduplicated set of era boundaries: every finite
    /// modifier window edge strictly inside `(SimTime::ZERO, SimTime::MAX)`.
    ///
    /// Because modifiers are piecewise-constant and node multipliers are
    /// time-independent, the rate of every `(node, mode)` pair is constant
    /// between consecutive boundaries — the superposition injector relies
    /// on this to rebuild its alias table only at these instants.
    pub fn era_boundaries(&self) -> Vec<SimTime> {
        let mut bounds: Vec<SimTime> = self
            .modifiers
            .iter()
            .flat_map(|m| [m.from, m.until])
            .filter(|&t| t > SimTime::ZERO && t < SimTime::MAX)
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        bounds
    }

    /// Convenience: look up a mode id by symptom.
    pub fn mode_by_symptom(&self, symptom: FailureSymptom) -> Option<ModeId> {
        self.catalog.find_by_symptom(symptom)
    }

    /// Builds the RSC-1 11-month era storyline (paper Fig. 5a):
    ///
    /// - a GSP-timeout driver regression, 10× for the first 90 days, then
    ///   effectively fixed (×0.05) by a driver patch;
    /// - an IB-link spike (15×) limited to `ib_spike_nodes` during days
    ///   240–270 ("a handful of nodes in the summer of 2024").
    pub fn rsc1_eras(mut self, ib_spike_nodes: Vec<NodeId>) -> Self {
        if let Some(gsp) = self.mode_by_symptom(FailureSymptom::GspTimeout) {
            self.add_modifier(RateModifier {
                mode: gsp,
                nodes: NodeFilter::All,
                from: SimTime::ZERO,
                until: SimTime::from_days(90),
                multiplier: 10.0,
            });
            self.add_modifier(RateModifier {
                mode: gsp,
                nodes: NodeFilter::All,
                from: SimTime::from_days(90),
                until: SimTime::MAX,
                multiplier: 0.05,
            });
        }
        if let Some(ib) = self.mode_by_symptom(FailureSymptom::InfinibandLink) {
            self.add_modifier(RateModifier {
                mode: ib,
                nodes: NodeFilter::Set(ib_spike_nodes),
                from: SimTime::from_days(240),
                until: SimTime::from_days(270),
                multiplier: 15.0,
            });
        }
        self
    }

    /// Builds the RSC-2 era storyline (paper Fig. 5b): the same summer
    /// IB-link spike on a small node set, but no GSP regression era.
    pub fn rsc2_eras(mut self, ib_spike_nodes: Vec<NodeId>) -> Self {
        if let Some(ib) = self.mode_by_symptom(FailureSymptom::InfinibandLink) {
            self.add_modifier(RateModifier {
                mode: ib,
                nodes: NodeFilter::Set(ib_spike_nodes),
                from: SimTime::from_days(240),
                until: SimTime::from_days(270),
                multiplier: 15.0,
            });
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> HazardSchedule {
        HazardSchedule::new(ModeCatalog::rsc1())
    }

    #[test]
    fn base_rate_without_modifiers() {
        let s = schedule();
        let ib = s.mode_by_symptom(FailureSymptom::InfinibandLink).unwrap();
        let expected = 6.50e-3 * 0.17;
        let got = s.rate(NodeId::new(0), ib, SimTime::from_days(10));
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn modifier_applies_only_in_window() {
        let mut s = schedule();
        let ib = s.mode_by_symptom(FailureSymptom::InfinibandLink).unwrap();
        s.add_modifier(RateModifier {
            mode: ib,
            nodes: NodeFilter::All,
            from: SimTime::from_days(10),
            until: SimTime::from_days(20),
            multiplier: 5.0,
        });
        let n = NodeId::new(0);
        let base = s.catalog().mode(ib).rate_per_node_day;
        assert!((s.rate(n, ib, SimTime::from_days(5)) - base).abs() < 1e-15);
        assert!((s.rate(n, ib, SimTime::from_days(15)) - 5.0 * base).abs() < 1e-15);
        assert!((s.rate(n, ib, SimTime::from_days(20)) - base).abs() < 1e-15);
    }

    #[test]
    fn node_filter_limits_scope() {
        let mut s = schedule();
        let ib = s.mode_by_symptom(FailureSymptom::InfinibandLink).unwrap();
        s.add_modifier(RateModifier {
            mode: ib,
            nodes: NodeFilter::Set(vec![NodeId::new(3)]),
            from: SimTime::ZERO,
            until: SimTime::MAX,
            multiplier: 10.0,
        });
        let base = s.catalog().mode(ib).rate_per_node_day;
        assert!((s.rate(NodeId::new(0), ib, SimTime::ZERO) - base).abs() < 1e-15);
        assert!((s.rate(NodeId::new(3), ib, SimTime::ZERO) - 10.0 * base).abs() < 1e-15);
    }

    #[test]
    fn max_rate_bounds_rate_everywhere() {
        let ib_nodes = vec![NodeId::new(1), NodeId::new(2)];
        let s = schedule().rsc1_eras(ib_nodes);
        for node in (0..4).map(NodeId::new) {
            for (mode, _) in s.catalog().clone().iter() {
                let cap = s.max_rate(node, mode);
                for day in 0..330 {
                    let r = s.rate(node, mode, SimTime::from_days(day));
                    assert!(r <= cap + 1e-15, "node={node} mode={mode} day={day}");
                }
            }
        }
    }

    #[test]
    fn lemon_multiplier_stacks() {
        let mut s = schedule();
        let pcie = s.mode_by_symptom(FailureSymptom::PcieError).unwrap();
        s.add_node_multiplier(NodeId::new(5), pcie, 30.0);
        let base = s.catalog().mode(pcie).rate_per_node_day;
        let got = s.rate(NodeId::new(5), pcie, SimTime::ZERO);
        assert!((got - 30.0 * base).abs() < 1e-12);
    }

    #[test]
    fn era_boundaries_are_sorted_finite_and_deduped() {
        // No modifiers → no boundaries.
        assert!(schedule().era_boundaries().is_empty());

        // The RSC-1 storyline has edges at days 90 (GSP from+until share
        // it), 240, and 270; ZERO and MAX edges are excluded.
        let s = schedule().rsc1_eras(vec![NodeId::new(1)]);
        assert_eq!(
            s.era_boundaries(),
            vec![
                SimTime::from_days(90),
                SimTime::from_days(240),
                SimTime::from_days(270),
            ]
        );
    }

    #[test]
    fn era_rates_fast_fill_is_bitwise_equal_to_rate() {
        // Mix of All-modifiers, Set-modifiers, and lemon multipliers, probed
        // inside and outside the windows: the memcpy fast path must agree
        // with the per-pair slow path to the last bit.
        let mut s = schedule().rsc1_eras(vec![NodeId::new(3), NodeId::new(17)]);
        let pcie = s.mode_by_symptom(FailureSymptom::PcieError).unwrap();
        s.add_node_multiplier(NodeId::new(5), pcie, 30.0);
        s.add_node_multiplier(NodeId::new(31), pcie, 0.0);
        let mode_ids: Vec<ModeId> = s.catalog().clone().iter().map(|(id, _)| id).collect();
        let num_nodes = 32u32;
        for day in [0u64, 50, 95, 239, 250, 280] {
            let t = SimTime::from_days(day);
            let fast = s.era_rates_node_major(&mode_ids, num_nodes, t);
            for node_idx in 0..num_nodes {
                for (j, &mode) in mode_ids.iter().enumerate() {
                    let want = s.rate(NodeId::new(node_idx), mode, t);
                    let got = fast[node_idx as usize * mode_ids.len() + j];
                    assert!(
                        got.to_bits() == want.to_bits(),
                        "day={day} node={node_idx} mode={mode}: {got:e} != {want:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn gsp_era_rises_then_falls() {
        let s = schedule().rsc1_eras(vec![]);
        let gsp = s.mode_by_symptom(FailureSymptom::GspTimeout).unwrap();
        let n = NodeId::new(0);
        let early = s.rate(n, gsp, SimTime::from_days(30));
        let late = s.rate(n, gsp, SimTime::from_days(200));
        assert!(early > 100.0 * late, "early={early} late={late}");
    }
}
