//! Property-based tests of scheduler invariants under random workloads.

use proptest::prelude::*;

use rsc_cluster::ids::{JobId, NodeId};
use rsc_cluster::spec::ClusterSpec;
use rsc_cluster::topology::Topology;
use rsc_sched::job::{Destiny, JobSpec, JobStatus, QosClass};
use rsc_sched::sched::{InterruptCause, SchedConfig, Scheduler};
use rsc_sim_core::time::{SimDuration, SimTime};

fn spec(id: u64, gpus: u32, qos: QosClass, submit_mins: u64) -> JobSpec {
    JobSpec {
        id: JobId::new(id),
        project: Default::default(),
        run: None,
        gpus,
        submit_at: SimTime::from_mins(submit_mins),
        work: SimDuration::from_hours(2),
        time_limit: SimDuration::from_days(1),
        qos,
        checkpoint_interval: SimDuration::from_hours(1),
        restart_overhead: SimDuration::from_mins(5),
        destiny: Destiny::Complete,
        requeue_on_user_failure: false,
    }
}

fn qos_from(idx: u8) -> QosClass {
    match idx % 3 {
        0 => QosClass::Low,
        1 => QosClass::Normal,
        _ => QosClass::High,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GPU accounting never leaks: busy + free == total at every step,
    /// whatever interleaving of submit / cycle / interrupt / finish runs.
    #[test]
    fn accounting_is_conserved(
        sizes in prop::collection::vec((1u32..64, 0u8..3), 1..40),
        interrupt_node in 0u32..16,
    ) {
        let topo = Topology::new(&ClusterSpec::new("p", 16));
        let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
        let total = sched.pool().total_gpus();
        let mut t = 1u64;
        for (i, (gpus, qos)) in sizes.iter().enumerate() {
            sched.submit(spec(i as u64 + 1, (*gpus).min(128), qos_from(*qos), t));
            t += 1;
            let started = sched.cycle(SimTime::from_mins(t));
            for s in &started {
                // Gang property: whole allocation or nothing.
                prop_assert!(!s.nodes.is_empty());
            }
            prop_assert_eq!(sched.busy_gpus() + sched.pool().total_free_gpus(), total);
        }
        sched.interrupt_node(
            NodeId::new(interrupt_node),
            InterruptCause::NodeHang,
            SimTime::from_mins(t + 1),
        );
        prop_assert_eq!(sched.busy_gpus() + sched.pool().total_free_gpus(), total);
    }

    /// Records are well-formed: start ≥ enqueue, end ≥ start, node count
    /// matches the job's gang size.
    #[test]
    fn records_are_well_formed(
        sizes in prop::collection::vec((1u32..32, 0u8..3), 1..30),
    ) {
        let topo = Topology::new(&ClusterSpec::new("p", 8));
        let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
        let mut t = 1u64;
        let mut started_ids = Vec::new();
        for (i, (gpus, qos)) in sizes.iter().enumerate() {
            sched.submit(spec(i as u64 + 1, (*gpus).min(64), qos_from(*qos), t));
            for s in sched.cycle(SimTime::from_mins(t)) {
                started_ids.push((s.job, s.attempt));
            }
            t += 2;
        }
        for (id, attempt) in started_ids {
            sched.finish(id, attempt, JobStatus::Completed, SimTime::from_mins(t + 60));
        }
        for r in sched.records() {
            let start = r.started_at.expect("completed records started");
            prop_assert!(start >= r.enqueued_at);
            prop_assert!(r.ended_at >= start);
            if r.gpus >= 8 {
                prop_assert_eq!(r.nodes.len() as u32, r.gpus.div_ceil(8));
            } else {
                prop_assert_eq!(r.nodes.len(), 1);
            }
        }
    }

    /// Node interruption requeues every affected job exactly once with a
    /// bumped attempt, and the node ends up empty.
    #[test]
    fn interrupts_requeue_once(
        njobs in 1usize..10,
        cause_idx in 0u8..3,
    ) {
        let topo = Topology::new(&ClusterSpec::new("p", 1));
        let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
        for i in 0..njobs {
            // 1-GPU jobs share the single node (8 slots).
            sched.submit(spec(i as u64 + 1, 1, QosClass::Normal, 1));
        }
        let started = sched.cycle(SimTime::from_mins(1));
        let expected = njobs.min(8);
        prop_assert_eq!(started.len(), expected);
        let cause = match cause_idx % 3 {
            0 => InterruptCause::NodeHang,
            1 => InterruptCause::HealthCheck,
            _ => InterruptCause::AppCrash,
        };
        let victims = sched.interrupt_node(NodeId::new(0), cause, SimTime::from_hours(1));
        prop_assert_eq!(victims.len(), expected);
        prop_assert!(sched.jobs_on_node(NodeId::new(0)).is_empty());
        for v in victims {
            let job = sched.job(v).expect("requeued job exists");
            prop_assert!(job.is_pending());
            prop_assert_eq!(job.attempt, 1);
        }
    }

    /// Priority ordering: when capacity suffices for exactly one job, the
    /// higher QoS submission always wins regardless of submission order.
    #[test]
    fn higher_qos_wins(flip in any::<bool>()) {
        let topo = Topology::new(&ClusterSpec::new("p", 1));
        let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
        let (first, second) = if flip {
            (QosClass::High, QosClass::Low)
        } else {
            (QosClass::Low, QosClass::High)
        };
        sched.submit(spec(1, 8, first, 1));
        sched.submit(spec(2, 8, second, 1));
        let started = sched.cycle(SimTime::from_mins(2));
        prop_assert_eq!(started.len(), 1);
        let winner = sched.job(started[0].job).expect("winner exists");
        prop_assert_eq!(winner.spec.qos, QosClass::High);
    }
}
