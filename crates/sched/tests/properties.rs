//! Property-based tests of scheduler invariants under random workloads.

use std::collections::HashMap;

use proptest::prelude::*;

use rsc_cluster::ids::{JobId, NodeId};
use rsc_cluster::spec::ClusterSpec;
use rsc_cluster::topology::Topology;
use rsc_sched::arena::JobArena;
use rsc_sched::job::{Destiny, Job, JobSpec, JobStatus, QosClass};
use rsc_sched::sched::{InterruptCause, SchedConfig, Scheduler};
use rsc_sim_core::time::{SimDuration, SimTime};

fn spec(id: u64, gpus: u32, qos: QosClass, submit_mins: u64) -> JobSpec {
    JobSpec {
        id: JobId::new(id),
        project: Default::default(),
        run: None,
        gpus,
        submit_at: SimTime::from_mins(submit_mins),
        work: SimDuration::from_hours(2),
        time_limit: SimDuration::from_days(1),
        qos,
        checkpoint_interval: SimDuration::from_hours(1),
        restart_overhead: SimDuration::from_mins(5),
        destiny: Destiny::Complete,
        requeue_on_user_failure: false,
    }
}

fn qos_from(idx: u8) -> QosClass {
    match idx % 3 {
        0 => QosClass::Low,
        1 => QosClass::Normal,
        _ => QosClass::High,
    }
}

/// Drives an indexed scheduler and a naive-scan scheduler through one
/// command stream, panicking on the first divergence. `(op, gpus, qos,
/// node)` tuples: op 0/1 submit, 2 interrupts `node`, 3 finishes the
/// oldest live attempt. Shared by the proptest below and a deterministic
/// pseudo-random smoke test.
fn run_lockstep(cmds: &[(u8, u32, u8, u32)]) {
    let topo = Topology::new(&ClusterSpec::new("p", 24));
    let mut indexed = Scheduler::new(topo.clone(), SchedConfig::rsc_default());
    let mut naive = Scheduler::new(topo, SchedConfig::rsc_default());
    naive.set_naive_scans(true);
    let mut t = 1u64;
    let mut live: Vec<(JobId, u32)> = Vec::new();
    for (i, &(op, gpus, qos, node)) in cmds.iter().enumerate() {
        t += 1;
        let now = SimTime::from_mins(t);
        match op {
            // Submit a job; sizes span sub-node (1..8) through multi-node
            // gangs (up to 10 whole nodes).
            0 | 1 => {
                let s = spec(i as u64 + 1, gpus, qos_from(qos), t);
                indexed.submit(s.clone());
                naive.submit(s);
            }
            // Infrastructure interrupt on a pseudo-random node.
            2 => {
                let a = indexed.interrupt_node(NodeId::new(node), InterruptCause::NodeHang, now);
                let b = naive.interrupt_node(NodeId::new(node), InterruptCause::NodeHang, now);
                assert_eq!(a, b, "step {i}: interrupt victims diverge");
            }
            // Finish the oldest still-live attempt.
            _ => {
                if let Some((id, attempt)) = live.first().copied() {
                    live.remove(0);
                    let a = indexed.finish(id, attempt, JobStatus::Completed, now);
                    let b = naive.finish(id, attempt, JobStatus::Completed, now);
                    assert_eq!(a, b, "step {i}: finish outcome diverges");
                }
            }
        }
        let a = indexed.cycle(now);
        let b = naive.cycle(now);
        assert_eq!(a.len(), b.len(), "step {i}: started counts diverge");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.job, y.job, "step {i}: started job diverges");
            assert_eq!(x.attempt, y.attempt, "step {i}: attempt diverges");
            assert_eq!(x.nodes, y.nodes, "step {i}: node sets diverge");
            assert_eq!(x.preempted, y.preempted, "step {i}: victims diverge");
            live.push((x.job, x.attempt));
        }
        // Point queries agree too, not just the composite cycle: the
        // reservation-time scan and a preemption plan for a probe job that
        // likely needs victims.
        for needed in [1usize, 3, 24] {
            assert_eq!(
                indexed.earliest_whole_nodes_free(needed, now),
                naive.earliest_whole_nodes_free(needed, now),
                "step {i}: reservation time diverges for needed={needed}"
            );
        }
        let probe = spec(900_000 + i as u64, 4 * 8, QosClass::High, t);
        assert_eq!(
            indexed.plan_preemption(&probe, now),
            naive.plan_preemption(&probe, now),
            "step {i}: preemption plan diverges"
        );
        assert_eq!(indexed.busy_gpus(), naive.busy_gpus());
        assert_eq!(
            indexed.pool().total_free_gpus(),
            naive.pool().total_free_gpus()
        );
    }
}

/// The pre-arena job store layout: a `JobId → Job` hash map plus the
/// parallel last-interrupt map the slab arena folded into its slots.
/// The lockstep twin below drives both stores through one op stream and
/// demands identical answers to every query after every op.
#[derive(Default)]
struct RefJobStore {
    jobs: HashMap<JobId, Job>,
    last_interrupt: HashMap<JobId, JobStatus>,
}

impl RefJobStore {
    fn insert(&mut self, job: Job) {
        let prev = self.jobs.insert(job.spec.id, job);
        assert!(prev.is_none(), "duplicate id in reference store");
    }
    fn remove(&mut self, id: JobId) -> Option<Job> {
        // Eviction drops the sidecar state too, like an arena slot.
        self.last_interrupt.remove(&id);
        self.jobs.remove(&id)
    }
    fn set_last_interrupt(&mut self, id: JobId, status: JobStatus) {
        if self.jobs.contains_key(&id) {
            self.last_interrupt.insert(id, status);
        }
    }
}

/// Drives a [`JobArena`] and the [`RefJobStore`] reference through one
/// stream of `(op, id, extra)` commands — submit / interrupt / complete
/// (mutate in place) / evict on a small id universe so slots actually
/// recycle — checking every query agrees after every op. Run once with
/// slot reuse and once in append-only twin mode; both must match the
/// reference (and therefore each other), proving recycling is invisible.
fn run_arena_lockstep(ops: &[(u8, u8, u8)]) {
    let ids: Vec<JobId> = (1..=24).map(JobId::new).collect();
    for no_reuse in [false, true] {
        let mut arena = JobArena::new();
        arena.set_no_reuse(no_reuse);
        let mut reference = RefJobStore::default();
        for (step, &(op, id_idx, extra)) in ops.iter().enumerate() {
            let id = ids[id_idx as usize % ids.len()];
            match op % 4 {
                // Submit: insert a fresh job (both stores reject
                // duplicates, so guard on liveness).
                0 => {
                    if !arena.contains(id) {
                        let job = Job::new(spec(
                            id.raw(),
                            extra as u32 % 16 + 1,
                            qos_from(extra),
                            step as u64,
                        ));
                        arena.insert(job.clone());
                        reference.insert(job);
                    }
                }
                // Interrupt: record the last-interrupt sidecar status.
                1 => {
                    let status = if extra % 2 == 0 {
                        JobStatus::NodeFail
                    } else {
                        JobStatus::Preempted
                    };
                    arena.set_last_interrupt(id, status);
                    reference.set_last_interrupt(id, status);
                }
                // Complete a step of work: mutate the record in place.
                2 => {
                    let a = arena.get_mut(id);
                    let b = reference.jobs.get_mut(&id);
                    assert_eq!(a.is_some(), b.is_some(), "step {step}: presence diverges");
                    if let (Some(a), Some(b)) = (a, b) {
                        a.attempt += 1;
                        a.queue_time += SimDuration::from_mins(extra as u64);
                        b.attempt += 1;
                        b.queue_time += SimDuration::from_mins(extra as u64);
                    }
                }
                // Evict: remove and compare the returned record.
                _ => {
                    assert_eq!(
                        arena.remove(id),
                        reference.remove(id),
                        "step {step}: evicted records diverge"
                    );
                }
            }
            // Full-store agreement after every op.
            assert_eq!(arena.len(), reference.jobs.len(), "step {step}: len");
            assert_eq!(arena.stats().live, reference.jobs.len());
            for &probe in &ids {
                assert_eq!(
                    arena.get(probe),
                    reference.jobs.get(&probe),
                    "step {step}: get({probe}) diverges"
                );
                assert_eq!(arena.contains(probe), reference.jobs.contains_key(&probe));
                assert_eq!(
                    arena.last_interrupt(probe),
                    reference.last_interrupt.get(&probe).copied(),
                    "step {step}: last_interrupt({probe}) diverges"
                );
            }
            // Iteration is order-insensitive by contract; compare as sets.
            let mut a: Vec<&Job> = arena.iter_jobs().collect();
            let mut b: Vec<&Job> = reference.jobs.values().collect();
            a.sort_by_key(|j| j.spec.id);
            b.sort_by_key(|j| j.spec.id);
            assert_eq!(a, b, "step {step}: live sets diverge");
        }
        if no_reuse {
            assert_eq!(arena.stats().reused, 0, "twin mode must never recycle");
        }
    }
}

/// Drives a recycling scheduler and an append-only-arena scheduler in
/// lockstep, checking decisions and the final accounting rows (records)
/// are identical — the sched-level half of the slot-reuse-is-invisible
/// proof (the sim-level half pins sealed snapshot bytes).
fn run_arena_reuse_sched_lockstep(cmds: &[(u8, u32, u8, u32)]) {
    let topo = Topology::new(&ClusterSpec::new("p", 24));
    let mut recycling = Scheduler::new(topo.clone(), SchedConfig::rsc_default());
    let mut append_only = Scheduler::new(topo, SchedConfig::rsc_default());
    append_only.set_arena_no_reuse(true);
    let mut t = 1u64;
    let mut live: Vec<(JobId, u32)> = Vec::new();
    for (i, &(op, gpus, qos, node)) in cmds.iter().enumerate() {
        t += 1;
        let now = SimTime::from_mins(t);
        match op {
            0 | 1 => {
                let s = spec(i as u64 + 1, gpus, qos_from(qos), t);
                recycling.submit(s.clone());
                append_only.submit(s);
            }
            2 => {
                let a = recycling.interrupt_node(NodeId::new(node), InterruptCause::NodeHang, now);
                let b =
                    append_only.interrupt_node(NodeId::new(node), InterruptCause::NodeHang, now);
                assert_eq!(a, b, "step {i}: interrupt victims diverge");
            }
            _ => {
                if let Some((id, attempt)) = live.first().copied() {
                    live.remove(0);
                    let a = recycling.finish(id, attempt, JobStatus::Completed, now);
                    let b = append_only.finish(id, attempt, JobStatus::Completed, now);
                    assert_eq!(a, b, "step {i}: finish outcome diverges");
                }
            }
        }
        let a = recycling.cycle(now);
        let b = append_only.cycle(now);
        assert_eq!(a, b, "step {i}: cycle decisions diverge");
        for s in &a {
            live.push((s.job, s.attempt));
        }
    }
    // Identical accounting rows, and the twin distinction was real: the
    // recycling arena stayed within a bounded slab while the append-only
    // twin grew monotonically.
    assert_eq!(recycling.records(), append_only.records());
    assert_eq!(append_only.arena_stats().reused, 0);
    assert_eq!(recycling.arena_stats().live, append_only.arena_stats().live);
}

/// Deterministic pseudo-random lockstep runs (always executed, even where
/// the proptest harness is unavailable): 16 streams of 120 commands each.
#[test]
fn indexed_matches_naive_lockstep_deterministic() {
    for seed in 0u64..16 {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 16
        };
        let cmds: Vec<(u8, u32, u8, u32)> = (0..120)
            .map(|_| {
                (
                    (step() % 4) as u8,
                    (step() % 79 + 1) as u32,
                    (step() % 3) as u8,
                    (step() % 24) as u32,
                )
            })
            .collect();
        run_lockstep(&cmds);
    }
}

/// Deterministic pseudo-random arena-vs-hashmap lockstep runs (always
/// executed, even where the proptest harness is unavailable).
#[test]
fn arena_matches_hashmap_lockstep_deterministic() {
    for seed in 0u64..16 {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 16
        };
        let ops: Vec<(u8, u8, u8)> = (0..200)
            .map(|_| ((step() % 4) as u8, (step() % 24) as u8, (step() % 64) as u8))
            .collect();
        run_arena_lockstep(&ops);
    }
}

/// Deterministic pseudo-random reuse-vs-append-only scheduler twins.
#[test]
fn arena_reuse_matches_append_only_sched_deterministic() {
    for seed in 0u64..8 {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 16
        };
        let cmds: Vec<(u8, u32, u8, u32)> = (0..120)
            .map(|_| {
                (
                    (step() % 4) as u8,
                    (step() % 79 + 1) as u32,
                    (step() % 3) as u8,
                    (step() % 24) as u32,
                )
            })
            .collect();
        run_arena_reuse_sched_lockstep(&cmds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GPU accounting never leaks: busy + free == total at every step,
    /// whatever interleaving of submit / cycle / interrupt / finish runs.
    #[test]
    fn accounting_is_conserved(
        sizes in prop::collection::vec((1u32..64, 0u8..3), 1..40),
        interrupt_node in 0u32..16,
    ) {
        let topo = Topology::new(&ClusterSpec::new("p", 16));
        let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
        let total = sched.pool().total_gpus();
        let mut t = 1u64;
        for (i, (gpus, qos)) in sizes.iter().enumerate() {
            sched.submit(spec(i as u64 + 1, (*gpus).min(128), qos_from(*qos), t));
            t += 1;
            let started = sched.cycle(SimTime::from_mins(t));
            for s in &started {
                // Gang property: whole allocation or nothing.
                prop_assert!(!s.nodes.is_empty());
            }
            prop_assert_eq!(sched.busy_gpus() + sched.pool().total_free_gpus(), total);
        }
        sched.interrupt_node(
            NodeId::new(interrupt_node),
            InterruptCause::NodeHang,
            SimTime::from_mins(t + 1),
        );
        prop_assert_eq!(sched.busy_gpus() + sched.pool().total_free_gpus(), total);
    }

    /// Records are well-formed: start ≥ enqueue, end ≥ start, node count
    /// matches the job's gang size.
    #[test]
    fn records_are_well_formed(
        sizes in prop::collection::vec((1u32..32, 0u8..3), 1..30),
    ) {
        let topo = Topology::new(&ClusterSpec::new("p", 8));
        let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
        let mut t = 1u64;
        let mut started_ids = Vec::new();
        for (i, (gpus, qos)) in sizes.iter().enumerate() {
            sched.submit(spec(i as u64 + 1, (*gpus).min(64), qos_from(*qos), t));
            for s in sched.cycle(SimTime::from_mins(t)) {
                started_ids.push((s.job, s.attempt));
            }
            t += 2;
        }
        for (id, attempt) in started_ids {
            sched.finish(id, attempt, JobStatus::Completed, SimTime::from_mins(t + 60));
        }
        for r in sched.records() {
            let start = r.started_at.expect("completed records started");
            prop_assert!(start >= r.enqueued_at);
            prop_assert!(r.ended_at >= start);
            if r.gpus >= 8 {
                prop_assert_eq!(r.nodes.len() as u32, r.gpus.div_ceil(8));
            } else {
                prop_assert_eq!(r.nodes.len(), 1);
            }
        }
    }

    /// Node interruption requeues every affected job exactly once with a
    /// bumped attempt, and the node ends up empty.
    #[test]
    fn interrupts_requeue_once(
        njobs in 1usize..10,
        cause_idx in 0u8..3,
    ) {
        let topo = Topology::new(&ClusterSpec::new("p", 1));
        let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
        for i in 0..njobs {
            // 1-GPU jobs share the single node (8 slots).
            sched.submit(spec(i as u64 + 1, 1, QosClass::Normal, 1));
        }
        let started = sched.cycle(SimTime::from_mins(1));
        let expected = njobs.min(8);
        prop_assert_eq!(started.len(), expected);
        let cause = match cause_idx % 3 {
            0 => InterruptCause::NodeHang,
            1 => InterruptCause::HealthCheck,
            _ => InterruptCause::AppCrash,
        };
        let victims = sched.interrupt_node(NodeId::new(0), cause, SimTime::from_hours(1));
        prop_assert_eq!(victims.len(), expected);
        prop_assert!(sched.jobs_on_node(NodeId::new(0)).is_empty());
        for v in victims {
            let job = sched.job(v).expect("requeued job exists");
            prop_assert!(job.is_pending());
            prop_assert_eq!(job.attempt, 1);
        }
    }

    /// The indexed hot path is a pure optimization: a scheduler running on
    /// the incremental indexes and one routed through the retained naive
    /// O(nodes) scans, driven in lockstep through the same random command
    /// stream, make identical decisions — same starts (ids, attempts, node
    /// sets), same preemption victims, same conservative-backfill
    /// reservation times, and identical pool accounting at every step.
    #[test]
    fn indexed_scheduler_matches_naive_reference(
        cmds in prop::collection::vec((0u8..4, 1u32..80, 0u8..3, 0u32..24), 1..60),
    ) {
        run_lockstep(&cmds);
    }

    /// The slab arena is observationally a `HashMap<JobId, Job>` plus a
    /// last-interrupt map: random submit / interrupt / complete / evict
    /// streams produce identical answers to every query, with and without
    /// slot recycling.
    #[test]
    fn arena_matches_hashmap_reference(
        ops in prop::collection::vec((0u8..4, 0u8..24, 0u8..64), 1..120),
    ) {
        run_arena_lockstep(&ops);
    }

    /// Arena slot recycling is invisible to the scheduler: a recycling
    /// scheduler and an append-only twin make identical decisions and
    /// produce identical accounting rows on random command streams.
    #[test]
    fn arena_reuse_matches_append_only_scheduler(
        cmds in prop::collection::vec((0u8..4, 1u32..80, 0u8..3, 0u32..24), 1..60),
    ) {
        run_arena_reuse_sched_lockstep(&cmds);
    }

    /// Priority ordering: when capacity suffices for exactly one job, the
    /// higher QoS submission always wins regardless of submission order.
    #[test]
    fn higher_qos_wins(flip in any::<bool>()) {
        let topo = Topology::new(&ClusterSpec::new("p", 1));
        let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
        let (first, second) = if flip {
            (QosClass::High, QosClass::Low)
        } else {
            (QosClass::Low, QosClass::High)
        };
        sched.submit(spec(1, 8, first, 1));
        sched.submit(spec(2, 8, second, 1));
        let started = sched.cycle(SimTime::from_mins(2));
        prop_assert_eq!(started.len(), 1);
        let winner = sched.job(started[0].job).expect("winner exists");
        prop_assert_eq!(winner.spec.qos, QosClass::High);
    }
}
