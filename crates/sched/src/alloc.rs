//! GPU slot accounting and topology-aware gang allocation.
//!
//! Sub-node jobs (the >90% of jobs smaller than one server, Obs. 7) share
//! nodes at GPU-slot granularity; multi-node jobs take whole servers.
//! Multi-node placement packs pods first, mirroring Slurm's attempt to
//! "co-locate the tasks given the physical network topology" (§II-A).

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::NodeId;
use rsc_cluster::node::GPUS_PER_NODE;
use rsc_cluster::topology::Topology;

use crate::job::JobSpec;

/// Tracks free GPU slots and schedulability for every node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourcePool {
    topology: Topology,
    free_slots: Vec<u8>,
    available: Vec<bool>,
}

impl ResourcePool {
    /// Creates a pool with all nodes available and empty.
    pub fn new(topology: Topology) -> Self {
        let n = topology.num_nodes() as usize;
        ResourcePool {
            topology,
            free_slots: vec![GPUS_PER_NODE as u8; n],
            available: vec![true; n],
        }
    }

    /// The placement topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Marks a node schedulable or not (driven by cluster health state).
    /// Resource accounting is unchanged; running jobs are the scheduler's
    /// concern.
    pub fn set_available(&mut self, node: NodeId, available: bool) {
        self.available[node.as_usize()] = available;
    }

    /// Whether a node is currently schedulable.
    pub fn is_available(&self, node: NodeId) -> bool {
        self.available[node.as_usize()]
    }

    /// Free GPU slots on a node.
    pub fn free_slots(&self, node: NodeId) -> u8 {
        self.free_slots[node.as_usize()]
    }

    /// Total free GPUs on available nodes.
    pub fn total_free_gpus(&self) -> u64 {
        self.free_slots
            .iter()
            .zip(&self.available)
            .filter(|(_, &a)| a)
            .map(|(&f, _)| f as u64)
            .sum()
    }

    /// Total GPUs in the pool (available or not).
    pub fn total_gpus(&self) -> u64 {
        self.free_slots.len() as u64 * GPUS_PER_NODE as u64
    }

    /// Attempts to find an allocation for the spec without committing it.
    ///
    /// Sub-node jobs best-fit into the fullest node that still fits them
    /// (reducing fragmentation); multi-node jobs take fully-free nodes,
    /// packing pods with the most free capacity first.
    pub fn try_allocate(&self, spec: &JobSpec) -> Option<Vec<NodeId>> {
        if spec.is_sub_node() {
            self.best_fit_sub_node(spec.gpus as u8).map(|n| vec![n])
        } else {
            self.pack_whole_nodes(spec.nodes_needed() as usize)
        }
    }

    fn best_fit_sub_node(&self, gpus: u8) -> Option<NodeId> {
        let mut best: Option<(u8, usize)> = None;
        for (i, (&free, &avail)) in self.free_slots.iter().zip(&self.available).enumerate() {
            if !avail || free < gpus {
                continue;
            }
            // Prefer the tightest fit; ties go to the lowest index for
            // determinism.
            match best {
                Some((bf, _)) if bf <= free => {}
                _ => best = Some((free, i)),
            }
            if free == gpus {
                break; // perfect fit
            }
        }
        best.map(|(_, i)| NodeId::new(i as u32))
    }

    fn pack_whole_nodes(&self, needed: usize) -> Option<Vec<NodeId>> {
        // Gather fully-free nodes grouped by pod (node ids are pod-ordered).
        let free_nodes: Vec<u32> = self
            .free_slots
            .iter()
            .zip(&self.available)
            .enumerate()
            .filter(|(_, (&f, &a))| a && f as usize == GPUS_PER_NODE)
            .map(|(i, _)| i as u32)
            .collect();
        if free_nodes.len() < needed {
            return None;
        }
        // Group by pod, then take from the pods with the most free nodes so
        // jobs span as few pods as possible.
        let mut by_pod: Vec<(u32, Vec<u32>)> = Vec::new();
        for idx in free_nodes {
            let pod = self.topology.pod_of(NodeId::new(idx)).index();
            match by_pod.last_mut() {
                Some((p, v)) if *p == pod => v.push(idx),
                _ => by_pod.push((pod, vec![idx])),
            }
        }
        by_pod.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        let mut chosen = Vec::with_capacity(needed);
        for (_, nodes) in by_pod {
            for idx in nodes {
                chosen.push(NodeId::new(idx));
                if chosen.len() == needed {
                    chosen.sort();
                    return Some(chosen);
                }
            }
        }
        None
    }

    /// Commits an allocation previously returned by [`Self::try_allocate`].
    ///
    /// # Panics
    ///
    /// Panics if the nodes cannot hold the job (double-commit bug).
    pub fn commit(&mut self, nodes: &[NodeId], spec: &JobSpec) {
        if spec.is_sub_node() {
            let n = nodes[0].as_usize();
            assert!(
                self.free_slots[n] >= spec.gpus as u8,
                "commit over capacity on {}",
                nodes[0]
            );
            self.free_slots[n] -= spec.gpus as u8;
        } else {
            for &node in nodes {
                let n = node.as_usize();
                assert!(
                    self.free_slots[n] as usize == GPUS_PER_NODE,
                    "commit on non-free node {node}"
                );
                self.free_slots[n] = 0;
            }
        }
    }

    /// Releases a previously committed allocation.
    ///
    /// # Panics
    ///
    /// Panics if the release would exceed node capacity (double-release bug).
    pub fn release(&mut self, nodes: &[NodeId], spec: &JobSpec) {
        if spec.is_sub_node() {
            let n = nodes[0].as_usize();
            let new = self.free_slots[n] + spec.gpus as u8;
            assert!(
                new as usize <= GPUS_PER_NODE,
                "release over capacity on {}",
                nodes[0]
            );
            self.free_slots[n] = new;
        } else {
            for &node in nodes {
                let n = node.as_usize();
                assert!(
                    self.free_slots[n] == 0,
                    "release of non-committed node {node}"
                );
                self.free_slots[n] = GPUS_PER_NODE as u8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::JobId;
    use rsc_cluster::spec::ClusterSpec;
    use rsc_sim_core::time::{SimDuration, SimTime};

    use crate::job::{Destiny, QosClass};

    fn pool(nodes: u32) -> ResourcePool {
        ResourcePool::new(Topology::new(&ClusterSpec::new("t", nodes)))
    }

    fn spec(gpus: u32) -> JobSpec {
        JobSpec {
            id: JobId::new(1),
            project: Default::default(),
            run: None,
            gpus,
            submit_at: SimTime::ZERO,
            work: SimDuration::from_hours(1),
            time_limit: SimDuration::from_days(7),
            qos: QosClass::Normal,
            checkpoint_interval: SimDuration::from_hours(1),
            restart_overhead: SimDuration::from_mins(5),
            destiny: Destiny::Complete,
            requeue_on_user_failure: false,
        }
    }

    #[test]
    fn sub_node_jobs_share_a_node() {
        let mut p = pool(4);
        let s1 = spec(3);
        let a1 = p.try_allocate(&s1).unwrap();
        p.commit(&a1, &s1);
        let s2 = spec(5);
        let a2 = p.try_allocate(&s2).unwrap();
        p.commit(&a2, &s2);
        // Best fit packs both onto the same node (3 + 5 = 8).
        assert_eq!(a1, a2);
        assert_eq!(p.free_slots(a1[0]), 0);
    }

    #[test]
    fn multi_node_requires_fully_free_nodes() {
        let mut p = pool(2);
        let small = spec(1);
        let a = p.try_allocate(&small).unwrap();
        p.commit(&a, &small);
        // 16-GPU job needs two fully-free nodes; only one remains.
        assert!(p.try_allocate(&spec(16)).is_none());
        assert!(p.try_allocate(&spec(8)).is_some());
    }

    #[test]
    fn multi_node_packs_single_pod_when_possible() {
        // 40 nodes = 2 pods of 20.
        let mut p = pool(40);
        // Occupy 10 nodes of pod 0 so pod 1 has more capacity.
        for i in 0..10 {
            let s = spec(8);
            let nodes = vec![NodeId::new(i)];
            p.commit(&nodes, &s);
        }
        let a = p.try_allocate(&spec(80)).unwrap(); // 10 nodes
        let pods = p.topology().pods_spanned(a.iter());
        assert_eq!(pods, 1, "allocation should fit in one pod: {a:?}");
        // They should come from pod 1 (20 free) rather than pod 0 (10 free).
        assert!(a.iter().all(|n| p.topology().pod_of(*n).index() == 1));
    }

    #[test]
    fn unavailable_nodes_are_skipped() {
        let mut p = pool(2);
        p.set_available(NodeId::new(0), false);
        let a = p.try_allocate(&spec(8)).unwrap();
        assert_eq!(a, vec![NodeId::new(1)]);
        p.set_available(NodeId::new(1), false);
        assert!(p.try_allocate(&spec(1)).is_none());
    }

    #[test]
    fn commit_release_roundtrip() {
        let mut p = pool(4);
        let s = spec(16);
        let a = p.try_allocate(&s).unwrap();
        p.commit(&a, &s);
        assert_eq!(p.total_free_gpus(), 16);
        p.release(&a, &s);
        assert_eq!(p.total_free_gpus(), 32);
    }

    #[test]
    #[should_panic(expected = "release of non-committed node")]
    fn double_release_panics() {
        let mut p = pool(1);
        let s = spec(8);
        p.release(&[NodeId::new(0)], &s);
    }

    #[test]
    fn allocation_exhausts_then_fails() {
        let mut p = pool(2);
        let s = spec(8);
        for _ in 0..2 {
            let a = p.try_allocate(&s).unwrap();
            p.commit(&a, &s);
        }
        assert!(p.try_allocate(&spec(1)).is_none());
        assert_eq!(p.total_free_gpus(), 0);
    }
}
