//! GPU slot accounting and topology-aware gang allocation.
//!
//! Sub-node jobs (the >90% of jobs smaller than one server, Obs. 7) share
//! nodes at GPU-slot granularity; multi-node jobs take whole servers.
//! Multi-node placement packs pods first, mirroring Slurm's attempt to
//! "co-locate the tasks given the physical network topology" (§II-A).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use rsc_cluster::bitset::HierBitSet;
use rsc_cluster::ids::{NodeId, PodId};
use rsc_cluster::node::GPUS_PER_NODE;
use rsc_cluster::topology::Topology;

use crate::job::JobSpec;

/// Incrementally-maintained derived views of the pool, so allocation
/// queries don't rescan every node (DESIGN.md §9).
///
/// Invariants (over *available* nodes only):
///
/// * `free_gpus` = Σ free slots;
/// * `by_free[f]` holds exactly the nodes with `f` free slots, for
///   `f ≥ 1` (fully-busy nodes are indexed nowhere — no query looks
///   for zero free slots);
/// * `whole_count_by_pod[p]` counts the fully-free nodes of pod `p`, and
///   `whole_total` their overall count. The *identities* of a pod's
///   fully-free nodes are not stored twice: node ids are pod-contiguous,
///   so they are recovered by slicing `by_free[8]` with the pod's id
///   range ([`Topology::pod_range`]);
/// * `pods_by_fullness` holds `(Reverse(count), p)` for every pod `p`
///   with a non-zero `whole_count_by_pod[p]` — its ascending order is the
///   whole-node packing order (fullest pod first, ties to the lowest
///   pod index), kept current so allocation never sorts.
///
/// The per-free-count buckets are hierarchical bitsets rather than
/// B-trees: at a million nodes every commit/release re-files the node in
/// two buckets, and the bitset does each re-file with two or three word
/// writes instead of a pointer walk.
///
/// Unavailable nodes are absent from every structure; toggling
/// availability re-files the node. Rebuilt from scratch rather than
/// serialized (see the `serde(skip)` on the pool field).
#[derive(Debug, Clone, Default)]
struct PoolIndex {
    free_gpus: u64,
    by_free: [HierBitSet; GPUS_PER_NODE + 1],
    whole_count_by_pod: Vec<usize>,
    whole_total: usize,
    pods_by_fullness: BTreeSet<(std::cmp::Reverse<usize>, u32)>,
}

/// Tracks free GPU slots and schedulability for every node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourcePool {
    topology: Topology,
    free_slots: Vec<u8>,
    available: Vec<bool>,
    // Derived data: deterministic function of the three fields above.
    // Skipped by serde, so anything deserializing a pool must call
    // `rebuild_index` before use (nothing in-tree serializes pools;
    // the derives exist for embedding in config-like structs).
    #[serde(skip)]
    index: PoolIndex,
}

/// Equality over the real state only; the index is derived.
impl PartialEq for ResourcePool {
    fn eq(&self, other: &Self) -> bool {
        self.topology == other.topology
            && self.free_slots == other.free_slots
            && self.available == other.available
    }
}

impl ResourcePool {
    /// Creates a pool with all nodes available and empty.
    pub fn new(topology: Topology) -> Self {
        let n = topology.num_nodes() as usize;
        let mut pool = ResourcePool {
            topology,
            free_slots: vec![GPUS_PER_NODE as u8; n],
            available: vec![true; n],
            index: PoolIndex::default(),
        };
        pool.rebuild_index();
        pool
    }

    /// Recomputes the derived index from the node state. O(n log n);
    /// needed only after construction or deserialization.
    pub fn rebuild_index(&mut self) {
        let n = self.free_slots.len();
        let num_pods = (0..n)
            .map(|i| self.topology.pod_of(NodeId::new(i as u32)).index() + 1)
            .max()
            .unwrap_or(0) as usize;
        self.index = PoolIndex {
            free_gpus: 0,
            by_free: std::array::from_fn(|_| HierBitSet::new(n)),
            whole_count_by_pod: vec![0; num_pods],
            whole_total: 0,
            pods_by_fullness: BTreeSet::new(),
        };
        for i in 0..n {
            if self.available[i] {
                self.index_insert(i);
            }
        }
    }

    /// Files an available node into the index. Must not already be filed.
    fn index_insert(&mut self, i: usize) {
        let free = self.free_slots[i];
        self.index.free_gpus += free as u64;
        if free > 0 {
            self.index.by_free[free as usize].insert(i as u32);
        }
        if free as usize == GPUS_PER_NODE {
            let pod = self.topology.pod_of(NodeId::new(i as u32)).index() as usize;
            let count = self.index.whole_count_by_pod[pod];
            self.index.whole_count_by_pod[pod] = count + 1;
            self.refile_pod(pod, count, count + 1);
            self.index.whole_total += 1;
        }
    }

    /// Removes an available node from the index ahead of a state change.
    fn index_remove(&mut self, i: usize) {
        let free = self.free_slots[i];
        self.index.free_gpus -= free as u64;
        if free > 0 {
            self.index.by_free[free as usize].remove(i as u32);
        }
        if free as usize == GPUS_PER_NODE {
            let pod = self.topology.pod_of(NodeId::new(i as u32)).index() as usize;
            let count = self.index.whole_count_by_pod[pod];
            self.index.whole_count_by_pod[pod] = count - 1;
            self.refile_pod(pod, count, count - 1);
            self.index.whole_total -= 1;
        }
    }

    /// Moves pod `pod` from the `old`- to the `new`-count position in the
    /// packing order (zero counts are simply absent).
    fn refile_pod(&mut self, pod: usize, old: usize, new: usize) {
        use std::cmp::Reverse;
        if old > 0 {
            self.index
                .pods_by_fullness
                .remove(&(Reverse(old), pod as u32));
        }
        if new > 0 {
            self.index
                .pods_by_fullness
                .insert((Reverse(new), pod as u32));
        }
    }

    /// Updates a node's free-slot count, keeping the index current.
    fn set_free_slots(&mut self, i: usize, free: u8) {
        if self.available[i] {
            self.index_remove(i);
            self.free_slots[i] = free;
            self.index_insert(i);
        } else {
            self.free_slots[i] = free;
        }
    }

    /// The placement topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Marks a node schedulable or not (driven by cluster health state).
    /// Resource accounting is unchanged; running jobs are the scheduler's
    /// concern.
    pub fn set_available(&mut self, node: NodeId, available: bool) {
        let i = node.as_usize();
        if self.available[i] == available {
            return;
        }
        if available {
            self.available[i] = true;
            self.index_insert(i);
        } else {
            self.index_remove(i);
            self.available[i] = false;
        }
    }

    /// Whether a node is currently schedulable.
    pub fn is_available(&self, node: NodeId) -> bool {
        self.available[node.as_usize()]
    }

    /// Free GPU slots on a node.
    pub fn free_slots(&self, node: NodeId) -> u8 {
        self.free_slots[node.as_usize()]
    }

    /// Total free GPUs on available nodes. O(1) via the index.
    pub fn total_free_gpus(&self) -> u64 {
        self.index.free_gpus
    }

    /// The naive-scan equivalent of [`Self::total_free_gpus`], retained as
    /// the reference the property tests pin the index against.
    #[doc(hidden)]
    pub fn total_free_gpus_naive(&self) -> u64 {
        self.free_slots
            .iter()
            .zip(&self.available)
            .filter(|(_, &a)| a)
            .map(|(&f, _)| f as u64)
            .sum()
    }

    /// Count of fully-free available nodes. O(1) via the index.
    pub fn free_whole_nodes(&self) -> usize {
        self.index.whole_total
    }

    /// Ascending iterator over fully-free available nodes.
    pub(crate) fn free_whole_iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.index.by_free[GPUS_PER_NODE].iter()
    }

    /// Total GPUs in the pool (available or not).
    pub fn total_gpus(&self) -> u64 {
        self.free_slots.len() as u64 * GPUS_PER_NODE as u64
    }

    /// Attempts to find an allocation for the spec without committing it.
    ///
    /// Sub-node jobs best-fit into the fullest node that still fits them
    /// (reducing fragmentation); multi-node jobs take fully-free nodes,
    /// packing pods with the most free capacity first.
    pub fn try_allocate(&self, spec: &JobSpec) -> Option<Vec<NodeId>> {
        if spec.is_sub_node() {
            self.best_fit_sub_node(spec.gpus as u8).map(|n| vec![n])
        } else {
            self.pack_whole_nodes(spec.nodes_needed() as usize)
        }
    }

    /// Tightest fit, ties to the lowest node index: exactly the minimum
    /// of `(free, index)` over nodes that fit — so the first non-empty
    /// free-count bucket at or above `gpus` holds the answer.
    fn best_fit_sub_node(&self, gpus: u8) -> Option<NodeId> {
        for f in gpus as usize..=GPUS_PER_NODE {
            if let Some(i) = self.index.by_free[f].first() {
                return Some(NodeId::new(i));
            }
        }
        None
    }

    /// The naive-scan equivalent of [`Self::best_fit_sub_node`] (reference
    /// for the property tests).
    #[doc(hidden)]
    pub fn best_fit_sub_node_naive(&self, gpus: u8) -> Option<NodeId> {
        let mut best: Option<(u8, usize)> = None;
        for (i, (&free, &avail)) in self.free_slots.iter().zip(&self.available).enumerate() {
            if !avail || free < gpus {
                continue;
            }
            // Prefer the tightest fit; ties go to the lowest index for
            // determinism.
            match best {
                Some((bf, _)) if bf <= free => {}
                _ => best = Some((free, i)),
            }
            if free == gpus {
                break; // perfect fit
            }
        }
        best.map(|(_, i)| NodeId::new(i as u32))
    }

    /// Takes whole nodes from the pods with the most free capacity first
    /// (fewest pods spanned), nodes in ascending id order within a pod,
    /// result sorted — byte-for-byte the choice the old full scan made,
    /// but O(needed) off the maintained packing order: `pods_by_fullness`
    /// ascending is exactly the old per-query sort's key (free count
    /// descending, pod index ascending; keys are unique, so stability
    /// cannot matter), with empty pods already absent.
    fn pack_whole_nodes(&self, needed: usize) -> Option<Vec<NodeId>> {
        if self.index.whole_total < needed {
            return None;
        }
        let mut chosen = Vec::with_capacity(needed);
        for &(_, pod) in &self.index.pods_by_fullness {
            // A pod's fully-free nodes are the whole-node bucket sliced by
            // the pod's contiguous id range.
            let range = self.topology.pod_range(PodId::new(pod));
            for idx in self.index.by_free[GPUS_PER_NODE].iter_range(range.start, range.end) {
                chosen.push(NodeId::new(idx));
                if chosen.len() == needed {
                    chosen.sort();
                    return Some(chosen);
                }
            }
        }
        None
    }

    /// The naive-scan equivalent of [`Self::pack_whole_nodes`] (reference
    /// for the property tests).
    #[doc(hidden)]
    pub fn pack_whole_nodes_naive(&self, needed: usize) -> Option<Vec<NodeId>> {
        // Gather fully-free nodes grouped by pod (node ids are pod-ordered).
        let free_nodes: Vec<u32> = self
            .free_slots
            .iter()
            .zip(&self.available)
            .enumerate()
            .filter(|(_, (&f, &a))| a && f as usize == GPUS_PER_NODE)
            .map(|(i, _)| i as u32)
            .collect();
        if free_nodes.len() < needed {
            return None;
        }
        // Group by pod, then take from the pods with the most free nodes so
        // jobs span as few pods as possible.
        let mut by_pod: Vec<(u32, Vec<u32>)> = Vec::new();
        for idx in free_nodes {
            let pod = self.topology.pod_of(NodeId::new(idx)).index();
            match by_pod.last_mut() {
                Some((p, v)) if *p == pod => v.push(idx),
                _ => by_pod.push((pod, vec![idx])),
            }
        }
        by_pod.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        let mut chosen = Vec::with_capacity(needed);
        for (_, nodes) in by_pod {
            for idx in nodes {
                chosen.push(NodeId::new(idx));
                if chosen.len() == needed {
                    chosen.sort();
                    return Some(chosen);
                }
            }
        }
        None
    }

    /// Naive-scan allocation (reference for the property tests): same
    /// routing as [`Self::try_allocate`] over the `_naive` primitives.
    #[doc(hidden)]
    pub fn try_allocate_naive(&self, spec: &JobSpec) -> Option<Vec<NodeId>> {
        if spec.is_sub_node() {
            self.best_fit_sub_node_naive(spec.gpus as u8)
                .map(|n| vec![n])
        } else {
            self.pack_whole_nodes_naive(spec.nodes_needed() as usize)
        }
    }

    /// Commits an allocation previously returned by [`Self::try_allocate`].
    ///
    /// # Panics
    ///
    /// Panics if the nodes cannot hold the job (double-commit bug).
    pub fn commit(&mut self, nodes: &[NodeId], spec: &JobSpec) {
        if spec.is_sub_node() {
            let n = nodes[0].as_usize();
            assert!(
                self.free_slots[n] >= spec.gpus as u8,
                "commit over capacity on {}",
                nodes[0]
            );
            self.set_free_slots(n, self.free_slots[n] - spec.gpus as u8);
        } else {
            for &node in nodes {
                let n = node.as_usize();
                assert!(
                    self.free_slots[n] as usize == GPUS_PER_NODE,
                    "commit on non-free node {node}"
                );
                self.set_free_slots(n, 0);
            }
        }
    }

    /// Releases a previously committed allocation.
    ///
    /// # Panics
    ///
    /// Panics if the release would exceed node capacity (double-release bug).
    pub fn release(&mut self, nodes: &[NodeId], spec: &JobSpec) {
        if spec.is_sub_node() {
            let n = nodes[0].as_usize();
            let new = self.free_slots[n] + spec.gpus as u8;
            assert!(
                new as usize <= GPUS_PER_NODE,
                "release over capacity on {}",
                nodes[0]
            );
            self.set_free_slots(n, new);
        } else {
            for &node in nodes {
                let n = node.as_usize();
                assert!(
                    self.free_slots[n] == 0,
                    "release of non-committed node {node}"
                );
                self.set_free_slots(n, GPUS_PER_NODE as u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::JobId;
    use rsc_cluster::spec::ClusterSpec;
    use rsc_sim_core::time::{SimDuration, SimTime};

    use crate::job::{Destiny, QosClass};

    fn pool(nodes: u32) -> ResourcePool {
        ResourcePool::new(Topology::new(&ClusterSpec::new("t", nodes)))
    }

    fn spec(gpus: u32) -> JobSpec {
        JobSpec {
            id: JobId::new(1),
            project: Default::default(),
            run: None,
            gpus,
            submit_at: SimTime::ZERO,
            work: SimDuration::from_hours(1),
            time_limit: SimDuration::from_days(7),
            qos: QosClass::Normal,
            checkpoint_interval: SimDuration::from_hours(1),
            restart_overhead: SimDuration::from_mins(5),
            destiny: Destiny::Complete,
            requeue_on_user_failure: false,
        }
    }

    #[test]
    fn sub_node_jobs_share_a_node() {
        let mut p = pool(4);
        let s1 = spec(3);
        let a1 = p.try_allocate(&s1).unwrap();
        p.commit(&a1, &s1);
        let s2 = spec(5);
        let a2 = p.try_allocate(&s2).unwrap();
        p.commit(&a2, &s2);
        // Best fit packs both onto the same node (3 + 5 = 8).
        assert_eq!(a1, a2);
        assert_eq!(p.free_slots(a1[0]), 0);
    }

    #[test]
    fn multi_node_requires_fully_free_nodes() {
        let mut p = pool(2);
        let small = spec(1);
        let a = p.try_allocate(&small).unwrap();
        p.commit(&a, &small);
        // 16-GPU job needs two fully-free nodes; only one remains.
        assert!(p.try_allocate(&spec(16)).is_none());
        assert!(p.try_allocate(&spec(8)).is_some());
    }

    #[test]
    fn multi_node_packs_single_pod_when_possible() {
        // 40 nodes = 2 pods of 20.
        let mut p = pool(40);
        // Occupy 10 nodes of pod 0 so pod 1 has more capacity.
        for i in 0..10 {
            let s = spec(8);
            let nodes = vec![NodeId::new(i)];
            p.commit(&nodes, &s);
        }
        let a = p.try_allocate(&spec(80)).unwrap(); // 10 nodes
        let pods = p.topology().pods_spanned(a.iter());
        assert_eq!(pods, 1, "allocation should fit in one pod: {a:?}");
        // They should come from pod 1 (20 free) rather than pod 0 (10 free).
        assert!(a.iter().all(|n| p.topology().pod_of(*n).index() == 1));
    }

    #[test]
    fn unavailable_nodes_are_skipped() {
        let mut p = pool(2);
        p.set_available(NodeId::new(0), false);
        let a = p.try_allocate(&spec(8)).unwrap();
        assert_eq!(a, vec![NodeId::new(1)]);
        p.set_available(NodeId::new(1), false);
        assert!(p.try_allocate(&spec(1)).is_none());
    }

    #[test]
    fn commit_release_roundtrip() {
        let mut p = pool(4);
        let s = spec(16);
        let a = p.try_allocate(&s).unwrap();
        p.commit(&a, &s);
        assert_eq!(p.total_free_gpus(), 16);
        p.release(&a, &s);
        assert_eq!(p.total_free_gpus(), 32);
    }

    #[test]
    #[should_panic(expected = "release of non-committed node")]
    fn double_release_panics() {
        let mut p = pool(1);
        let s = spec(8);
        p.release(&[NodeId::new(0)], &s);
    }

    #[test]
    fn index_tracks_naive_scans_through_churn() {
        let mut p = pool(40);
        // Drive a deterministic mix of commits, releases, and availability
        // flips, checking the indexed queries against the naive scans at
        // every step.
        let mut live: Vec<(Vec<NodeId>, JobSpec)> = Vec::new();
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        for step in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match x % 4 {
                0 | 1 => {
                    let gpus = 1 + (x >> 8) as u32 % 24;
                    let s = spec(gpus);
                    if let Some(nodes) = p.try_allocate(&s) {
                        assert_eq!(Some(nodes.clone()), p.try_allocate_naive(&s), "step {step}");
                        p.commit(&nodes, &s);
                        live.push((nodes, s));
                    } else {
                        assert_eq!(p.try_allocate_naive(&s), None, "step {step}");
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let (nodes, s) = live.swap_remove((x >> 8) as usize % live.len());
                        p.release(&nodes, &s);
                    }
                }
                _ => {
                    let node = NodeId::new((x >> 8) as u32 % 40);
                    // Only flip nodes with no live allocation, mirroring how
                    // the scheduler drains nodes before long unavailability.
                    if !live.iter().any(|(ns, _)| ns.contains(&node)) {
                        let avail = p.is_available(node);
                        p.set_available(node, !avail);
                    }
                }
            }
            assert_eq!(
                p.total_free_gpus(),
                p.total_free_gpus_naive(),
                "step {step}"
            );
            for gpus in [1u8, 3, 7] {
                assert_eq!(
                    p.best_fit_sub_node(gpus),
                    p.best_fit_sub_node_naive(gpus),
                    "step {step} gpus {gpus}"
                );
            }
            for needed in [1usize, 2, 5, 11] {
                assert_eq!(
                    p.pack_whole_nodes(needed),
                    p.pack_whole_nodes_naive(needed),
                    "step {step} needed {needed}"
                );
            }
        }
    }

    #[test]
    fn rebuild_index_matches_incremental() {
        let mut p = pool(8);
        let s = spec(16);
        let a = p.try_allocate(&s).unwrap();
        p.commit(&a, &s);
        p.set_available(NodeId::new(5), false);
        let mut rebuilt = p.clone();
        rebuilt.rebuild_index();
        assert_eq!(p.total_free_gpus(), rebuilt.total_free_gpus());
        assert_eq!(p.free_whole_nodes(), rebuilt.free_whole_nodes());
        assert_eq!(p.try_allocate(&spec(24)), rebuilt.try_allocate(&spec(24)));
    }

    #[test]
    fn allocation_exhausts_then_fails() {
        let mut p = pool(2);
        let s = spec(8);
        for _ in 0..2 {
            let a = p.try_allocate(&s).unwrap();
            p.commit(&a, &s);
        }
        assert!(p.try_allocate(&spec(1)).is_none());
        assert_eq!(p.total_free_gpus(), 0);
    }
}
