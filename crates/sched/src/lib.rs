#![warn(missing_docs)]

//! Slurm-like gang scheduler model for the `rsc-reliability` workspace.
//!
//! Reproduces the scheduling semantics the paper's clusters run on
//! (§II-A): multifactor priorities over QoS tiers, gang allocation at GPU
//! and whole-node granularity with topology-aware packing, preemption only
//! after a two-hour runtime floor, seven-day lifetime caps, and automatic
//! requeue of infrastructure-killed jobs under the same job id. Every
//! terminal transition writes a [`accounting::JobRecord`] — the simulated
//! `sacct` log that the analysis crates consume.
//!
//! # Example
//!
//! ```
//! use rsc_cluster::ids::JobId;
//! use rsc_cluster::spec::ClusterSpec;
//! use rsc_cluster::topology::Topology;
//! use rsc_sched::job::{Destiny, JobSpec, JobStatus, QosClass};
//! use rsc_sched::sched::{SchedConfig, Scheduler};
//! use rsc_sim_core::time::{SimDuration, SimTime};
//!
//! let topo = Topology::new(&ClusterSpec::small_test());
//! let mut sched = Scheduler::new(topo, SchedConfig::rsc_default());
//! sched.submit(JobSpec {
//!     id: JobId::new(1),
//!     project: Default::default(),
//!     run: None,
//!     gpus: 64,
//!     submit_at: SimTime::ZERO,
//!     work: SimDuration::from_hours(4),
//!     time_limit: SimDuration::from_days(1),
//!     qos: QosClass::High,
//!     checkpoint_interval: SimDuration::from_hours(1),
//!     restart_overhead: SimDuration::from_mins(5),
//!     destiny: Destiny::Complete,
//!     requeue_on_user_failure: false,
//! });
//! let started = sched.cycle(SimTime::from_mins(1));
//! assert_eq!(started.len(), 1);
//! assert_eq!(started[0].nodes.len(), 8); // 64 GPUs = 8 whole nodes
//! sched.finish(JobId::new(1), 0, JobStatus::Completed, SimTime::from_hours(5));
//! assert_eq!(sched.records().len(), 1);
//! ```

pub mod accounting;
pub mod alloc;
pub mod arena;
pub mod job;
pub mod project;
pub mod sched;

pub use accounting::JobRecord;
pub use alloc::ResourcePool;
pub use arena::{ArenaStats, JobArena};
pub use job::{Destiny, Job, JobSpec, JobState, JobStatus, QosClass};
pub use project::{ProjectId, ProjectQuotas, ProjectUsage};
pub use sched::{InterruptCause, SchedConfig, Scheduler, StartedAttempt};
