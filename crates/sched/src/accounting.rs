//! Accounting records — the simulated equivalent of `sacct` output, and the
//! raw input to every analysis in `rsc-core`.

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::{JobId, JobRunId, NodeId};
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::job::{JobStatus, QosClass};

/// One attempt of one scheduler job, as recorded at its terminal transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Scheduler job id (stable across requeues).
    pub job: JobId,
    /// Attempt number (0 for the first run of the job id).
    pub attempt: u32,
    /// The logical training run, if the job belongs to one.
    pub run: Option<JobRunId>,
    /// GPUs allocated.
    pub gpus: u32,
    /// Scheduling tier.
    pub qos: QosClass,
    /// Nodes of the allocation (empty if the attempt never started).
    pub nodes: Vec<NodeId>,
    /// When this attempt entered the pending queue.
    pub enqueued_at: SimTime,
    /// When this attempt started running, if it did.
    pub started_at: Option<SimTime>,
    /// When the attempt reached its terminal state.
    pub ended_at: SimTime,
    /// Terminal status of this attempt.
    pub status: JobStatus,
    /// For PREEMPTED records: the job that took the resources.
    pub preempted_by: Option<JobId>,
    /// For PREEMPTED records: the failed job whose requeue instigated the
    /// preemption, when the preemptor was restarting after a failure
    /// (drives the paper's second-order goodput analysis, Fig. 8).
    pub instigator: Option<JobId>,
}

impl JobRecord {
    /// Running time of this attempt (zero if it never started).
    pub fn runtime(&self) -> SimDuration {
        match self.started_at {
            Some(start) => self.ended_at.saturating_since(start),
            None => SimDuration::ZERO,
        }
    }

    /// Time this attempt spent waiting in the queue.
    pub fn queue_wait(&self) -> SimDuration {
        match self.started_at {
            Some(start) => start.saturating_since(self.enqueued_at),
            None => self.ended_at.saturating_since(self.enqueued_at),
        }
    }

    /// GPU-time consumed by this attempt.
    pub fn gpu_time(&self) -> SimDuration {
        SimDuration::from_secs(self.runtime().as_secs() * self.gpus as u64)
    }

    /// Node-days of runtime (the denominator of the paper's failure rate
    /// `r_f`).
    pub fn node_days(&self) -> f64 {
        self.nodes.len() as f64 * self.runtime().as_days()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> JobRecord {
        JobRecord {
            job: JobId::new(1),
            attempt: 0,
            run: None,
            gpus: 16,
            qos: QosClass::Normal,
            nodes: vec![NodeId::new(0), NodeId::new(1)],
            enqueued_at: SimTime::from_hours(1),
            started_at: Some(SimTime::from_hours(2)),
            ended_at: SimTime::from_hours(14),
            status: JobStatus::Completed,
            preempted_by: None,
            instigator: None,
        }
    }

    #[test]
    fn durations() {
        let r = record();
        assert_eq!(r.runtime(), SimDuration::from_hours(12));
        assert_eq!(r.queue_wait(), SimDuration::from_hours(1));
        assert_eq!(r.gpu_time(), SimDuration::from_hours(12 * 16));
        assert!((r.node_days() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn never_started_attempt() {
        let mut r = record();
        r.started_at = None;
        r.nodes.clear();
        assert_eq!(r.runtime(), SimDuration::ZERO);
        assert_eq!(r.queue_wait(), SimDuration::from_hours(13));
        assert_eq!(r.node_days(), 0.0);
    }
}
