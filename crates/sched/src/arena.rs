//! A generational slab arena for live job records.
//!
//! The scheduler's hot paths — cycle survivors, attempt endings, occupant
//! re-tiering, preemption planning — all resolve `JobId → Job`. A
//! `HashMap` pays a hash and a probe per resolution and scatters `Job`
//! records across the heap; [`JobArena`] stores live jobs in a contiguous
//! slab addressed through a dense id table, so every resolution is two
//! array reads and evicted slots are recycled through a free list instead
//! of returned to the allocator.
//!
//! Layout:
//!
//! * `slots` — the slab. Each slot carries a generation counter (bumped on
//!   every reuse) and the job entry, which also holds the job's
//!   last-interrupt status (previously a second, parallel `HashMap`).
//! * `ids` — a dense `JobId.raw() → (slot, generation)` table. Workload
//!   generators hand out sequential ids from 1, so raw ids index it
//!   directly; a stale or unknown id misses via a sentinel or a
//!   generation mismatch, exactly like a `HashMap` miss.
//! * `free` — LIFO recycle list of evicted slots.
//!
//! [`JobArena::set_no_reuse`] disables the free list so every insertion
//! appends; the byte-identity suite runs whole scenarios both ways to
//! prove slot reuse cannot leak into telemetry.

use rsc_cluster::ids::JobId;

use crate::job::{Job, JobStatus};

/// Sentinel slot index for "id not present".
const NONE_IDX: u32 = u32::MAX;

/// A live job plus its scheduler-side sidecar state.
#[derive(Debug, Clone)]
struct JobEntry {
    job: Job,
    /// Status of the job's most recent interruption, when it is requeued
    /// because of one (drives the preemption `instigator` tag).
    last_interrupt: Option<JobStatus>,
}

/// One slab slot: a generation counter plus the occupant, if any.
#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    entry: Option<JobEntry>,
}

/// A `(slot, generation)` handle in the dense id table.
#[derive(Debug, Clone, Copy)]
struct SlotRef {
    index: u32,
    generation: u32,
}

const VACANT: SlotRef = SlotRef {
    index: NONE_IDX,
    generation: 0,
};

/// Allocation statistics for the throughput harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Slab slots ever allocated (high-water mark of concurrently live jobs).
    pub capacity: usize,
    /// Jobs currently live.
    pub live: usize,
    /// Insertions served by recycling a previously evicted slot.
    pub reused: u64,
}

/// Generational slab arena keyed by [`JobId`]; see the module docs.
#[derive(Debug, Default)]
pub struct JobArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    ids: Vec<SlotRef>,
    live: usize,
    reused: u64,
    no_reuse: bool,
}

impl JobArena {
    /// An empty arena.
    pub fn new() -> Self {
        JobArena::default()
    }

    /// Disables free-list recycling: every insertion appends a fresh slot.
    /// Test-only twin mode for proving slot reuse is invisible to callers.
    #[doc(hidden)]
    pub fn set_no_reuse(&mut self, on: bool) {
        self.no_reuse = on;
    }

    /// Allocation statistics (slab capacity, live jobs, slots recycled).
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            capacity: self.slots.len(),
            live: self.live,
            reused: self.reused,
        }
    }

    /// Number of live jobs.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no jobs are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `id` maps to a live job.
    pub fn contains(&self, id: JobId) -> bool {
        self.slot_of(id).is_some()
    }

    fn slot_of(&self, id: JobId) -> Option<usize> {
        let r = *self.ids.get(id.raw() as usize)?;
        if r.index == NONE_IDX {
            return None;
        }
        let slot = &self.slots[r.index as usize];
        // A recycled slot bumped its generation; a stale handle misses.
        (slot.generation == r.generation && slot.entry.is_some()).then_some(r.index as usize)
    }

    /// Inserts a job under its spec id.
    ///
    /// # Panics
    ///
    /// Panics if the id is already live.
    pub fn insert(&mut self, job: Job) {
        let id = job.spec.id;
        let raw = id.raw() as usize;
        if raw >= self.ids.len() {
            self.ids.resize(raw + 1, VACANT);
        }
        assert!(self.slot_of(id).is_none(), "duplicate job id {id} in arena");
        let entry = JobEntry {
            job,
            last_interrupt: None,
        };
        let index = match if self.no_reuse { None } else { self.free.pop() } {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                slot.generation = slot.generation.wrapping_add(1);
                slot.entry = Some(entry);
                self.reused += 1;
                i
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    entry: Some(entry),
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.ids[raw] = SlotRef {
            index,
            generation: self.slots[index as usize].generation,
        };
        self.live += 1;
    }

    /// The live job for `id`, if any.
    pub fn get(&self, id: JobId) -> Option<&Job> {
        let i = self.slot_of(id)?;
        Some(&self.slots[i].entry.as_ref().expect("live slot").job)
    }

    /// Mutable access to the live job for `id`, if any.
    pub fn get_mut(&mut self, id: JobId) -> Option<&mut Job> {
        let i = self.slot_of(id)?;
        Some(&mut self.slots[i].entry.as_mut().expect("live slot").job)
    }

    /// Evicts a job, recycling its slot. Returns the job, or `None` for
    /// unknown/stale ids.
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let i = self.slot_of(id)?;
        let entry = self.slots[i].entry.take().expect("live slot");
        self.ids[id.raw() as usize] = VACANT;
        if !self.no_reuse {
            self.free.push(i as u32);
        }
        self.live -= 1;
        Some(entry.job)
    }

    /// The job's most recent interruption status, if it is requeued
    /// because of one.
    pub fn last_interrupt(&self, id: JobId) -> Option<JobStatus> {
        let i = self.slot_of(id)?;
        self.slots[i]
            .entry
            .as_ref()
            .expect("live slot")
            .last_interrupt
    }

    /// Records the job's most recent interruption status.
    pub fn set_last_interrupt(&mut self, id: JobId, status: JobStatus) {
        if let Some(i) = self.slot_of(id) {
            self.slots[i]
                .entry
                .as_mut()
                .expect("live slot")
                .last_interrupt = Some(status);
        }
    }

    /// Iterates all live jobs in slot order. Callers must not depend on
    /// the order (it differs from id order once slots recycle); the
    /// scheduler only uses this for order-insensitive aggregation.
    pub fn iter_jobs(&self) -> impl Iterator<Item = &Job> {
        self.slots
            .iter()
            .filter_map(|s| s.entry.as_ref().map(|e| &e.job))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::JobId;
    use rsc_sim_core::time::{SimDuration, SimTime};

    use crate::job::{Destiny, JobSpec, QosClass};

    fn job(id: u64) -> Job {
        Job::new(JobSpec {
            id: JobId::new(id),
            project: Default::default(),
            run: None,
            gpus: 8,
            submit_at: SimTime::ZERO,
            work: SimDuration::from_hours(1),
            time_limit: SimDuration::from_hours(2),
            qos: QosClass::Normal,
            checkpoint_interval: SimDuration::from_mins(30),
            restart_overhead: SimDuration::from_mins(5),
            destiny: Destiny::Complete,
            requeue_on_user_failure: false,
        })
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = JobArena::new();
        a.insert(job(1));
        a.insert(job(7));
        assert_eq!(a.len(), 2);
        assert!(a.contains(JobId::new(1)));
        assert!(!a.contains(JobId::new(2)));
        assert_eq!(a.get(JobId::new(7)).unwrap().spec.id, JobId::new(7));
        let removed = a.remove(JobId::new(1)).unwrap();
        assert_eq!(removed.spec.id, JobId::new(1));
        assert!(a.remove(JobId::new(1)).is_none());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn slots_recycle_and_count_reuse() {
        let mut a = JobArena::new();
        a.insert(job(1));
        a.insert(job(2));
        a.remove(JobId::new(1));
        a.insert(job(3)); // recycles job 1's slot
        let stats = a.stats();
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.live, 2);
        assert_eq!(stats.reused, 1);
        // Stale id 1 still misses even though its old slot is live again.
        assert!(a.get(JobId::new(1)).is_none());
        assert_eq!(a.get(JobId::new(3)).unwrap().spec.id, JobId::new(3));
    }

    #[test]
    fn no_reuse_mode_appends_only() {
        let mut a = JobArena::new();
        a.set_no_reuse(true);
        a.insert(job(1));
        a.remove(JobId::new(1));
        a.insert(job(2));
        let stats = a.stats();
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.reused, 0);
    }

    #[test]
    fn last_interrupt_sidecar_follows_lifetime() {
        let mut a = JobArena::new();
        a.insert(job(4));
        assert_eq!(a.last_interrupt(JobId::new(4)), None);
        a.set_last_interrupt(JobId::new(4), JobStatus::NodeFail);
        assert_eq!(a.last_interrupt(JobId::new(4)), Some(JobStatus::NodeFail));
        a.remove(JobId::new(4));
        assert_eq!(a.last_interrupt(JobId::new(4)), None);
        // Reinsertion under the same id starts clean.
        a.insert(job(4));
        assert_eq!(a.last_interrupt(JobId::new(4)), None);
    }

    #[test]
    fn iteration_covers_exactly_live_jobs() {
        let mut a = JobArena::new();
        for id in 1..=6 {
            a.insert(job(id));
        }
        a.remove(JobId::new(2));
        a.remove(JobId::new(5));
        let mut ids: Vec<u64> = a.iter_jobs().map(|j| j.spec.id.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3, 4, 6]);
    }
}
