//! Jobs: specifications, user-driven destinies, and runtime state.

use serde::{Deserialize, Serialize};

use rsc_cluster::ids::{JobId, JobRunId, NodeId};
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::project::ProjectId;

/// Terminal status of a scheduler job, mirroring Slurm's accounting states
/// (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum JobStatus {
    /// Ran to completion with exit code 0.
    Completed,
    /// Application returned a non-zero exit code (user bug, or a hardware
    /// fault surfacing inside the application).
    Failed,
    /// A node allocated to the job became unresponsive or was pulled by a
    /// high-severity health check.
    NodeFail,
    /// Cancelled by the user.
    Cancelled,
    /// Killed by the OOM killer.
    OutOfMemory,
    /// Preempted in favor of a higher-priority job.
    Preempted,
    /// Requeued by the infrastructure (an intermediate record: the same job
    /// id runs again as a new attempt).
    Requeued,
    /// Hit its time limit.
    Timeout,
}

impl JobStatus {
    /// All statuses in Fig. 3 report order.
    pub const ALL: [JobStatus; 8] = [
        JobStatus::Completed,
        JobStatus::Failed,
        JobStatus::NodeFail,
        JobStatus::Cancelled,
        JobStatus::OutOfMemory,
        JobStatus::Preempted,
        JobStatus::Requeued,
        JobStatus::Timeout,
    ];

    /// Short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Completed => "COMPLETED",
            JobStatus::Failed => "FAILED",
            JobStatus::NodeFail => "NODE_FAIL",
            JobStatus::Cancelled => "CANCELLED",
            JobStatus::OutOfMemory => "OUT_OF_MEMORY",
            JobStatus::Preempted => "PREEMPTED",
            JobStatus::Requeued => "REQUEUED",
            JobStatus::Timeout => "TIMEOUT",
        }
    }
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Quality-of-service tier: large training runs are high priority, ad-hoc
/// experimentation low (paper §III: "large jobs tend to be higher priority
/// jobs and small jobs are the lowest priority").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QosClass {
    /// Preemptible, lowest scheduling weight.
    Low,
    /// Default tier.
    Normal,
    /// Highest tier; can preempt lower tiers.
    High,
}

impl QosClass {
    /// Base priority contribution of the tier.
    pub fn base_priority(self) -> f64 {
        match self {
            QosClass::Low => 0.0,
            QosClass::Normal => 10_000.0,
            QosClass::High => 100_000.0,
        }
    }
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QosClass::Low => "low",
            QosClass::Normal => "normal",
            QosClass::High => "high",
        };
        f.write_str(s)
    }
}

/// The user-driven fate a job would meet on healthy hardware.
///
/// Infrastructure failures and preemptions interpose on top of this.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Destiny {
    /// Runs its full `work` and exits 0.
    Complete,
    /// Hits a user bug after the given fraction of its work (deterministic:
    /// restarting from a checkpoint hits the same bug again).
    UserFailure {
        /// Fraction of the job's work at which the bug triggers, in `(0, 1]`.
        at_work_fraction: f64,
    },
    /// OOM-killed after the given fraction of its work.
    OutOfMemory {
        /// Fraction of the job's work at which the OOM triggers.
        at_work_fraction: f64,
    },
    /// The user cancels after the given wallclock running time.
    Cancelled {
        /// Running time after which the user cancels the job.
        after: SimDuration,
    },
}

/// Immutable description of a submitted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Scheduler job id (stable across requeues).
    pub id: JobId,
    /// The project (allocation) the job charges against.
    pub project: ProjectId,
    /// The logical training run this job belongs to, if any.
    pub run: Option<JobRunId>,
    /// Number of GPUs requested.
    pub gpus: u32,
    /// Submission time.
    pub submit_at: SimTime,
    /// Productive work the job must accumulate to complete.
    pub work: SimDuration,
    /// Per-attempt time limit (capped at the cluster's 7-day maximum).
    pub time_limit: SimDuration,
    /// Scheduling tier.
    pub qos: QosClass,
    /// Interval between checkpoints; progress since the last checkpoint is
    /// lost on interruption.
    pub checkpoint_interval: SimDuration,
    /// Restart overhead `u0`: initialization work repeated on every
    /// (re)start before productive work resumes.
    pub restart_overhead: SimDuration,
    /// The job's user-driven fate.
    pub destiny: Destiny,
    /// Whether the submission script requeues the job even on its own
    /// FAILED exits (the paper's crash-loop anti-pattern).
    pub requeue_on_user_failure: bool,
}

impl JobSpec {
    /// Number of whole nodes this job occupies: sub-node jobs share a
    /// server; multi-node jobs take whole servers (gang scheduling).
    pub fn nodes_needed(&self) -> u32 {
        self.gpus.div_ceil(rsc_cluster::node::GPUS_PER_NODE as u32)
    }

    /// Whether the job needs less than a full server.
    pub fn is_sub_node(&self) -> bool {
        self.gpus < rsc_cluster::node::GPUS_PER_NODE as u32
    }

    /// The amount of productive work after which the job's own destiny
    /// terminates it, and with what status.
    pub fn destiny_work(&self) -> (SimDuration, JobStatus) {
        match self.destiny {
            Destiny::Complete => (self.work, JobStatus::Completed),
            Destiny::UserFailure { at_work_fraction } => (
                self.work.mul_f64(at_work_fraction.clamp(0.0, 1.0)),
                JobStatus::Failed,
            ),
            Destiny::OutOfMemory { at_work_fraction } => (
                self.work.mul_f64(at_work_fraction.clamp(0.0, 1.0)),
                JobStatus::OutOfMemory,
            ),
            // Cancellation is wallclock-driven; treat the full work as the
            // work-based bound.
            Destiny::Cancelled { .. } => (self.work, JobStatus::Completed),
        }
    }
}

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Running on an allocation.
    Running {
        /// Nodes allocated (one entry even for sub-node jobs).
        nodes: Vec<NodeId>,
        /// When this attempt started.
        started_at: SimTime,
    },
    /// Finished with a terminal status.
    Done(JobStatus),
}

/// Mutable runtime state of a job inside the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// The immutable spec.
    pub spec: JobSpec,
    /// Attempt number, starting at 0 and bumped on every requeue.
    pub attempt: u32,
    /// Current lifecycle state.
    pub state: JobState,
    /// Productive work banked in checkpoints across attempts.
    pub checkpointed_work: SimDuration,
    /// Cumulative time spent waiting in the queue.
    pub queue_time: SimDuration,
    /// When the job last entered the pending queue.
    pub last_enqueued_at: SimTime,
    /// Cumulative scheduled (running) time across attempts.
    pub scheduled_time: SimDuration,
}

impl Job {
    /// Wraps a spec into a pending job.
    pub fn new(spec: JobSpec) -> Self {
        let submit_at = spec.submit_at;
        Job {
            spec,
            attempt: 0,
            state: JobState::Pending,
            checkpointed_work: SimDuration::ZERO,
            queue_time: SimDuration::ZERO,
            last_enqueued_at: submit_at,
            scheduled_time: SimDuration::ZERO,
        }
    }

    /// Whether the job is currently running.
    pub fn is_running(&self) -> bool {
        matches!(self.state, JobState::Running { .. })
    }

    /// Whether the job is pending in the queue.
    pub fn is_pending(&self) -> bool {
        matches!(self.state, JobState::Pending)
    }

    /// The nodes of the current allocation (empty if not running).
    pub fn allocated_nodes(&self) -> &[NodeId] {
        match &self.state {
            JobState::Running { nodes, .. } => nodes,
            _ => &[],
        }
    }

    /// Multifactor priority at `now`: QoS base + age + a small size bonus
    /// (mirroring Slurm's multifactor plugin shape).
    pub fn priority(&self, now: SimTime) -> f64 {
        let age_mins = now.saturating_since(self.spec.submit_at).as_mins();
        self.spec.qos.base_priority() + age_mins + (self.spec.gpus as f64).sqrt()
    }

    /// Remaining productive work to run to completion (or to the destiny
    /// point, whichever comes first).
    pub fn remaining_work(&self) -> SimDuration {
        let (destiny_work, _) = self.spec.destiny_work();
        destiny_work.saturating_sub(self.checkpointed_work)
    }

    /// Banks checkpointed progress after running productively for
    /// `productive` time in the current attempt (only whole checkpoint
    /// intervals survive an interruption).
    pub fn bank_progress(&mut self, productive: SimDuration) {
        let interval = self.spec.checkpoint_interval.as_secs();
        let banked = match productive.as_secs().checked_div(interval) {
            None => productive, // zero interval: continuous checkpointing
            Some(whole) => SimDuration::from_secs(whole * interval),
        };
        let (destiny_work, _) = self.spec.destiny_work();
        self.checkpointed_work = (self.checkpointed_work + banked).min(destiny_work);
    }

    /// Discards the newest `intervals` checkpoints (unreadable at restore
    /// time), rolling banked progress back and returning the productive
    /// work lost. Never rolls below zero; a zero checkpoint interval has
    /// no discrete checkpoints to lose, so nothing is discarded.
    pub fn discard_checkpoints(&mut self, intervals: u32) -> SimDuration {
        let interval = self.spec.checkpoint_interval;
        if interval.as_secs() == 0 || intervals == 0 {
            return SimDuration::ZERO;
        }
        let requested = SimDuration::from_secs(interval.as_secs() * intervals as u64);
        let lost = requested.min(self.checkpointed_work);
        self.checkpointed_work = self.checkpointed_work.saturating_sub(lost);
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(gpus: u32) -> JobSpec {
        JobSpec {
            id: JobId::new(1),
            project: Default::default(),
            run: None,
            gpus,
            submit_at: SimTime::ZERO,
            work: SimDuration::from_hours(10),
            time_limit: SimDuration::from_days(7),
            qos: QosClass::Normal,
            checkpoint_interval: SimDuration::from_hours(1),
            restart_overhead: SimDuration::from_mins(5),
            destiny: Destiny::Complete,
            requeue_on_user_failure: false,
        }
    }

    #[test]
    fn nodes_needed_rounds_up() {
        assert_eq!(spec(1).nodes_needed(), 1);
        assert_eq!(spec(8).nodes_needed(), 1);
        assert_eq!(spec(9).nodes_needed(), 2);
        assert_eq!(spec(1024).nodes_needed(), 128);
        assert!(spec(4).is_sub_node());
        assert!(!spec(8).is_sub_node());
    }

    #[test]
    fn destiny_work_for_user_failure() {
        let mut s = spec(8);
        s.destiny = Destiny::UserFailure {
            at_work_fraction: 0.5,
        };
        let (w, status) = s.destiny_work();
        assert_eq!(w, SimDuration::from_hours(5));
        assert_eq!(status, JobStatus::Failed);
    }

    #[test]
    fn priority_orders_by_qos_then_age() {
        let mut a = Job::new(spec(8));
        let mut b = Job::new(spec(8));
        b.spec.qos = QosClass::High;
        let now = SimTime::from_hours(1);
        assert!(b.priority(now) > a.priority(now));
        // Age matters within a tier.
        a.spec.submit_at = SimTime::ZERO;
        let mut c = Job::new(spec(8));
        c.spec.submit_at = SimTime::from_mins(30);
        assert!(a.priority(now) > c.priority(now));
    }

    #[test]
    fn bank_progress_floors_to_checkpoints() {
        let mut j = Job::new(spec(8));
        j.bank_progress(SimDuration::from_mins(150)); // 2.5h at 1h ckpt
        assert_eq!(j.checkpointed_work, SimDuration::from_hours(2));
        assert_eq!(j.remaining_work(), SimDuration::from_hours(8));
    }

    #[test]
    fn bank_progress_caps_at_work() {
        let mut j = Job::new(spec(8));
        j.bank_progress(SimDuration::from_hours(100));
        assert_eq!(j.checkpointed_work, SimDuration::from_hours(10));
        assert_eq!(j.remaining_work(), SimDuration::ZERO);
    }

    #[test]
    fn zero_checkpoint_interval_banks_everything() {
        let mut s = spec(8);
        s.checkpoint_interval = SimDuration::ZERO;
        let mut j = Job::new(s);
        j.bank_progress(SimDuration::from_mins(90));
        assert_eq!(j.checkpointed_work, SimDuration::from_mins(90));
    }

    #[test]
    fn discard_checkpoints_rolls_back_whole_intervals() {
        let mut j = Job::new(spec(8));
        j.bank_progress(SimDuration::from_hours(5));
        assert_eq!(j.discard_checkpoints(2), SimDuration::from_hours(2));
        assert_eq!(j.checkpointed_work, SimDuration::from_hours(3));
        assert_eq!(j.remaining_work(), SimDuration::from_hours(7));
    }

    #[test]
    fn discard_checkpoints_clamps_at_zero() {
        let mut j = Job::new(spec(8));
        j.bank_progress(SimDuration::from_hours(1));
        assert_eq!(j.discard_checkpoints(5), SimDuration::from_hours(1));
        assert_eq!(j.checkpointed_work, SimDuration::ZERO);
        assert_eq!(j.discard_checkpoints(1), SimDuration::ZERO);
    }

    #[test]
    fn discard_checkpoints_noop_for_continuous_checkpointing() {
        let mut s = spec(8);
        s.checkpoint_interval = SimDuration::ZERO;
        let mut j = Job::new(s);
        j.bank_progress(SimDuration::from_mins(90));
        assert_eq!(j.discard_checkpoints(3), SimDuration::ZERO);
        assert_eq!(j.checkpointed_work, SimDuration::from_mins(90));
    }

    #[test]
    fn new_job_is_pending() {
        let j = Job::new(spec(8));
        assert!(j.is_pending());
        assert!(!j.is_running());
        assert!(j.allocated_nodes().is_empty());
    }
}
