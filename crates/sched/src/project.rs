//! Projects and GPU quotas.
//!
//! "The cluster is configured such that groups of users have a maximum
//! quota of GPUs that is determined by a project-specific allocation"
//! (paper §II-A). Quotas bound how much of the cluster one project can
//! hold at once; the scheduler skips jobs whose project is at quota even
//! when free GPUs exist.
//!
//! Both tables are dense vectors indexed by the raw project id: the quota
//! check runs once per scanned queue entry in every scheduling cycle, and
//! project ids are small sequential integers, so a direct index beats a
//! hash per probe.

use serde::{Deserialize, Serialize};

/// Identifier of a project (research group allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProjectId(u32);

impl ProjectId {
    /// Creates a project id.
    pub const fn new(raw: u32) -> Self {
        ProjectId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl Default for ProjectId {
    /// The catch-all default project (id 0).
    fn default() -> Self {
        ProjectId(0)
    }
}

impl std::fmt::Display for ProjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proj{}", self.0)
    }
}

/// Per-project GPU quotas. Projects without an entry are unlimited.
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProjectQuotas {
    limits: Vec<Option<u64>>,
}

/// Renders the limits as an id-ordered map, matching the shape (and, for
/// the common unlimited case, the exact bytes) of the former
/// `HashMap<ProjectId, u64>` field — scenario fingerprints hash the
/// config's `Debug` rendering, so quota-free fingerprints stay stable.
impl std::fmt::Debug for ProjectQuotas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let limits: std::collections::BTreeMap<ProjectId, u64> = self
            .limits
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|l| (ProjectId::new(i as u32), l)))
            .collect();
        f.debug_struct("ProjectQuotas")
            .field("limits", &limits)
            .finish()
    }
}

impl ProjectQuotas {
    /// No quotas: every project may use the whole cluster.
    pub fn unlimited() -> Self {
        ProjectQuotas::default()
    }

    /// Sets a project's maximum concurrently-allocated GPUs.
    pub fn set(&mut self, project: ProjectId, max_gpus: u64) {
        let i = project.raw() as usize;
        if i >= self.limits.len() {
            self.limits.resize(i + 1, None);
        }
        self.limits[i] = Some(max_gpus);
    }

    /// Builder-style [`Self::set`].
    pub fn with(mut self, project: ProjectId, max_gpus: u64) -> Self {
        self.set(project, max_gpus);
        self
    }

    /// The quota for a project, if any.
    pub fn quota(&self, project: ProjectId) -> Option<u64> {
        self.limits.get(project.raw() as usize).copied().flatten()
    }

    /// Whether a project could start a job of `gpus` GPUs given its
    /// current `usage`.
    pub fn allows(&self, project: ProjectId, usage: u64, gpus: u64) -> bool {
        match self.quota(project) {
            None => true,
            Some(limit) => usage + gpus <= limit,
        }
    }
}

/// Running per-project GPU usage accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProjectUsage {
    busy: Vec<u64>,
}

impl ProjectUsage {
    /// Zero usage.
    pub fn new() -> Self {
        ProjectUsage::default()
    }

    /// GPUs currently held by a project.
    pub fn busy(&self, project: ProjectId) -> u64 {
        self.busy.get(project.raw() as usize).copied().unwrap_or(0)
    }

    /// Records an allocation.
    pub fn acquire(&mut self, project: ProjectId, gpus: u64) {
        let i = project.raw() as usize;
        if i >= self.busy.len() {
            self.busy.resize(i + 1, 0);
        }
        self.busy[i] += gpus;
    }

    /// Records a release.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on under-release (accounting bug).
    pub fn release(&mut self, project: ProjectId, gpus: u64) {
        let i = project.raw() as usize;
        if i >= self.busy.len() {
            self.busy.resize(i + 1, 0);
        }
        debug_assert!(
            self.busy[i] >= gpus,
            "project usage under-release for {project}"
        );
        self.busy[i] = self.busy[i].saturating_sub(gpus);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_allows_everything() {
        let q = ProjectQuotas::unlimited();
        assert!(q.allows(ProjectId::new(1), 1 << 40, 1 << 40));
        assert_eq!(q.quota(ProjectId::new(1)), None);
    }

    #[test]
    fn quota_binds() {
        let q = ProjectQuotas::unlimited().with(ProjectId::new(1), 100);
        assert!(q.allows(ProjectId::new(1), 60, 40));
        assert!(!q.allows(ProjectId::new(1), 61, 40));
        // Other projects unaffected.
        assert!(q.allows(ProjectId::new(2), 0, 1000));
    }

    #[test]
    fn usage_accounting() {
        let mut u = ProjectUsage::new();
        let p = ProjectId::new(3);
        u.acquire(p, 64);
        u.acquire(p, 8);
        assert_eq!(u.busy(p), 72);
        u.release(p, 64);
        assert_eq!(u.busy(p), 8);
        assert_eq!(u.busy(ProjectId::new(9)), 0);
    }

    #[test]
    fn unlimited_debug_matches_legacy_hashmap_rendering() {
        // The scenario fingerprint hashes Debug(config); the quota-free
        // rendering must stay exactly what the HashMap field produced.
        assert_eq!(
            format!("{:?}", ProjectQuotas::unlimited()),
            "ProjectQuotas { limits: {} }"
        );
        let q = ProjectQuotas::unlimited().with(ProjectId::new(2), 64);
        assert_eq!(
            format!("{q:?}"),
            "ProjectQuotas { limits: {ProjectId(2): 64} }"
        );
    }
}
