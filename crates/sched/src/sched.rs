//! The Slurm-like gang scheduler.
//!
//! Implements the cluster behaviour described in the paper's §II-A:
//! priority-ordered scheduling with project QoS tiers, gang allocation,
//! preemption only after a two-hour runtime floor, a seven-day maximum
//! lifetime, and automatic requeue (same job id) when infrastructure kills
//! a job.

use serde::{Deserialize, Serialize};

use rsc_cluster::bitset::HierBitSet;
use rsc_cluster::ids::{JobId, NodeId};
use rsc_cluster::topology::Topology;
use rsc_sim_core::time::{SimDuration, SimTime};

use crate::accounting::JobRecord;
use crate::alloc::ResourcePool;
use crate::arena::{ArenaStats, JobArena};
use crate::job::{Job, JobSpec, JobState, JobStatus, QosClass};
use crate::project::{ProjectId, ProjectQuotas, ProjectUsage};

/// How smaller jobs may run ahead of a stuck, higher-priority job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackfillPolicy {
    /// EASY-style without reservations: anything that fits starts. Large
    /// jobs rely on preemption rights to avoid starvation.
    Unreserved,
    /// Conservative: the highest-priority unplaceable whole-node job gets
    /// a reservation at the earliest time enough nodes free up (using
    /// running jobs' time limits); backfill may not run past it.
    Conservative,
}

/// Scheduler policy knobs (paper defaults in [`SchedConfig::rsc_default`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedConfig {
    /// Minimum runtime before a job may be preempted.
    pub preemption_floor: SimDuration,
    /// Maximum job lifetime (time limits are clamped to this).
    pub max_lifetime: SimDuration,
    /// Maximum automatic requeues per job id; beyond this the job ends
    /// with its interrupting status (bounds crash loops — the paper's
    /// worst case saw a job requeue 35 times).
    pub max_requeues: u32,
    /// Maximum queue entries examined per scheduling cycle. Bounds cycle
    /// cost when the backlog is deep; jobs beyond the cap simply wait for
    /// a later cycle.
    pub max_scan: usize,
    /// Backfill behaviour for jobs behind a stuck large job.
    pub backfill: BackfillPolicy,
}

impl SchedConfig {
    /// The paper's policy: 2-hour preemption floor, 7-day lifetime cap,
    /// requeues bounded at 40.
    pub fn rsc_default() -> Self {
        SchedConfig {
            preemption_floor: SimDuration::from_hours(2),
            max_lifetime: SimDuration::from_days(7),
            max_requeues: 40,
            max_scan: 600,
            backfill: BackfillPolicy::Unreserved,
        }
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::rsc_default()
    }
}

/// Why the infrastructure interrupted a running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterruptCause {
    /// The node stopped heartbeating (NODE_FAIL).
    NodeHang,
    /// A high-severity health check pulled the node (job requeued).
    HealthCheck,
    /// The hardware fault surfaced as an application crash (FAILED exit).
    AppCrash,
}

impl InterruptCause {
    /// The accounting status recorded for an attempt ended by this cause.
    pub fn status(self) -> JobStatus {
        match self {
            InterruptCause::NodeHang => JobStatus::NodeFail,
            InterruptCause::HealthCheck => JobStatus::Requeued,
            InterruptCause::AppCrash => JobStatus::Failed,
        }
    }
}

/// A job attempt the scheduler just started.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StartedAttempt {
    /// The job.
    pub job: JobId,
    /// Attempt number now running.
    pub attempt: u32,
    /// Allocated nodes.
    pub nodes: Vec<NodeId>,
    /// Start time.
    pub started_at: SimTime,
    /// Jobs preempted to make room.
    pub preempted: Vec<JobId>,
}

/// Queue ordering key: QoS tier first (High → Low), then age (oldest
/// first — requeued jobs keep their original submit time, matching
/// Slurm's age factor), then id for determinism.
type PendKey = (u8, u64, u64);

fn pend_key(spec: &JobSpec) -> PendKey {
    (qos_tier(spec.qos), spec.submit_at.as_secs(), spec.id.raw())
}

/// The queue-scan fields of a pending job, mirrored out of the `jobs` map
/// into the pending queue's values. A scheduling cycle's quick rejects run
/// over these plain `Copy` fields straight off the B-tree, so the (by far
/// most common) reject paths never hash into the jobs map; the full spec
/// is fetched only for the handful of entries per cycle that survive every
/// reject and reach the allocator. The mirrored fields are immutable on
/// `JobSpec`, so the mirror cannot go stale while the job is queued.
#[derive(Debug, Clone, Copy)]
struct PendEntry {
    id: JobId,
    gpus: u32,
    qos: QosClass,
    project: ProjectId,
    time_limit: SimDuration,
}

impl PendEntry {
    fn of(spec: &JobSpec) -> Self {
        PendEntry {
            id: spec.id,
            gpus: spec.gpus,
            qos: spec.qos,
            project: spec.project,
            time_limit: spec.time_limit,
        }
    }

    /// Mirrors [`JobSpec::nodes_needed`].
    fn nodes_needed(&self) -> u32 {
        self.gpus.div_ceil(rsc_cluster::node::GPUS_PER_NODE as u32)
    }

    /// Mirrors [`JobSpec::is_sub_node`].
    fn is_sub_node(&self) -> bool {
        self.gpus < rsc_cluster::node::GPUS_PER_NODE as u32
    }
}

/// QoS as a small ordinal: High = 0, Normal = 1, Low = 2 (lower number =
/// higher priority, matching the pending-queue key).
fn qos_tier(qos: QosClass) -> u8 {
    match qos {
        QosClass::High => 0u8,
        QosClass::Normal => 1,
        QosClass::Low => 2,
    }
}

/// Sentinel tier for a node with no running occupants.
const NO_OCCUPANTS: u8 = u8::MAX;

/// A peekable ascending stream of node indices, used to merge the
/// preemption-candidate sources in [`Scheduler::plan_preemption`].
type NodeIdxIter<'a> = std::iter::Peekable<Box<dyn Iterator<Item = u32> + 'a>>;

/// The scheduler: queue, running set, resource pool, and accounting log.
///
/// Besides the core state, the scheduler maintains three derived indexes
/// (DESIGN.md §9) so a cycle never rescans all nodes or all jobs:
///
/// * `whole_node_frees` — `(time-limit end estimate, job) → node count`
///   for every running whole-node job, giving the conservative-backfill
///   reservation estimate by in-order traversal;
/// * `node_best_tier` / `occupied_by_tier` — per-node best (numerically
///   lowest) occupant QoS tier, and the occupied nodes bucketed by that
///   tier, so preemption planning only visits nodes whose occupants are
///   *all* below the preemptor's tier;
/// * the pending queue's values are [`PendEntry`] mirrors of each spec's
///   scan fields, so a cycle's quick rejects run off the B-tree without
///   hashing into the jobs map;
/// * a reusable scan-order buffer for `cycle`.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedConfig,
    pool: ResourcePool,
    jobs: JobArena,
    pending: std::collections::BTreeMap<PendKey, PendEntry>,
    node_jobs: Vec<Vec<JobId>>,
    records: Vec<JobRecord>,
    quotas: ProjectQuotas,
    usage: ProjectUsage,
    whole_node_frees: std::collections::BTreeMap<(SimTime, JobId), usize>,
    node_best_tier: Vec<u8>,
    occupied_by_tier: [HierBitSet; 3],
    cycle_order: Vec<PendEntry>,
    naive_scans: bool,
}

impl Scheduler {
    /// Creates an empty scheduler over a topology.
    pub fn new(topology: Topology, config: SchedConfig) -> Self {
        let n = topology.num_nodes() as usize;
        Scheduler {
            config,
            pool: ResourcePool::new(topology),
            jobs: JobArena::new(),
            pending: std::collections::BTreeMap::new(),
            node_jobs: vec![Vec::new(); n],
            records: Vec::new(),
            quotas: ProjectQuotas::unlimited(),
            usage: ProjectUsage::new(),
            whole_node_frees: std::collections::BTreeMap::new(),
            node_best_tier: vec![NO_OCCUPANTS; n],
            occupied_by_tier: std::array::from_fn(|_| HierBitSet::new(n)),
            cycle_order: Vec::new(),
            naive_scans: false,
        }
    }

    /// Routes every allocation and planning query through the retained
    /// naive full-scan reference implementations instead of the indexes.
    /// Test-only: the byte-identity suite simulates whole scenarios both
    /// ways and asserts identical sealed telemetry.
    #[doc(hidden)]
    pub fn set_naive_scans(&mut self, on: bool) {
        self.naive_scans = on;
    }

    /// Disables the job arena's slot recycling (test-only twin mode; see
    /// [`JobArena::set_no_reuse`]).
    #[doc(hidden)]
    pub fn set_arena_no_reuse(&mut self, on: bool) {
        self.jobs.set_no_reuse(on);
    }

    /// Job-arena allocation statistics (slab capacity, live jobs, slots
    /// recycled), for the throughput harness.
    pub fn arena_stats(&self) -> ArenaStats {
        self.jobs.stats()
    }

    /// Installs project GPU quotas (paper §II-A's project allocations).
    pub fn set_quotas(&mut self, quotas: ProjectQuotas) {
        self.quotas = quotas;
    }

    /// GPUs a project currently holds.
    pub fn project_usage(&self, project: ProjectId) -> u64 {
        self.usage.busy(project)
    }

    /// The policy in force.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// The resource pool (read-only).
    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    /// Accounting records written so far.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Drains the accounting log, handing ownership to the caller.
    pub fn take_records(&mut self) -> Vec<JobRecord> {
        std::mem::take(&mut self.records)
    }

    /// A job's current state, if known.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(id)
    }

    /// Number of jobs waiting in the queue.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Number of jobs currently running.
    pub fn running_count(&self) -> usize {
        self.jobs.iter_jobs().filter(|j| j.is_running()).count()
    }

    /// GPUs currently allocated to running jobs.
    pub fn busy_gpus(&self) -> u64 {
        self.pool.total_gpus() - self.pool.total_free_gpus()
    }

    /// Marks a node schedulable/unschedulable (health-state sync).
    pub fn set_node_available(&mut self, node: NodeId, available: bool) {
        self.pool.set_available(node, available);
    }

    /// Submits a new job. Its time limit is clamped to the lifetime cap.
    ///
    /// # Panics
    ///
    /// Panics if the job id was already submitted, the job asks for zero
    /// GPUs, or it asks for more GPUs than the cluster has. (That every
    /// queued job wants at least one GPU is what lets a scheduling cycle
    /// stop scanning once the pool is exhausted.)
    pub fn submit(&mut self, mut spec: JobSpec) {
        assert!(!self.jobs.contains(spec.id), "duplicate job id {}", spec.id);
        assert!(spec.gpus >= 1, "job {} requests zero GPUs", spec.id);
        assert!(
            spec.gpus as u64 <= self.pool.total_gpus(),
            "job {} wants {} GPUs, cluster has {}",
            spec.id,
            spec.gpus,
            self.pool.total_gpus()
        );
        spec.time_limit = spec.time_limit.min(self.config.max_lifetime);
        self.pending.insert(pend_key(&spec), PendEntry::of(&spec));
        self.jobs.insert(Job::new(spec));
    }

    /// Runs one scheduling cycle at `now`: places as many pending jobs as
    /// possible in priority order (smaller jobs may backfill around stuck
    /// large ones), preempting lower tiers for high-QoS jobs when the
    /// preemption floor allows.
    pub fn cycle(&mut self, now: SimTime) -> Vec<StartedAttempt> {
        // The queue iterates in priority order by construction: QoS tier,
        // then age, then id. Cap the scan so deep backlogs stay cheap, and
        // reuse one buffer across cycles instead of allocating per event.
        //
        // The scan runs over the queue's mirrored [`PendEntry`] values:
        // every reject below is a pure `continue` with no state writes, so
        // checking the cheap `Copy` fields first (and the quota map last)
        // cannot change which jobs reach the allocator or what any later
        // iteration observes — it only avoids hashing into the jobs map
        // for entries that were never going to start this cycle.
        let mut order = std::mem::take(&mut self.cycle_order);
        order.clear();
        order.extend(self.pending.values().take(self.config.max_scan).copied());

        let mut started = Vec::new();
        let mut free_gpus = self.pool.total_free_gpus();
        // Monotone failure tracking: if a job of some size cannot be
        // placed, neither can a larger one of the same class, so the rest
        // of a deep backlog is skipped without touching the allocator.
        let mut min_failed_subnode: u32 = u32::MAX;
        let mut min_failed_nodes: u32 = u32::MAX;
        // Preemption planning is O(nodes); bound it per cycle.
        let mut preempt_budget: u32 = 8;
        // Conservative backfill: once a whole-node job cannot start, jobs
        // that would run past its reservation must wait.
        let mut shadow_time: Option<SimTime> = None;
        for entry in &order {
            let can_preempt = entry.qos > QosClass::Low && !entry.is_sub_node();
            // Quick rejects: total free capacity, then monotone size caps.
            if entry.gpus as u64 > free_gpus && !can_preempt {
                continue;
            }
            if entry.is_sub_node() {
                if entry.gpus >= min_failed_subnode {
                    continue;
                }
            } else if entry.nodes_needed() >= min_failed_nodes
                && (!can_preempt || preempt_budget == 0)
            {
                continue;
            }
            // A standing reservation blocks backfill that would outlive it.
            if let Some(t) = shadow_time {
                if now + entry.time_limit > t {
                    continue;
                }
            }
            // Project quota: a project at its allocation waits even when
            // free GPUs exist.
            if !self.quotas.allows(
                entry.project,
                self.usage.busy(entry.project),
                entry.gpus as u64,
            ) {
                continue;
            }
            // The entry survived every reject; fetch the full spec.
            let id = entry.id;
            let spec = self.jobs.get(id).expect("pending job").spec.clone();
            if let Some(nodes) = self.allocate(&spec) {
                free_gpus = free_gpus.saturating_sub(spec.gpus as u64);
                started.push(self.start_job(id, nodes, now, Vec::new()));
            } else if can_preempt && preempt_budget > 0 {
                preempt_budget -= 1;
                if let Some((nodes, victims)) = self.plan_preemption(&spec, now) {
                    let preemptor_restarting = matches!(
                        self.jobs.last_interrupt(id),
                        Some(JobStatus::NodeFail)
                            | Some(JobStatus::Requeued)
                            | Some(JobStatus::Failed)
                    );
                    for victim in &victims {
                        self.preempt(*victim, id, preemptor_restarting, now);
                    }
                    self.allocate(&spec)
                        .expect("preemption plan freed enough nodes");
                    started.push(self.start_job(id, nodes, now, victims));
                    free_gpus = self.pool.total_free_gpus();
                } else {
                    min_failed_nodes = min_failed_nodes.min(spec.nodes_needed());
                    if self.config.backfill == BackfillPolicy::Conservative && shadow_time.is_none()
                    {
                        shadow_time =
                            Some(self.earliest_whole_nodes_free(spec.nodes_needed() as usize, now));
                    }
                }
            } else if spec.is_sub_node() {
                min_failed_subnode = min_failed_subnode.min(spec.gpus);
            } else {
                min_failed_nodes = min_failed_nodes.min(spec.nodes_needed());
                if self.config.backfill == BackfillPolicy::Conservative && shadow_time.is_none() {
                    shadow_time =
                        Some(self.earliest_whole_nodes_free(spec.nodes_needed() as usize, now));
                }
            }
            // Exhaustion break: with zero free GPUs and no preemption
            // budget left, no remaining entry can start (every job wants
            // at least one GPU, so non-preemptors fail the capacity check
            // and preemptors can no longer act) — the rest of the scan
            // would only update this cycle's local bookkeeping.
            if free_gpus == 0 && preempt_budget == 0 {
                break;
            }
        }
        self.cycle_order = order;
        started
    }

    /// Allocation query, routed through the naive reference scans when
    /// [`Self::set_naive_scans`] is on.
    fn allocate(&self, spec: &JobSpec) -> Option<Vec<NodeId>> {
        if self.naive_scans {
            self.pool.try_allocate_naive(spec)
        } else {
            self.pool.try_allocate(spec)
        }
    }

    /// Earliest time at least `needed` whole nodes are free, assuming every
    /// running job runs to its time limit (an upper bound, hence a
    /// *conservative* reservation). Returns [`SimTime::MAX`] if running
    /// jobs can never free enough.
    ///
    /// O(answer) off the maintained `whole_node_frees` index: the free
    /// count is the pool's whole-node counter, and end estimates come
    /// pre-sorted. Only the crossing time is returned, so tie order among
    /// equal estimates cannot affect the result — exactly as in the naive
    /// sort, which also ordered by time alone.
    #[doc(hidden)]
    pub fn earliest_whole_nodes_free(&self, needed: usize, now: SimTime) -> SimTime {
        if self.naive_scans {
            return self.earliest_whole_nodes_free_naive(needed, now);
        }
        if self.pool.free_whole_nodes() >= needed {
            return now;
        }
        let mut acc = self.pool.free_whole_nodes();
        for (&(t, _), &n) in &self.whole_node_frees {
            acc += n;
            if acc >= needed {
                return t;
            }
        }
        SimTime::MAX
    }

    /// The naive-scan equivalent of [`Self::earliest_whole_nodes_free`]
    /// (reference for the property tests): recount free nodes, rebuild and
    /// sort the end-estimate list from the running set.
    #[doc(hidden)]
    pub fn earliest_whole_nodes_free_naive(&self, needed: usize, now: SimTime) -> SimTime {
        let mut free_now = 0usize;
        for idx in 0..self.node_jobs.len() {
            let node = NodeId::new(idx as u32);
            if self.pool.is_available(node)
                && self.pool.free_slots(node) as usize == rsc_cluster::node::GPUS_PER_NODE
            {
                free_now += 1;
            }
        }
        if free_now >= needed {
            return now;
        }
        // (end_estimate, whole nodes freed) per running multi-node job.
        let mut frees: Vec<(SimTime, usize)> = self
            .jobs
            .iter_jobs()
            .filter_map(|j| match &j.state {
                JobState::Running { nodes, started_at }
                    if nodes.len() > 1 || !j.spec.is_sub_node() =>
                {
                    Some((*started_at + j.spec.time_limit, nodes.len()))
                }
                _ => None,
            })
            .collect();
        frees.sort_by_key(|&(t, _)| t);
        let mut acc = free_now;
        for (t, n) in frees {
            acc += n;
            if acc >= needed {
                return t;
            }
        }
        SimTime::MAX
    }

    /// Finishes a running attempt with a user/destiny status. Returns
    /// `false` (no-op) if the job is not running that attempt — stale
    /// completion events after an interruption are expected and ignored.
    pub fn finish(&mut self, id: JobId, attempt: u32, status: JobStatus, now: SimTime) -> bool {
        let Some(job) = self.jobs.get(id) else {
            return false;
        };
        if job.attempt != attempt || !job.is_running() {
            return false;
        }
        let requeue = status == JobStatus::Failed && job.spec.requeue_on_user_failure;
        self.end_attempt(id, status, now, None, None, requeue);
        true
    }

    /// Crashes a running attempt because hardware failed underneath it
    /// (the fault surfaces as a FAILED exit rather than a node-level kill).
    /// Training-run members and crash-loop jobs requeue automatically —
    /// their submission wrappers retry — while one-shot jobs end here.
    /// Returns `false` for stale `(id, attempt)` pairs.
    pub fn crash_job(&mut self, id: JobId, attempt: u32, now: SimTime) -> bool {
        let Some(job) = self.jobs.get(id) else {
            return false;
        };
        if job.attempt != attempt || !job.is_running() {
            return false;
        }
        let requeue = job.spec.run.is_some() || job.spec.requeue_on_user_failure;
        if requeue {
            self.jobs.set_last_interrupt(id, JobStatus::Failed);
        }
        self.end_attempt(id, JobStatus::Failed, now, None, None, requeue);
        true
    }

    /// Kills every job running on `node` because of an infrastructure
    /// fault, writing per-attempt records and automatically requeueing the
    /// victims (same job id, next attempt). Returns the affected job ids.
    pub fn interrupt_node(
        &mut self,
        node: NodeId,
        cause: InterruptCause,
        now: SimTime,
    ) -> Vec<JobId> {
        // Take the occupant list instead of cloning it: every occupant is
        // about to be ended (emptying the list), and `end_attempt` handles
        // a missing node entry fine.
        let victims: Vec<JobId> = std::mem::take(&mut self.node_jobs[node.as_usize()]);
        for &id in &victims {
            let status = cause.status();
            self.jobs.set_last_interrupt(id, status);
            self.end_attempt(id, status, now, None, None, true);
        }
        victims
    }

    /// Jobs currently running on a node.
    pub fn jobs_on_node(&self, node: NodeId) -> &[JobId] {
        &self.node_jobs[node.as_usize()]
    }

    /// Rolls a job's banked progress back by up to `intervals` checkpoints
    /// (the newest checkpoints were unreadable at restore time). Returns
    /// the lost work and the job's GPU count when anything was actually
    /// discarded, `None` for unknown jobs or no-op rollbacks — so callers
    /// only log fallback events that cost something.
    pub fn rollback_checkpoints(
        &mut self,
        id: JobId,
        intervals: u32,
    ) -> Option<(SimDuration, u32)> {
        let job = self.jobs.get_mut(id)?;
        let lost = job.discard_checkpoints(intervals);
        (lost > SimDuration::ZERO).then_some((lost, job.spec.gpus))
    }

    // ---- internals ----

    fn start_job(
        &mut self,
        id: JobId,
        nodes: Vec<NodeId>,
        now: SimTime,
        preempted: Vec<JobId>,
    ) -> StartedAttempt {
        let job = self.jobs.get_mut(id).expect("job exists");
        debug_assert!(job.is_pending(), "start of non-pending job {id}");
        let key = pend_key(&job.spec);
        self.pool.commit(&nodes, &job.spec);
        self.usage.acquire(job.spec.project, job.spec.gpus as u64);
        job.queue_time += now.saturating_since(job.last_enqueued_at);
        job.state = JobState::Running {
            nodes: nodes.clone(),
            started_at: now,
        };
        let attempt = job.attempt;
        let tier = qos_tier(job.spec.qos);
        let whole_node = !job.spec.is_sub_node();
        let end_estimate = now + job.spec.time_limit;
        for &n in &nodes {
            self.node_jobs[n.as_usize()].push(id);
            self.occupant_added(n.as_usize(), tier);
        }
        if whole_node {
            self.whole_node_frees
                .insert((end_estimate, id), nodes.len());
        }
        self.pending.remove(&key);
        StartedAttempt {
            job: id,
            attempt,
            nodes,
            started_at: now,
            preempted,
        }
    }

    /// Index hook: a `tier`-QoS occupant landed on node `n`. Promotes the
    /// node's best-occupant tier and re-files it in the tier buckets.
    fn occupant_added(&mut self, n: usize, tier: u8) {
        let cur = self.node_best_tier[n];
        if tier < cur {
            if cur != NO_OCCUPANTS {
                self.occupied_by_tier[cur as usize].remove(n as u32);
            }
            self.occupied_by_tier[tier as usize].insert(n as u32);
            self.node_best_tier[n] = tier;
        }
    }

    /// Index hook: an occupant left node `n`; recompute the best tier from
    /// the (≤ 8) remaining occupants and re-file the node.
    fn occupant_removed(&mut self, n: usize) {
        let new = self.node_jobs[n]
            .iter()
            .map(|id| qos_tier(self.jobs.get(*id).expect("occupant is live").spec.qos))
            .min()
            .unwrap_or(NO_OCCUPANTS);
        let cur = self.node_best_tier[n];
        if new != cur {
            if cur != NO_OCCUPANTS {
                self.occupied_by_tier[cur as usize].remove(n as u32);
            }
            if new != NO_OCCUPANTS {
                self.occupied_by_tier[new as usize].insert(n as u32);
            }
            self.node_best_tier[n] = new;
        }
    }

    /// Finds whole nodes for a high-QoS job by reclaiming nodes whose every
    /// occupant is a lower-tier job past the preemption floor. Returns the
    /// planned node set and the victim jobs.
    ///
    /// Candidate nodes come from two indexed sources instead of a full
    /// scan: the pool's free-whole-node set, and the occupied-node tier
    /// buckets for tiers strictly below the preemptor's — a node is in
    /// bucket `t` when its *best* occupant has tier `t`, so buckets above
    /// the preemptor's tier contain exactly the nodes where every occupant
    /// outranks it, i.e. where nothing can be preempted. Both sources
    /// iterate in ascending node order and are disjoint (occupants hold
    /// slots), so merging them visits the same qualifying nodes in the
    /// same order as the naive ascending scan; only the time-dependent
    /// preemption-floor check remains per-node.
    #[doc(hidden)]
    pub fn plan_preemption(
        &self,
        spec: &JobSpec,
        now: SimTime,
    ) -> Option<(Vec<NodeId>, Vec<JobId>)> {
        if self.naive_scans {
            return self.plan_preemption_naive(spec, now);
        }
        let needed = spec.nodes_needed() as usize;
        let my_tier = qos_tier(spec.qos);
        let candidate_occupied: usize = ((my_tier + 1)..3)
            .map(|t| self.occupied_by_tier[t as usize].len())
            .sum();
        // Even ignoring the floor, there aren't enough reclaimable nodes.
        if self.pool.free_whole_nodes() + candidate_occupied < needed {
            return None;
        }
        let mut sources: Vec<(NodeIdxIter<'_>, bool)> = Vec::with_capacity(3);
        sources.push((
            (Box::new(self.pool.free_whole_iter()) as Box<dyn Iterator<Item = u32>>).peekable(),
            true,
        ));
        for t in (my_tier + 1)..3 {
            sources.push((
                (Box::new(self.occupied_by_tier[t as usize].iter())
                    as Box<dyn Iterator<Item = u32>>)
                    .peekable(),
                false,
            ));
        }
        let mut chosen: Vec<NodeId> = Vec::new();
        let mut victims: Vec<JobId> = Vec::new();
        while chosen.len() < needed {
            let mut min: Option<(usize, u32, bool)> = None;
            for (si, (it, is_free)) in sources.iter_mut().enumerate() {
                if let Some(&idx) = it.peek() {
                    if min.is_none_or(|(_, m, _)| idx < m) {
                        min = Some((si, idx, *is_free));
                    }
                }
            }
            let Some((si, idx, is_free)) = min else {
                break;
            };
            sources[si].0.next();
            if is_free {
                chosen.push(NodeId::new(idx));
                continue;
            }
            let node = NodeId::new(idx);
            if !self.pool.is_available(node) {
                continue;
            }
            let occupants = &self.node_jobs[idx as usize];
            let all_preemptible = !occupants.is_empty()
                && occupants.iter().all(|jid| {
                    let j = self.jobs.get(*jid).expect("occupant is live");
                    if j.spec.qos >= spec.qos {
                        return false;
                    }
                    match &j.state {
                        JobState::Running { started_at, .. } => {
                            now.saturating_since(*started_at) >= self.config.preemption_floor
                        }
                        _ => false,
                    }
                });
            if all_preemptible {
                chosen.push(node);
                for jid in occupants {
                    if !victims.contains(jid) {
                        victims.push(*jid);
                    }
                }
            }
        }
        if chosen.len() == needed {
            // Multi-node victims may straddle planned and unplanned nodes;
            // preempting them frees extra capacity, which is fine.
            Some((chosen, victims))
        } else {
            None
        }
    }

    /// The naive full-scan equivalent of [`Self::plan_preemption`]
    /// (reference for the property tests): walk every node in ascending
    /// order, taking free-whole and all-preemptible nodes until satisfied.
    #[doc(hidden)]
    pub fn plan_preemption_naive(
        &self,
        spec: &JobSpec,
        now: SimTime,
    ) -> Option<(Vec<NodeId>, Vec<JobId>)> {
        let needed = spec.nodes_needed() as usize;
        let mut chosen: Vec<NodeId> = Vec::new();
        let mut victims: Vec<JobId> = Vec::new();
        for idx in 0..self.node_jobs.len() {
            if chosen.len() == needed {
                break;
            }
            let node = NodeId::new(idx as u32);
            if !self.pool.is_available(node) {
                continue;
            }
            if self.pool.free_slots(node) as usize == rsc_cluster::node::GPUS_PER_NODE {
                chosen.push(node);
                continue;
            }
            let occupants = &self.node_jobs[idx];
            let all_preemptible = !occupants.is_empty()
                && occupants.iter().all(|jid| {
                    let j = self.jobs.get(*jid).expect("occupant is live");
                    if j.spec.qos >= spec.qos {
                        return false;
                    }
                    match &j.state {
                        JobState::Running { started_at, .. } => {
                            now.saturating_since(*started_at) >= self.config.preemption_floor
                        }
                        _ => false,
                    }
                });
            if all_preemptible {
                chosen.push(node);
                for jid in occupants {
                    if !victims.contains(jid) {
                        victims.push(*jid);
                    }
                }
            }
        }
        if chosen.len() == needed {
            // Multi-node victims may straddle planned and unplanned nodes;
            // preempting them frees extra capacity, which is fine.
            Some((chosen, victims))
        } else {
            None
        }
    }

    fn preempt(&mut self, victim: JobId, preemptor: JobId, instigated: bool, now: SimTime) {
        let instigator = if instigated { Some(preemptor) } else { None };
        self.end_attempt(
            victim,
            JobStatus::Preempted,
            now,
            Some(preemptor),
            instigator,
            true,
        );
    }

    /// Common terminal-transition path: releases resources, banks progress
    /// for interrupted attempts, writes the record, and either requeues the
    /// job (next attempt) or marks it done.
    fn end_attempt(
        &mut self,
        id: JobId,
        status: JobStatus,
        now: SimTime,
        preempted_by: Option<JobId>,
        instigator: Option<JobId>,
        requeue: bool,
    ) {
        let job = self.jobs.get_mut(id).expect("job exists");
        // Take the node list out of the state instead of cloning it; the
        // single owned copy threads through the index updates, the pool
        // release, and finally the accounting record.
        let (nodes, started_at) = match std::mem::replace(&mut job.state, JobState::Pending) {
            JobState::Running { nodes, started_at } => (nodes, started_at),
            other => {
                job.state = other;
                panic!("end_attempt on non-running job {id}")
            }
        };
        let ran = now.saturating_since(started_at);
        job.scheduled_time += ran;
        // Interrupted attempts keep only checkpointed progress.
        let interrupted = matches!(
            status,
            JobStatus::NodeFail | JobStatus::Requeued | JobStatus::Preempted
        ) || (status == JobStatus::Failed && requeue);
        if interrupted {
            let productive = ran.saturating_sub(job.spec.restart_overhead);
            job.bank_progress(productive);
        }
        let attempt = job.attempt;
        let enqueued_at = job.last_enqueued_at;
        let spec = job.spec.clone();
        let requeue = requeue && job.attempt < self.config.max_requeues;
        if requeue {
            job.attempt += 1;
            job.last_enqueued_at = now;
            self.pending.insert(pend_key(&spec), PendEntry::of(&spec));
        } else {
            // Terminal: evict the job so year-long simulations don't hold
            // millions of dead entries (the arena recycles the slot).
            // Stale events for evicted ids are ignored by the same lookup
            // that filters stale attempts.
            self.jobs.remove(id);
        }
        if !spec.is_sub_node() {
            self.whole_node_frees
                .remove(&(started_at + spec.time_limit, id));
        }
        self.usage.release(spec.project, spec.gpus as u64);
        self.pool.release(&nodes, &spec);
        for &n in &nodes {
            self.node_jobs[n.as_usize()].retain(|&j| j != id);
            self.occupant_removed(n.as_usize());
        }
        self.records.push(JobRecord {
            job: id,
            attempt,
            run: spec.run,
            gpus: spec.gpus,
            qos: spec.qos,
            nodes,
            enqueued_at,
            started_at: Some(started_at),
            ended_at: now,
            status,
            preempted_by,
            instigator,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::JobRunId;
    use rsc_cluster::spec::ClusterSpec;

    use crate::job::Destiny;

    fn sched(nodes: u32) -> Scheduler {
        Scheduler::new(
            Topology::new(&ClusterSpec::new("t", nodes)),
            SchedConfig::rsc_default(),
        )
    }

    fn spec(id: u64, gpus: u32, qos: QosClass) -> JobSpec {
        JobSpec {
            id: JobId::new(id),
            project: Default::default(),
            run: None,
            gpus,
            submit_at: SimTime::ZERO,
            work: SimDuration::from_hours(10),
            time_limit: SimDuration::from_days(7),
            qos,
            checkpoint_interval: SimDuration::from_hours(1),
            restart_overhead: SimDuration::from_mins(5),
            destiny: Destiny::Complete,
            requeue_on_user_failure: false,
        }
    }

    #[test]
    fn schedules_in_priority_order() {
        let mut s = sched(1);
        s.submit(spec(1, 8, QosClass::Low));
        s.submit(spec(2, 8, QosClass::High));
        let started = s.cycle(SimTime::from_mins(1));
        // Only one node: the High job wins it.
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, JobId::new(2));
        assert_eq!(s.pending_count(), 1);
        assert_eq!(s.running_count(), 1);
    }

    #[test]
    fn small_jobs_backfill() {
        let mut s = sched(2);
        s.submit(spec(1, 8, QosClass::Normal));
        let t0 = SimTime::from_mins(1);
        assert_eq!(s.cycle(t0).len(), 1);
        // A 16-GPU normal job cannot fit (1 node free), but a 1-GPU job can.
        s.submit(spec(2, 16, QosClass::Normal));
        s.submit(spec(3, 1, QosClass::Low));
        let started = s.cycle(SimTime::from_mins(2));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, JobId::new(3));
    }

    #[test]
    fn finish_completes_job_and_frees_resources() {
        let mut s = sched(1);
        s.submit(spec(1, 8, QosClass::Normal));
        let started = s.cycle(SimTime::from_mins(1));
        let ok = s.finish(
            JobId::new(1),
            started[0].attempt,
            JobStatus::Completed,
            SimTime::from_hours(5),
        );
        assert!(ok);
        assert_eq!(s.running_count(), 0);
        assert_eq!(s.busy_gpus(), 0);
        let rec = &s.records()[0];
        assert_eq!(rec.status, JobStatus::Completed);
        assert_eq!(
            rec.runtime(),
            SimDuration::from_hours(5) - SimDuration::from_mins(1)
        );
    }

    #[test]
    fn stale_finish_is_ignored() {
        let mut s = sched(1);
        s.submit(spec(1, 8, QosClass::Normal));
        s.cycle(SimTime::from_mins(1));
        s.interrupt_node(
            NodeId::new(0),
            InterruptCause::NodeHang,
            SimTime::from_hours(1),
        );
        // The old attempt's completion event arrives late.
        assert!(!s.finish(
            JobId::new(1),
            0,
            JobStatus::Completed,
            SimTime::from_hours(2)
        ));
    }

    #[test]
    fn node_interrupt_requeues_with_same_id() {
        let mut s = sched(2);
        s.submit(spec(1, 16, QosClass::Normal));
        s.cycle(SimTime::from_mins(1));
        let victims = s.interrupt_node(
            NodeId::new(1),
            InterruptCause::NodeHang,
            SimTime::from_hours(3),
        );
        assert_eq!(victims, vec![JobId::new(1)]);
        let job = s.job(JobId::new(1)).unwrap();
        assert!(job.is_pending());
        assert_eq!(job.attempt, 1);
        // Progress up to the last hourly checkpoint is banked:
        // ran 2h59m minus 5m overhead → 2 checkpoints.
        assert_eq!(job.checkpointed_work, SimDuration::from_hours(2));
        assert_eq!(s.records()[0].status, JobStatus::NodeFail);
        // Both nodes freed even though only one failed.
        assert_eq!(s.busy_gpus(), 0);
    }

    #[test]
    fn high_qos_preempts_after_floor() {
        let mut s = sched(2);
        s.submit(spec(1, 16, QosClass::Low));
        s.cycle(SimTime::from_mins(1));
        s.submit(spec(2, 16, QosClass::High));
        // Before the 2-hour floor: no preemption.
        assert!(s.cycle(SimTime::from_mins(30)).is_empty());
        // After the floor: the Low job is evicted.
        let started = s.cycle(SimTime::from_hours(3));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, JobId::new(2));
        assert_eq!(started[0].preempted, vec![JobId::new(1)]);
        let victim = s.job(JobId::new(1)).unwrap();
        assert!(victim.is_pending());
        let rec = s
            .records()
            .iter()
            .find(|r| r.status == JobStatus::Preempted)
            .unwrap();
        assert_eq!(rec.preempted_by, Some(JobId::new(2)));
        assert_eq!(rec.instigator, None); // fresh submission, not a requeue
    }

    #[test]
    fn requeue_after_node_fail_tags_instigator() {
        let mut s = sched(2);
        // High job running on both nodes; fails; on requeue it preempts the
        // low job that grabbed capacity in between.
        s.submit(spec(1, 16, QosClass::High));
        s.cycle(SimTime::from_mins(1));
        s.interrupt_node(
            NodeId::new(0),
            InterruptCause::NodeHang,
            SimTime::from_hours(1),
        );
        // Low job fills the vacuum.
        s.submit(spec(2, 16, QosClass::Low));
        // Make node 0 unavailable so the high job cannot start; low can't
        // either (needs both). Keep both available: priority gives the slot
        // to the High job directly. Instead, test instigator by letting low
        // start first at a time when high is not yet requeued... simplest:
        // start low, wait past floor, then high requeue preempts.
        let mut s = sched(2);
        s.submit(spec(2, 16, QosClass::Low));
        s.cycle(SimTime::from_mins(1));
        s.submit(spec(1, 16, QosClass::High));
        let started = s.cycle(SimTime::from_hours(3));
        assert_eq!(started[0].job, JobId::new(1));
        // Now the high job fails via node hang and requeues.
        s.interrupt_node(
            NodeId::new(0),
            InterruptCause::NodeHang,
            SimTime::from_hours(4),
        );
        // The low job gets back in (it is the only pending job that fits
        // first by priority? both pending: high has priority, takes nodes).
        let restarted = s.cycle(SimTime::from_hours(4));
        assert_eq!(restarted[0].job, JobId::new(1));
        // Low runs again after high's restart: give low the cluster, then
        // fail high... this path is exercised more naturally in sim tests;
        // here assert the restart carried attempt 1.
        assert_eq!(restarted[0].attempt, 1);
    }

    #[test]
    fn requeue_on_user_failure_crash_loops() {
        let mut s = sched(1);
        let mut sp = spec(1, 8, QosClass::Normal);
        sp.requeue_on_user_failure = true;
        s.submit(sp);
        s.cycle(SimTime::from_mins(1));
        assert!(s.finish(JobId::new(1), 0, JobStatus::Failed, SimTime::from_hours(1)));
        let job = s.job(JobId::new(1)).unwrap();
        assert!(job.is_pending());
        assert_eq!(job.attempt, 1);
    }

    #[test]
    fn time_limit_clamped_to_lifetime() {
        let mut s = sched(1);
        let mut sp = spec(1, 8, QosClass::Normal);
        sp.time_limit = SimDuration::from_days(30);
        s.submit(sp);
        assert_eq!(
            s.job(JobId::new(1)).unwrap().spec.time_limit,
            SimDuration::from_days(7)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn duplicate_submit_panics() {
        let mut s = sched(1);
        s.submit(spec(1, 8, QosClass::Normal));
        s.submit(spec(1, 8, QosClass::Normal));
    }

    #[test]
    fn run_id_carried_to_records() {
        let mut s = sched(1);
        let mut sp = spec(1, 8, QosClass::High);
        sp.run = Some(JobRunId::new(77));
        s.submit(sp);
        s.cycle(SimTime::from_mins(1));
        s.finish(
            JobId::new(1),
            0,
            JobStatus::Completed,
            SimTime::from_hours(2),
        );
        assert_eq!(s.records()[0].run, Some(JobRunId::new(77)));
    }

    #[test]
    fn sub_node_jobs_coexist_and_interrupt_together() {
        let mut s = sched(1);
        s.submit(spec(1, 4, QosClass::Normal));
        s.submit(spec(2, 4, QosClass::Normal));
        let started = s.cycle(SimTime::from_mins(1));
        assert_eq!(started.len(), 2);
        assert_eq!(s.busy_gpus(), 8);
        let victims = s.interrupt_node(
            NodeId::new(0),
            InterruptCause::HealthCheck,
            SimTime::from_hours(1),
        );
        assert_eq!(victims.len(), 2);
        assert!(s.records().iter().all(|r| r.status == JobStatus::Requeued));
    }
}

#[cfg(test)]
mod quota_tests {
    use super::*;
    use rsc_cluster::spec::ClusterSpec;

    use crate::job::Destiny;
    use crate::project::{ProjectId, ProjectQuotas};

    fn spec(id: u64, gpus: u32, project: u32) -> JobSpec {
        JobSpec {
            id: JobId::new(id),
            project: ProjectId::new(project),
            run: None,
            gpus,
            submit_at: SimTime::ZERO,
            work: SimDuration::from_hours(10),
            time_limit: SimDuration::from_days(7),
            qos: QosClass::Normal,
            checkpoint_interval: SimDuration::from_hours(1),
            restart_overhead: SimDuration::from_mins(5),
            destiny: Destiny::Complete,
            requeue_on_user_failure: false,
        }
    }

    fn sched(nodes: u32) -> Scheduler {
        Scheduler::new(
            Topology::new(&ClusterSpec::new("q", nodes)),
            SchedConfig::rsc_default(),
        )
    }

    #[test]
    fn project_at_quota_waits_despite_free_gpus() {
        let mut s = sched(4); // 32 GPUs
        s.set_quotas(ProjectQuotas::unlimited().with(ProjectId::new(1), 8));
        s.submit(spec(1, 8, 1));
        s.submit(spec(2, 8, 1)); // would exceed project 1's quota
        s.submit(spec(3, 8, 2)); // different project: fine
        let started = s.cycle(SimTime::from_mins(1));
        let ids: Vec<u64> = started.iter().map(|a| a.job.raw()).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(s.project_usage(ProjectId::new(1)), 8);
        assert_eq!(s.project_usage(ProjectId::new(2)), 8);
        // Free GPUs remain, but project 1 is capped.
        assert!(s.pool().total_free_gpus() >= 16);
    }

    #[test]
    fn quota_frees_up_when_jobs_end() {
        let mut s = sched(2);
        s.set_quotas(ProjectQuotas::unlimited().with(ProjectId::new(1), 8));
        s.submit(spec(1, 8, 1));
        s.submit(spec(2, 8, 1));
        let first = s.cycle(SimTime::from_mins(1));
        assert_eq!(first.len(), 1);
        s.finish(
            JobId::new(1),
            0,
            JobStatus::Completed,
            SimTime::from_hours(1),
        );
        assert_eq!(s.project_usage(ProjectId::new(1)), 0);
        let second = s.cycle(SimTime::from_hours(1));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].job, JobId::new(2));
    }

    #[test]
    fn usage_survives_requeue_cycles() {
        let mut s = sched(2);
        s.submit(spec(1, 16, 5));
        s.cycle(SimTime::from_mins(1));
        assert_eq!(s.project_usage(ProjectId::new(5)), 16);
        s.interrupt_node(
            NodeId::new(0),
            InterruptCause::NodeHang,
            SimTime::from_hours(1),
        );
        assert_eq!(s.project_usage(ProjectId::new(5)), 0);
        let restarted = s.cycle(SimTime::from_hours(1));
        assert_eq!(restarted.len(), 1);
        assert_eq!(s.project_usage(ProjectId::new(5)), 16);
    }
}

#[cfg(test)]
mod backfill_tests {
    use super::*;
    use rsc_cluster::spec::ClusterSpec;

    use crate::job::Destiny;

    fn spec(id: u64, gpus: u32, submit_mins: u64, limit_hours: u64) -> JobSpec {
        JobSpec {
            id: JobId::new(id),
            project: Default::default(),
            run: None,
            gpus,
            submit_at: SimTime::from_mins(submit_mins),
            work: SimDuration::from_hours(limit_hours.saturating_sub(1).max(1)),
            time_limit: SimDuration::from_hours(limit_hours),
            qos: QosClass::Normal,
            checkpoint_interval: SimDuration::from_hours(1),
            restart_overhead: SimDuration::from_mins(5),
            destiny: Destiny::Complete,
            requeue_on_user_failure: false,
        }
    }

    fn sched(nodes: u32, backfill: BackfillPolicy) -> Scheduler {
        let config = SchedConfig {
            backfill,
            ..SchedConfig::rsc_default()
        };
        Scheduler::new(Topology::new(&ClusterSpec::new("b", nodes)), config)
    }

    /// Three nodes: a 2-node job runs until hour 10, leaving one node
    /// free. A 3-node job is stuck pending; a long 1-node backfill
    /// candidate would push the big job's start past its reservation.
    fn contended(backfill: BackfillPolicy) -> (Scheduler, Vec<StartedAttempt>) {
        let mut s = sched(3, backfill);
        s.submit(spec(1, 16, 0, 10)); // two nodes until t+10h
        let first = s.cycle(SimTime::from_mins(1));
        assert_eq!(first.len(), 1);
        s.submit(spec(2, 24, 1, 10)); // stuck: wants all three nodes
        s.submit(spec(3, 8, 2, 48)); // long backfill candidate (1 node)
        s.submit(spec(4, 8, 3, 2)); // short backfill candidate
        let started = s.cycle(SimTime::from_mins(5));
        (s, started)
    }

    #[test]
    fn unreserved_backfill_starts_long_jobs() {
        let (_, started) = contended(BackfillPolicy::Unreserved);
        // Without reservations the long candidate takes the free node.
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, JobId::new(3));
    }

    #[test]
    fn conservative_backfill_respects_reservation() {
        let (_, started) = contended(BackfillPolicy::Conservative);
        // Job 2's reservation is ~t+10h; the 48-hour candidate would run
        // past it and must wait, but the 2-hour one fits underneath.
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].job, JobId::new(4));
    }

    #[test]
    fn reservation_estimate_uses_time_limits() {
        let mut s = sched(3, BackfillPolicy::Conservative);
        s.submit(spec(1, 16, 0, 10));
        s.cycle(SimTime::from_mins(1));
        // One node is free now; the other two free at t+10h.
        assert_eq!(
            s.earliest_whole_nodes_free(1, SimTime::from_mins(1)),
            SimTime::from_mins(1)
        );
        let t = s.earliest_whole_nodes_free(3, SimTime::from_mins(1));
        assert_eq!(t, SimTime::from_mins(1) + SimDuration::from_hours(10));
        // More nodes than running jobs can ever free.
        assert_eq!(
            s.earliest_whole_nodes_free(5, SimTime::from_mins(1)),
            SimTime::MAX
        );
    }
}
