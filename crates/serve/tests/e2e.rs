//! End-to-end service tests over real sockets: the full client flow, the
//! byte-identity determinism contract under concurrency, and the SSE
//! stream pinned against the sealed alert log.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rsc_monitor::config::MonitorConfig;
use rsc_monitor::monitor::ReliabilityMonitor;
use rsc_monitor::replay::replay_view;
use rsc_serve::cache::SealedAnalysis;
use rsc_serve::client::{self, SseClient, SseFrame};
use rsc_serve::core::ServiceConfig;
use rsc_serve::server::Server;
use rsc_sim::config::SimConfig;
use rsc_sim::runner::ScenarioSpec;

fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rsc-serve-e2e-{tag}-{}", std::process::id()))
}

fn start_server(cache_dir: &PathBuf) -> Server {
    Server::bind("127.0.0.1:0", ServiceConfig::with_cache_dir(cache_dir), 8)
        .expect("bind ephemeral port")
}

/// The analysis bytes the service *must* serve for a spec, computed
/// entirely in-process: deterministic simulation, replay through the
/// service's monitor config, render once.
fn expected_analysis(spec: &ScenarioSpec, monitor_config: &MonitorConfig) -> String {
    let view = spec.simulate();
    let mut monitor = ReliabilityMonitor::new(monitor_config.clone());
    replay_view(&view, &mut monitor);
    SealedAnalysis::new(spec.fingerprint(), monitor.report())
        .json
        .to_string()
}

/// Picks a small scenario whose horizon raises at least one alert, so the
/// SSE-vs-CSV comparison below is not vacuously empty.
fn alerting_spec(monitor_config: &MonitorConfig) -> (ScenarioSpec, usize) {
    for seed in 1..64 {
        let spec = ScenarioSpec::new(SimConfig::small_test_cluster(), seed, 6);
        let view = spec.simulate();
        let mut monitor = ReliabilityMonitor::new(monitor_config.clone());
        replay_view(&view, &mut monitor);
        let alerts = monitor.report().alerts.len();
        if alerts > 0 {
            return (spec, alerts);
        }
    }
    panic!("no small_test seed in 1..64 raises an alert over 6 days");
}

fn wait_for_sealed(addr: SocketAddr, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client::get(addr, &format!("/api/v1/jobs/{job}")).expect("poll status");
        assert_eq!(status.status, 200, "poll answered: {}", status.text());
        let body = status.text();
        if body.contains("\"state\":\"sealed\"") {
            return;
        }
        assert!(!body.contains("\"state\":\"failed\""), "job failed: {body}");
        assert!(Instant::now() < deadline, "job never sealed: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn drain_job_frames(stream: &mut SseClient) -> Vec<SseFrame> {
    let mut frames = Vec::new();
    loop {
        match stream.next_frame().expect("read SSE frame") {
            Some(frame) => {
                let done = frame.event == "finished";
                frames.push(frame);
                if done {
                    return frames;
                }
            }
            None => panic!("stream closed before the finished frame"),
        }
    }
}

#[test]
fn submit_poll_fetch_matches_in_process_analysis_bitwise() {
    let dir = temp_cache("flow");
    let _ = std::fs::remove_dir_all(&dir);
    let server = start_server(&dir);
    let addr = server.local_addr();
    let monitor_config = server.state().config().monitor.clone();

    let accepted = client::post(addr, "/api/v1/sweeps?preset=small_test&seeds=5&days=3")
        .expect("submit sweep");
    assert_eq!(accepted.status, 202, "submit answered: {}", accepted.text());
    wait_for_sealed(addr, 0);

    let served = client::get(addr, "/api/v1/jobs/0/analysis").expect("fetch analysis");
    assert_eq!(served.status, 200);
    let spec = ScenarioSpec::new(SimConfig::small_test_cluster(), 5, 3);
    // The served bytes equal the in-process computation, bit for bit.
    assert_eq!(served.text(), expected_analysis(&spec, &monitor_config));

    // The fingerprint route serves the same bytes.
    let by_fp = client::get(
        addr,
        &format!("/api/v1/analysis/{:016x}", spec.fingerprint()),
    )
    .expect("fetch by fingerprint");
    assert_eq!(by_fp.body, served.body);

    // A second identical submission is a cache hit (replayed, never
    // re-simulated) and still seals to the same bytes.
    let again =
        client::post(addr, "/api/v1/sweeps?preset=small_test&seeds=5&days=3").expect("resubmit");
    assert_eq!(again.status, 202);
    wait_for_sealed(addr, 1);
    let health = client::get(addr, "/healthz").expect("healthz").text();
    assert!(
        health.contains("\"artifact_cache\":{\"hits\":1,\"misses\":1,\"corrupt\":0}"),
        "resubmission was not a cache hit: {health}"
    );
    let replayed = client::get(addr, "/api/v1/jobs/1/analysis").expect("fetch replayed");
    assert_eq!(replayed.body, served.body);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_receive_byte_identical_analyses() {
    let dir = temp_cache("concurrent");
    let _ = std::fs::remove_dir_all(&dir);
    let server = start_server(&dir);
    let addr = server.local_addr();
    let monitor_config = server.state().config().monitor.clone();

    let accepted = client::post(addr, "/api/v1/sweeps?preset=small_test&seeds=9&days=3")
        .expect("submit sweep");
    assert_eq!(accepted.status, 202);
    wait_for_sealed(addr, 0);

    let spec = ScenarioSpec::new(SimConfig::small_test_cluster(), 9, 3);
    let expected = Arc::new(expected_analysis(&spec, &monitor_config));
    let target = format!("/api/v1/analysis/{:016x}", spec.fingerprint());

    // N concurrent clients hammer both analysis routes; every response
    // must be the same bytes, equal to the in-process computation.
    std::thread::scope(|scope| {
        for i in 0..12 {
            let expected = Arc::clone(&expected);
            let target = if i % 2 == 0 {
                target.clone()
            } else {
                "/api/v1/jobs/0/analysis".to_string()
            };
            scope.spawn(move || {
                for _ in 0..5 {
                    let resp = client::get(addr, &target).expect("concurrent fetch");
                    assert_eq!(resp.status, 200);
                    assert_eq!(resp.text(), *expected);
                }
            });
        }
    });

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sse_stream_matches_sealed_alert_log_live_and_replayed() {
    let dir = temp_cache("sse");
    let _ = std::fs::remove_dir_all(&dir);
    let server = start_server(&dir);
    let addr = server.local_addr();
    let monitor_config = server.state().config().monitor.clone();
    let (spec, expected_alerts) = alerting_spec(&monitor_config);

    // Subscribe before submitting so no frame can be missed.
    let mut live_stream = SseClient::connect(addr, "/api/v1/events?job=0").expect("subscribe");
    let submit = format!(
        "/api/v1/sweeps?preset=small_test&seeds={}&days={}",
        spec.seed, spec.days
    );
    assert_eq!(client::post(addr, &submit).expect("submit").status, 202);
    let live = drain_job_frames(&mut live_stream);
    // The finished frame precedes artifact writes; sealed state follows
    // them.
    wait_for_sealed(addr, 0);

    // Raise frames enumerate the sealed alert log in order: same count
    // and field order as the alerts.csv rows written next to the
    // artifact.
    let raises: Vec<&SseFrame> = live.iter().filter(|f| f.event == "alert").collect();
    assert_eq!(
        raises.len(),
        expected_alerts,
        "scenario raised a different alert count"
    );
    let csv_path = dir.join(format!("{:016x}.alerts.csv", spec.fingerprint()));
    let csv = std::fs::read_to_string(&csv_path).expect("alerts.csv written");
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rows.len(), raises.len(), "csv rows vs raise frames");
    for (seq, (frame, row)) in raises.iter().zip(&rows).enumerate() {
        assert!(
            frame.data.starts_with(&format!("{{\"seq\":{seq},")),
            "raise frames out of log order: {}",
            frame.data
        );
        // The csv row leads with kind,node — the frame's alert carries
        // the same identity.
        let mut cols = row.split(',');
        let kind = cols.next().expect("kind column");
        let node = cols.next().expect("node column");
        assert!(frame.data.contains(&format!("\"kind\":\"{kind}\"")));
        let node_json = if node.is_empty() {
            "\"node\":null".to_string()
        } else {
            format!("\"node\":{node}")
        };
        assert!(
            frame.data.contains(&node_json),
            "frame {} vs csv node {node:?}",
            frame.data
        );
    }

    // The same scenario resubmitted hits the artifact cache and replays;
    // the frame sequence must be identical to the live one, event for
    // event (only hub sequence ids differ).
    let mut replay_stream = SseClient::connect(addr, "/api/v1/events?job=1").expect("resubscribe");
    assert_eq!(client::post(addr, &submit).expect("resubmit").status, 202);
    let replayed = drain_job_frames(&mut replay_stream);
    let strip = |frames: &[SseFrame]| -> Vec<(String, String)> {
        frames
            .iter()
            .map(|f| (f.event.clone(), f.data.clone()))
            .collect()
    };
    assert_eq!(strip(&live), strip(&replayed));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_endpoint_stops_the_service() {
    let dir = temp_cache("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    let server = start_server(&dir);
    let addr = server.local_addr();
    let down = client::post(addr, "/api/v1/shutdown").expect("shutdown request");
    assert_eq!(down.status, 200);
    // Every thread exits; join would hang forever otherwise.
    server.join();
    // New submissions are refused (connection fails or 503 depending on
    // how far teardown got).
    if let Ok(resp) = client::post(addr, "/api/v1/sweeps?seeds=1") {
        assert_eq!(resp.status, 503);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
