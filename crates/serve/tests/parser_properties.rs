//! Property tests for the HTTP parser: arbitrary byte soup, truncations
//! of valid requests, and oversized inputs never panic and always map to
//! a typed 4xx rejection.

use proptest::prelude::*;

use rsc_serve::http::{parse_request, Request, RequestError, MAX_BODY};

fn parse(bytes: &[u8]) -> Result<Option<Request>, RequestError> {
    parse_request(&mut &bytes[..])
}

/// A well-formed request whose every strict prefix exercises a distinct
/// truncation point (request line, headers, body).
const VALID: &[u8] = b"POST /api/v1/sweeps?preset=small_test&seeds=1,2&days=3 HTTP/1.1\r\n\
    Host: rsc-serve\r\nContent-Length: 5\r\n\r\nhello";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255, 0..2048),
    ) {
        // Parsing must terminate without panicking; any rejection is a
        // definite client error, never a 5xx or an unwind.
        if let Err(e) = parse(&bytes) {
            prop_assert!((400..500).contains(&e.status()), "{e:?} -> {}", e.status());
        }
    }

    #[test]
    fn prop_ascii_soup_never_panics(
        bytes in proptest::collection::vec(9u8..127, 0..1024),
    ) {
        // Printable-ish soup reaches deeper parser states (plausible
        // request lines, header-like fragments) than raw bytes do.
        if let Err(e) = parse(&bytes) {
            prop_assert!((400..500).contains(&e.status()));
        }
    }

    #[test]
    fn prop_truncations_are_complete_or_typed(cut in 0usize..200) {
        let cut = cut.min(VALID.len());
        match parse(&VALID[..cut]) {
            // Clean EOF before any byte.
            Ok(None) => prop_assert_eq!(cut, 0),
            // Only the full request parses.
            Ok(Some(req)) => {
                prop_assert_eq!(cut, VALID.len());
                prop_assert_eq!(req.body, b"hello".to_vec());
            }
            Err(e) => prop_assert!((400..500).contains(&e.status())),
        }
    }

    #[test]
    fn prop_valid_targets_roundtrip(
        segments in proptest::collection::vec("[a-z0-9]{1,12}", 1..5),
        key in "[a-z]{1,8}",
        value in "[a-z0-9]{0,12}",
    ) {
        let path = format!("/{}", segments.join("/"));
        let raw = format!("GET {path}?{key}={value} HTTP/1.1\r\n\r\n");
        let req = parse(raw.as_bytes()).expect("valid request").expect("non-empty");
        prop_assert_eq!(req.path, path);
        prop_assert_eq!(req.query(&key), Some(value.as_str()));
    }

    #[test]
    fn prop_oversized_declared_bodies_rejected_without_reading(
        extra in 1usize..4096,
    ) {
        // The parser must reject from the header alone — the body bytes
        // are never allocated or read (there are none here).
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + extra);
        prop_assert_eq!(parse(raw.as_bytes()).unwrap_err(), RequestError::BodyTooLarge);
    }
}
