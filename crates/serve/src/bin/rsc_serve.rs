//! The `rsc-serve` binary: a concurrent scenario service over the
//! telemetry artifact cache.
//!
//! ```text
//! rsc-serve [--addr HOST:PORT] [--job-workers N] [--http-workers N]
//!           [--queue N] [--lru N] [--cache-dir PATH] [--smoke]
//! ```
//!
//! `--smoke` runs the full client flow against an ephemeral port —
//! subscribe, submit, poll, fetch twice, compare bytes, shut down — and
//! exits non-zero on any failure; CI uses it as the service's end-to-end
//! gate.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use rsc_serve::client;
use rsc_serve::core::ServiceConfig;
use rsc_serve::server::Server;
use rsc_sim::runner::default_cache_dir;

struct Args {
    addr: String,
    job_workers: usize,
    http_workers: usize,
    queue: usize,
    lru: usize,
    cache_dir: PathBuf,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        job_workers: 2,
        http_workers: 8,
        queue: 64,
        lru: 32,
        cache_dir: default_cache_dir(),
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--job-workers" => {
                args.job_workers = value("--job-workers")?
                    .parse()
                    .map_err(|_| "--job-workers must be an integer".to_string())?
            }
            "--http-workers" => {
                args.http_workers = value("--http-workers")?
                    .parse()
                    .map_err(|_| "--http-workers must be an integer".to_string())?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue must be an integer".to_string())?
            }
            "--lru" => {
                args.lru = value("--lru")?
                    .parse()
                    .map_err(|_| "--lru must be an integer".to_string())?
            }
            "--cache-dir" => args.cache_dir = PathBuf::from(value("--cache-dir")?),
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "rsc-serve [--addr HOST:PORT] [--job-workers N] [--http-workers N]\n\
                     \x20         [--queue N] [--lru N] [--cache-dir PATH] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn config_from(args: &Args) -> ServiceConfig {
    let mut config = ServiceConfig::with_cache_dir(&args.cache_dir);
    config.job_workers = args.job_workers;
    config.queue_capacity = args.queue;
    config.lru_capacity = args.lru;
    config
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("rsc-serve: {err}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return match smoke(&args) {
            Ok(()) => {
                println!("rsc-serve smoke: PASS");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("rsc-serve smoke: FAIL: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let server = match Server::bind(&args.addr, config_from(&args), args.http_workers) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("rsc-serve: bind {}: {err}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "rsc-serve listening on {} (cache: {})",
        server.local_addr(),
        args.cache_dir.display()
    );
    println!("  POST /api/v1/sweeps?preset=small_test&seeds=1,2&days=3 to submit");
    println!("  POST /api/v1/shutdown to stop");
    server.join();
    ExitCode::SUCCESS
}

/// The self-contained end-to-end flow: everything a real client does, on
/// an ephemeral port with a private cache dir, finishing with a clean
/// shutdown.
fn smoke(args: &Args) -> Result<(), String> {
    let cache_dir = std::env::temp_dir().join(format!("rsc-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut config = config_from(args);
    config.cache_dir.clone_from(&cache_dir);

    let server =
        Server::bind("127.0.0.1:0", config, args.http_workers).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let result = smoke_flow(addr);
    // The flow ends with POST /api/v1/shutdown; join must return.
    server.join();
    let _ = std::fs::remove_dir_all(&cache_dir);
    result
}

fn smoke_flow(addr: SocketAddr) -> Result<(), String> {
    let mut stream = client::SseClient::connect(addr, "/api/v1/events?job=0")
        .map_err(|e| format!("subscribe: {e}"))?;

    let accepted = client::post(addr, "/api/v1/sweeps?preset=small_test&seeds=11&days=2")
        .map_err(|e| format!("submit: {e}"))?;
    if accepted.status != 202 {
        return Err(format!(
            "submit answered {}: {}",
            accepted.status,
            accepted.text()
        ));
    }
    println!("submitted: {}", accepted.text());

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client::get(addr, "/api/v1/jobs/0").map_err(|e| format!("poll: {e}"))?;
        let body = status.text();
        if body.contains("\"state\":\"sealed\"") {
            break;
        }
        if body.contains("\"state\":\"failed\"") {
            return Err(format!("job failed: {body}"));
        }
        if Instant::now() > deadline {
            return Err("job never sealed".to_string());
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let first = client::get(addr, "/api/v1/jobs/0/analysis").map_err(|e| format!("fetch: {e}"))?;
    let second =
        client::get(addr, "/api/v1/jobs/0/analysis").map_err(|e| format!("refetch: {e}"))?;
    if first.status != 200 || first.body != second.body {
        return Err("analysis responses were not byte-identical".to_string());
    }
    println!("analysis: {} identical bytes twice", first.body.len());

    // The stream must carry the job to its finished marker.
    loop {
        match stream.next_frame().map_err(|e| format!("stream: {e}"))? {
            Some(frame) if frame.event == "finished" => break,
            Some(_) => continue,
            None => return Err("stream closed before finished frame".to_string()),
        }
    }

    let health = client::get(addr, "/healthz").map_err(|e| format!("healthz: {e}"))?;
    if health.status != 200 || !health.text().contains("\"status\":\"ok\"") {
        return Err(format!("healthz answered {}", health.status));
    }
    println!("healthz: {}", health.text());

    let down = client::post(addr, "/api/v1/shutdown").map_err(|e| format!("shutdown: {e}"))?;
    if down.status != 200 {
        return Err(format!("shutdown answered {}", down.status));
    }
    Ok(())
}
