//! Tiny JSON-building helpers shared by the service's serializers.
//!
//! The workspace carries no JSON dependency; like
//! `rsc_monitor::report::MonitorReport::to_json`, every body the service
//! emits is assembled from deterministic `format!` pieces, which is what
//! makes the byte-identity contract provable.

/// Escapes and quotes one JSON string.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite float, `null` otherwise (JSON has no `inf`/`NaN`).
pub fn f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders an `Option` through `f`, `null` when absent.
pub fn opt<T>(v: &Option<T>, f: impl Fn(&T) -> String) -> String {
    match v {
        Some(v) => f(v),
        None => "null".to_string(),
    }
}

/// An incrementally-built JSON object.
#[derive(Debug, Default)]
pub struct Object {
    body: String,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Appends `"key": value` with `value` already rendered as JSON.
    pub fn field(mut self, key: &str, rendered: &str) -> Self {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push_str(&string(key));
        self.body.push(':');
        self.body.push_str(rendered);
        self
    }

    /// Closes the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_renders_in_order() {
        let s = Object::new()
            .field("a", "1")
            .field("b", &string("x\"y"))
            .finish();
        assert_eq!(s, "{\"a\":1,\"b\":\"x\\\"y\"}");
    }

    #[test]
    fn floats_and_options() {
        assert_eq!(f64(1.5), "1.5");
        assert_eq!(f64(f64::NAN), "null");
        assert_eq!(opt(&Some(2u32), |v| v.to_string()), "2");
        assert_eq!(opt(&None::<u32>, |v| v.to_string()), "null");
    }
}
