//! A minimal blocking HTTP + SSE client over `std::net`, used by the
//! service's own tests, the `serve_qps` bench, and the `--smoke` flow.
//!
//! Deliberately strict rather than general: one request per connection
//! (the server always answers `Connection: close`), `Content-Length`
//! framing only, and SSE frames in exactly the shape the server emits
//! (`id:` / `event:` / `data:` lines, blank-line terminated).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad_data(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.to_string())
}

fn read_status_and_headers(
    reader: &mut BufReader<TcpStream>,
) -> io::Result<(u16, Vec<(String, String)>)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_data("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_data("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((status, headers))
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Connection, write, or malformed-response failures.
pub fn request(addr: SocketAddr, method: &str, target: &str) -> io::Result<HttpResponse> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(60)))?;
    write!(
        conn,
        "{method} {target} HTTP/1.1\r\nHost: rsc-serve\r\nConnection: close\r\n\r\n"
    )?;
    conn.flush()?;
    let mut reader = BufReader::new(conn);
    let (status, headers) = read_status_and_headers(&mut reader)?;
    let body = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// `GET` shorthand.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, target: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", target)
}

/// `POST` shorthand (no body — the service takes parameters in the
/// query string).
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, target: &str) -> io::Result<HttpResponse> {
    request(addr, "POST", target)
}

/// One decoded SSE frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseFrame {
    /// The hub's global sequence number (`id:` line).
    pub id: u64,
    /// The event name (`event:` line).
    pub event: String,
    /// The JSON payload (`data:` line).
    pub data: String,
}

/// A live SSE subscription.
#[derive(Debug)]
pub struct SseClient {
    reader: BufReader<TcpStream>,
}

impl SseClient {
    /// Connects and subscribes to `target` (e.g. `/api/v1/events?job=0`).
    ///
    /// # Errors
    ///
    /// Connection failures, or a non-200 / non-`text/event-stream`
    /// answer.
    pub fn connect(addr: SocketAddr, target: &str) -> io::Result<Self> {
        let mut conn = TcpStream::connect(addr)?;
        conn.set_read_timeout(Some(Duration::from_secs(60)))?;
        write!(conn, "GET {target} HTTP/1.1\r\nHost: rsc-serve\r\n\r\n")?;
        conn.flush()?;
        let mut reader = BufReader::new(conn);
        let (status, headers) = read_status_and_headers(&mut reader)?;
        if status != 200 {
            return Err(bad_data(&format!("subscribe answered {status}")));
        }
        let is_stream = headers
            .iter()
            .any(|(k, v)| k == "content-type" && v == "text/event-stream");
        if !is_stream {
            return Err(bad_data("subscribe did not answer an event stream"));
        }
        Ok(SseClient { reader })
    }

    /// Reads the next frame. `Ok(None)` means the server closed the
    /// stream.
    ///
    /// # Errors
    ///
    /// Read timeouts and malformed frames.
    pub fn next_frame(&mut self) -> io::Result<Option<SseFrame>> {
        let (mut id, mut event, mut data) = (None, None, None);
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                match (id.take(), event.take(), data.take()) {
                    (Some(id), Some(event), Some(data)) => {
                        return Ok(Some(SseFrame { id, event, data }))
                    }
                    (None, None, None) => continue, // stray keep-alive blank
                    _ => return Err(bad_data("incomplete SSE frame")),
                }
            } else if let Some(v) = line.strip_prefix("id: ") {
                id = Some(v.parse().map_err(|_| bad_data("non-integer SSE id"))?);
            } else if let Some(v) = line.strip_prefix("event: ") {
                event = Some(v.to_string());
            } else if let Some(v) = line.strip_prefix("data: ") {
                data = Some(v.to_string());
            } else if !line.starts_with(':') {
                return Err(bad_data("unrecognized SSE line"));
            }
        }
    }
}
