//! Rendering [`MonitorEvent`]s as the JSON payloads of SSE frames.
//!
//! The rendering is a pure function of the event, so a replayed cache hit
//! and a live run — which produce identical `MonitorEvent` sequences (see
//! `rsc_monitor::tap`) — stream identical frames.

use rsc_monitor::alerts::Alert;
use rsc_monitor::tap::MonitorEvent;
use rsc_telemetry::store::ControlActionEvent;

use crate::json;

fn alert_fields(a: &Alert) -> json::Object {
    json::Object::new()
        .field("kind", &json::string(a.key.label()))
        .field("node", &json::opt(&a.key.node(), |n| n.index().to_string()))
        .field("raised_at_days", &json::f64(a.raised_at.as_days()))
        .field(
            "cleared_at_days",
            &json::opt(&a.cleared_at, |t| json::f64(t.as_days())),
        )
        .field("value", &json::f64(a.value))
        .field("threshold", &json::f64(a.threshold))
        .field("message", &json::string(&a.message))
}

fn action_json(a: &ControlActionEvent) -> String {
    json::Object::new()
        .field("kind", &json::string(a.kind.label()))
        .field("trigger", &json::string(a.trigger.label()))
        .field("at_days", &json::f64(a.at.as_days()))
        .field("node", &json::opt(&a.node, |n| n.index().to_string()))
        .field("job", &json::opt(&a.job, |j| j.raw().to_string()))
        .field("accepted", if a.accepted { "true" } else { "false" })
        .field("value", &a.value.to_string())
        .finish()
}

/// Renders one monitor event as its SSE `data:` JSON payload. The frame's
/// `event:` name is [`MonitorEvent::label`].
pub fn monitor_event_json(event: &MonitorEvent) -> String {
    match event {
        MonitorEvent::AlertRaised { seq, alert } | MonitorEvent::AlertCleared { seq, alert } => {
            json::Object::new()
                .field("seq", &seq.to_string())
                .field("alert", &alert_fields(alert).finish())
                .finish()
        }
        MonitorEvent::Action(a) => action_json(a),
        MonitorEvent::Estimate(t) => json::Object::new()
            .field("at_days", &json::f64(t.at_days))
            .field("overall_mttf_hours", &json::f64(t.overall_mttf_hours))
            .field(
                "failure_rate_per_node_day",
                &json::f64(t.failure_rate_per_node_day),
            )
            .field(
                "expected_ettr",
                &json::opt(&t.expected_ettr, |x| json::f64(*x)),
            )
            .field("fleet_availability", &json::f64(t.fleet_availability))
            .field("active_alerts", &t.active_alerts.to_string())
            .finish(),
        MonitorEvent::Finished { at_days } => json::Object::new()
            .field("at_days", &json::f64(*at_days))
            .finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::NodeId;
    use rsc_monitor::alerts::AlertKey;
    use rsc_sim_core::time::SimTime;

    #[test]
    fn alert_payload_has_stable_shape() {
        let event = MonitorEvent::AlertRaised {
            seq: 2,
            alert: Alert {
                key: AlertKey::LemonSuspect(NodeId::new(9)),
                raised_at: SimTime::from_days(4),
                cleared_at: None,
                value: 3.0,
                threshold: 3.0,
                message: "m".to_string(),
            },
        };
        let body = monitor_event_json(&event);
        assert!(body.starts_with("{\"seq\":2,\"alert\":{\"kind\":\"lemon_suspect\",\"node\":9,"));
        assert!(body.contains("\"cleared_at_days\":null"));
        assert_eq!(event.label(), "alert");
    }
}
