//! The event fan-out hub: many concurrent SSE subscribers over one
//! monitor event stream, with bounded per-subscriber buffers and
//! slow-consumer drop accounting.
//!
//! Publishing renders each event to its SSE frame once (shared `Arc<str>`)
//! and enqueues it on every matching subscriber. A subscriber that cannot
//! drain fast enough never blocks the publisher and never grows without
//! bound: when its buffer is full the *new* frame is dropped for that
//! subscriber and counted — already-buffered frames keep their order, so
//! what a subscriber does receive is always an in-order subsequence of
//! the published stream.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Hub-level counters, surfaced on `/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Subscribers currently attached.
    pub subscribers: usize,
    /// Frames published (before per-subscriber filtering).
    pub published: u64,
    /// Frames dropped across all subscribers (buffer full).
    pub dropped: u64,
}

#[derive(Debug)]
struct SubShared {
    /// Buffered frames awaiting the consumer.
    queue: Mutex<VecDeque<Arc<str>>>,
    ready: Condvar,
    /// Only frames for this job id are delivered, when set.
    filter: Option<u64>,
    /// Frames this subscriber lost to backpressure.
    dropped: AtomicU64,
    /// Set by the hub on shutdown or by the subscription on drop.
    closed: AtomicBool,
}

impl SubShared {
    fn push(&self, frame: &Arc<str>, capacity: usize) -> bool {
        let mut q = self.queue.lock().expect("subscriber queue poisoned");
        if q.len() >= capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        q.push_back(Arc::clone(frame));
        self.ready.notify_one();
        true
    }
}

/// A consumer's half of one subscription. Dropping it detaches from the
/// hub (the publisher prunes it on the next publish).
#[derive(Debug)]
pub struct Subscription {
    shared: Arc<SubShared>,
}

impl Subscription {
    /// Takes the next buffered frame, waiting up to `timeout`. `None`
    /// means no frame arrived in time — check [`Self::is_closed`] to
    /// distinguish shutdown from an idle stream.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Arc<str>> {
        let mut q = self.shared.queue.lock().expect("subscriber queue poisoned");
        if let Some(frame) = q.pop_front() {
            return Some(frame);
        }
        if self.shared.closed.load(Ordering::Acquire) {
            return None;
        }
        let (mut q, _) = self
            .shared
            .ready
            .wait_timeout(q, timeout)
            .expect("subscriber queue poisoned");
        q.pop_front()
    }

    /// Takes the next buffered frame without waiting.
    pub fn try_recv(&self) -> Option<Arc<str>> {
        self.shared
            .queue
            .lock()
            .expect("subscriber queue poisoned")
            .pop_front()
    }

    /// Whether the hub has shut this subscription down.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Frames this subscriber lost to backpressure.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

#[derive(Debug, Default)]
struct HubInner {
    subs: Vec<Arc<SubShared>>,
    published: u64,
    dropped: u64,
}

/// The publish side: one hub per service.
#[derive(Debug)]
pub struct EventHub {
    inner: Mutex<HubInner>,
    /// Per-subscriber buffer capacity, frames.
    capacity: usize,
}

impl EventHub {
    /// A hub whose subscribers each buffer at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        EventHub {
            inner: Mutex::new(HubInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Attaches a subscriber; with `filter`, only frames published for
    /// that job id are delivered.
    pub fn subscribe(&self, filter: Option<u64>) -> Subscription {
        let shared = Arc::new(SubShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            filter,
            dropped: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        let mut inner = self.inner.lock().expect("hub poisoned");
        inner.subs.push(Arc::clone(&shared));
        Subscription { shared }
    }

    /// Renders `(label, data)` as one SSE frame for `job` and fans it out
    /// to every live matching subscriber.
    pub fn publish(&self, job: u64, label: &str, data: &str) {
        let mut inner = self.inner.lock().expect("hub poisoned");
        let seq = inner.published;
        inner.published += 1;
        let frame: Arc<str> = format!("id: {seq}\nevent: {label}\ndata: {data}\n\n").into();
        // Prune closed subscribers while delivering.
        let capacity = self.capacity;
        let mut dropped = 0;
        inner.subs.retain(|sub| {
            if sub.closed.load(Ordering::Acquire) {
                return false;
            }
            if sub.filter.is_none_or(|want| want == job) && !sub.push(&frame, capacity) {
                dropped += 1;
            }
            true
        });
        inner.dropped += dropped;
    }

    /// Closes every subscription (shutdown): consumers wake and see
    /// [`Subscription::is_closed`].
    pub fn close_all(&self) {
        let mut inner = self.inner.lock().expect("hub poisoned");
        for sub in inner.subs.drain(..) {
            sub.closed.store(true, Ordering::Release);
            sub.ready.notify_one();
        }
    }

    /// Current hub counters.
    pub fn stats(&self) -> HubStats {
        let mut inner = self.inner.lock().expect("hub poisoned");
        inner.subs.retain(|s| !s.closed.load(Ordering::Acquire));
        HubStats {
            subscribers: inner.subs.len(),
            published: inner.published,
            dropped: inner.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_arrive_in_order_with_sequence_ids() {
        let hub = EventHub::new(8);
        let sub = hub.subscribe(None);
        hub.publish(1, "alert", "{\"a\":1}");
        hub.publish(1, "estimate", "{\"b\":2}");
        let first = sub.try_recv().unwrap();
        assert_eq!(&*first, "id: 0\nevent: alert\ndata: {\"a\":1}\n\n");
        let second = sub.try_recv().unwrap();
        assert!(second.starts_with("id: 1\nevent: estimate\n"));
        assert_eq!(sub.try_recv(), None);
    }

    #[test]
    fn filter_selects_one_job() {
        let hub = EventHub::new(8);
        let sub = hub.subscribe(Some(7));
        hub.publish(3, "alert", "{}");
        hub.publish(7, "alert", "{}");
        let only = sub.try_recv().unwrap();
        assert!(only.starts_with("id: 1\n"));
        assert_eq!(sub.try_recv(), None);
    }

    #[test]
    fn slow_consumer_drops_are_counted_not_blocking() {
        let hub = EventHub::new(2);
        let sub = hub.subscribe(None);
        for i in 0..5 {
            hub.publish(1, "estimate", &format!("{{\"i\":{i}}}"));
        }
        // The first two frames survive in order; the rest were dropped.
        assert!(sub.try_recv().unwrap().starts_with("id: 0\n"));
        assert!(sub.try_recv().unwrap().starts_with("id: 1\n"));
        assert_eq!(sub.try_recv(), None);
        assert_eq!(sub.dropped(), 3);
        assert_eq!(hub.stats().dropped, 3);
        assert_eq!(hub.stats().published, 5);
    }

    #[test]
    fn dropped_subscription_is_pruned_and_close_all_wakes() {
        let hub = EventHub::new(2);
        let sub = hub.subscribe(None);
        drop(hub.subscribe(None));
        hub.publish(1, "alert", "{}");
        assert_eq!(hub.stats().subscribers, 1);
        hub.close_all();
        assert!(sub.is_closed());
        // A buffered frame is still drainable after close.
        assert!(sub.recv_timeout(Duration::from_millis(1)).is_some());
        assert_eq!(sub.recv_timeout(Duration::from_millis(1)), None);
    }
}
