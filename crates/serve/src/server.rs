//! The socket layer: a `TcpListener` accept loop feeding a bounded HTTP
//! worker pool, with SSE connections handed off to dedicated streamer
//! threads.
//!
//! Nothing here makes a routing or serialization decision — every request
//! goes through [`ServiceState::handle`] and every byte written comes
//! from a [`Response`] or a pre-rendered SSE frame. The pool bounds
//! concurrent request parsing; streaming connections move off the pool so
//! a slow SSE consumer can never starve request handling (its buffer is
//! bounded by the hub instead — see [`crate::sse`]).

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::core::{Action, ServiceConfig, ServiceState};
use crate::http::{parse_request, Response};
use crate::sse::Subscription;

/// How long a worker waits for a slow client to send its request.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Streamer wake-up cadence for checking hub shutdown on an idle stream.
const SSE_POLL: Duration = Duration::from_millis(200);

/// The pending-connection queue between the accept loop and the pool.
#[derive(Debug, Default)]
struct ConnQueue {
    inner: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn push(&self, conn: TcpStream) {
        let mut inner = self.inner.lock().expect("conn queue poisoned");
        if inner.1 {
            return; // shutting down: drop the connection
        }
        inner.0.push_back(conn);
        self.ready.notify_one();
    }

    /// Next connection, or `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("conn queue poisoned");
        loop {
            if let Some(conn) = inner.0.pop_front() {
                return Some(conn);
            }
            if inner.1 {
                return None;
            }
            inner = self.ready.wait(inner).expect("conn queue poisoned");
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().expect("conn queue poisoned");
        inner.1 = true;
        self.ready.notify_all();
    }
}

#[derive(Debug)]
struct Shared {
    state: Arc<ServiceState>,
    conns: ConnQueue,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// One running service: the listener, its accept thread, the HTTP worker
/// pool, and the job worker pool.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// every thread. The service runs until [`Self::shutdown`] or a
    /// `POST /api/v1/shutdown`.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept setup failures.
    pub fn bind(addr: &str, config: ServiceConfig, http_workers: usize) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = ServiceState::new(config);
        let shared = Arc::new(Shared {
            state: Arc::clone(&state),
            conns: ConnQueue::default(),
            shutdown: AtomicBool::new(false),
            addr: local,
        });

        let mut threads = state.spawn_job_workers();
        for i in 0..http_workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rsc-serve-http-{i}"))
                    .spawn(move || {
                        while let Some(conn) = shared.conns.pop() {
                            handle_connection(&shared, conn);
                        }
                    })
                    .expect("spawn http worker"),
            );
        }
        let accept_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("rsc-serve-accept".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if accept_shared.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(conn) = conn {
                            accept_shared.conns.push(conn);
                        }
                    }
                    accept_shared.conns.close();
                })
                .expect("spawn accept thread"),
        );

        Ok(Server { shared, threads })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared service state.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.shared.state
    }

    /// Triggers a graceful shutdown (idempotent): stop accepting, reject
    /// new work, close every SSE subscriber, wake every blocked thread.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Waits for every service thread to exit. Call after
    /// [`Self::shutdown`], or let a client's `POST /api/v1/shutdown`
    /// end the service.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::AcqRel) {
        return;
    }
    shared.state.begin_shutdown();
    shared.conns.close();
    // Unblock the accept loop: it re-checks the flag per connection.
    let _ = TcpStream::connect(shared.addr);
}

/// Serves one connection: parse, route, respond — or hand off to an SSE
/// streamer thread. All failure paths just close the socket; a client
/// abandoning its request cannot take a worker with it past the read
/// timeout.
fn handle_connection(shared: &Shared, conn: TcpStream) {
    let _ = conn.set_read_timeout(Some(READ_TIMEOUT));
    let reader = match conn.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut writer = conn;
    match parse_request(&mut BufReader::new(reader)) {
        Err(err) => {
            let _ = Response::from_request_error(&err).write_to(&mut writer);
        }
        Ok(None) => {}
        Ok(Some(req)) => match shared.state.handle(&req) {
            Action::Respond(resp) => {
                let _ = resp.write_to(&mut writer);
            }
            Action::Shutdown(resp) => {
                let _ = resp.write_to(&mut writer);
                trigger_shutdown(shared);
            }
            Action::Stream(sub) => spawn_streamer(writer, sub),
        },
    }
}

/// Moves an SSE connection off the worker pool onto its own thread, which
/// exits when the client disconnects or the hub closes the subscription.
fn spawn_streamer(mut conn: TcpStream, sub: Subscription) {
    let _ = std::thread::Builder::new()
        .name("rsc-serve-sse".to_string())
        .spawn(move || {
            let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                        Cache-Control: no-store\r\nConnection: close\r\n\r\n";
            if conn
                .write_all(head.as_bytes())
                .and_then(|_| conn.flush())
                .is_err()
            {
                return;
            }
            loop {
                match sub.recv_timeout(SSE_POLL) {
                    Some(frame) => {
                        if conn
                            .write_all(frame.as_bytes())
                            .and_then(|_| conn.flush())
                            .is_err()
                        {
                            return; // client went away; Drop prunes us
                        }
                    }
                    None => {
                        if sub.is_closed() {
                            return;
                        }
                    }
                }
            }
        });
}
