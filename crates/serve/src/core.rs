//! The socket-free service core: routing, the job pipeline, and the
//! analysis read path.
//!
//! Everything the service *decides* lives here — which handler a request
//! hits, how a sweep becomes queued jobs, how a job executes through the
//! shared [`ScenarioRunner`] (live on a cache miss, replayed on a hit),
//! and how a sealed analysis is found (LRU, then artifact cache on disk).
//! The socket layer in [`crate::server`] only moves bytes. That split is
//! what makes the determinism contract testable: `handle` is a plain
//! function from a parsed [`Request`] to an [`Action`], so byte-identity
//! of responses is asserted without ever opening a port.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use rsc_monitor::config::MonitorConfig;
use rsc_monitor::export::{write_actions_csv, write_alerts_csv, write_report_json};
use rsc_monitor::monitor::ReliabilityMonitor;
use rsc_monitor::replay::replay_view;
use rsc_monitor::tap::{MonitorSink, MonitorTap};
use rsc_sim::bus::SharedObserver;
use rsc_sim::config::SimConfig;
use rsc_sim::runner::{ObservedOutcome, ScenarioRunner, ScenarioSpec};
use rsc_telemetry::snapshot::load_snapshot_file;

use crate::cache::{AnalysisCache, SealedAnalysis};
use crate::events::monitor_event_json;
use crate::http::{Method, Request, Response};
use crate::jobs::{JobRegistry, JobSnapshot, SubmitError};
use crate::json;
use crate::sse::{EventHub, Subscription};

/// Longest accepted sweep horizon, days — bounds how long one queued job
/// can occupy a worker.
pub const MAX_SWEEP_DAYS: u64 = 3650;

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing queued jobs.
    pub job_workers: usize,
    /// Pending-queue capacity (submissions beyond it get `429`).
    pub queue_capacity: usize,
    /// Resident sealed analyses in the in-memory LRU.
    pub lru_capacity: usize,
    /// Per-SSE-subscriber frame buffer (frames beyond it are dropped and
    /// counted, never blocking the publisher).
    pub sse_buffer: usize,
    /// Monitor configuration applied to every scenario.
    pub monitor: MonitorConfig,
    /// Artifact-cache directory shared with the batch runners.
    pub cache_dir: PathBuf,
    /// Most seeds accepted in one sweep submission.
    pub max_sweep_jobs: usize,
}

impl ServiceConfig {
    /// Sensible defaults over `cache_dir`: 2 job workers, a 64-deep
    /// queue, 32 resident analyses, 256-frame SSE buffers, the paper's
    /// default monitor.
    pub fn with_cache_dir(cache_dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            job_workers: 2,
            queue_capacity: 64,
            lru_capacity: 32,
            sse_buffer: 256,
            monitor: MonitorConfig::rsc_default(),
            cache_dir: cache_dir.into(),
            max_sweep_jobs: 32,
        }
    }
}

/// What the socket layer should do with one request.
#[derive(Debug)]
pub enum Action {
    /// Write the response and close.
    Respond(Response),
    /// Switch the connection to an SSE stream fed by this subscription.
    Stream(Subscription),
    /// Write the response, then shut the whole service down.
    Shutdown(Response),
}

/// The shared state behind every connection and worker: the scenario
/// runner (with its artifact cache), the job registry, the analysis LRU,
/// and the SSE hub.
#[derive(Debug)]
pub struct ServiceState {
    config: ServiceConfig,
    runner: ScenarioRunner,
    jobs: JobRegistry,
    cache: AnalysisCache,
    hub: EventHub,
    requests: AtomicU64,
}

impl ServiceState {
    /// Builds the state for one service instance.
    pub fn new(config: ServiceConfig) -> Arc<Self> {
        let runner = ScenarioRunner::new()
            .with_cache_dir(&config.cache_dir)
            .workers(1);
        Arc::new(ServiceState {
            jobs: JobRegistry::new(config.queue_capacity),
            cache: AnalysisCache::new(config.lru_capacity),
            hub: EventHub::new(config.sse_buffer),
            runner,
            requests: AtomicU64::new(0),
            config,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The event hub (exposed for the socket layer and tests).
    pub fn hub(&self) -> &EventHub {
        &self.hub
    }

    /// The job registry (exposed for tests).
    pub fn jobs(&self) -> &JobRegistry {
        &self.jobs
    }

    /// Spawns the job worker pool. Threads exit when
    /// [`Self::begin_shutdown`] runs and the queue drains.
    pub fn spawn_job_workers(self: &Arc<Self>) -> Vec<JoinHandle<()>> {
        (0..self.config.job_workers.max(1))
            .map(|i| {
                let state = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("rsc-serve-job-{i}"))
                    .spawn(move || {
                        while let Some((id, spec)) = state.jobs.claim_next() {
                            state.execute_job(id, &spec);
                        }
                    })
                    .expect("spawn job worker")
            })
            .collect()
    }

    /// Stops accepting and executing work: the queue rejects submissions,
    /// blocked workers wake and exit, every SSE subscriber is closed.
    pub fn begin_shutdown(&self) {
        self.jobs.shutdown();
        self.hub.close_all();
    }

    /// Executes one claimed job: simulate (or replay a cache hit) with a
    /// [`MonitorTap`] streaming to the hub, seal the analysis into the
    /// LRU, and write the monitor artifacts next to the snapshot.
    fn execute_job(self: &Arc<Self>, id: u64, spec: &ScenarioSpec) {
        let hub = Arc::clone(self);
        let sink: MonitorSink = Box::new(move |event| {
            hub.hub
                .publish(id, event.label(), &monitor_event_json(event));
        });
        let tap = MonitorTap::new(ReliabilityMonitor::new(self.config.monitor.clone()), sink);
        let handle = SharedObserver::new(tap);
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (view, outcome) = self.runner.run_one_observed(spec, Box::new(handle.clone()));
            if outcome == ObservedOutcome::CachedSkipped {
                handle.with(|tap| replay_view(&view, tap));
            }
            let report = handle.with(|tap| tap.monitor().report());
            (view, report)
        }));
        match run {
            Ok((view, report)) => {
                let fp = spec.fingerprint();
                // Same artifacts the MonitoredRunner writes, so CLI and
                // service runs share one cache layout. Best-effort: a
                // failed write only costs a rebuild.
                let dir = &self.config.cache_dir;
                let _ = write_report_json(dir.join(format!("{fp:016x}.monitor.json")), &report);
                let _ = write_alerts_csv(dir.join(format!("{fp:016x}.alerts.csv")), &report.alerts);
                let _ = write_actions_csv(
                    dir.join(format!("{fp:016x}.actions.csv")),
                    view.control_actions(),
                );
                self.cache.insert(Arc::new(SealedAnalysis::new(fp, report)));
                self.jobs.mark_sealed(id);
            }
            Err(_) => {
                self.jobs
                    .mark_failed(id, "panic during scenario execution".to_string());
            }
        }
    }

    /// The sealed analysis for a fingerprint: LRU first, then the on-disk
    /// snapshot replayed through a fresh monitor (and re-inserted). All
    /// three paths — live execution, LRU hit, disk reload — render the
    /// identical bytes, because the analysis is a pure function of
    /// (fingerprint, sealed view, monitor config).
    pub fn analysis_for(&self, fingerprint: u64) -> Option<Arc<SealedAnalysis>> {
        if let Some(hit) = self.cache.get(fingerprint) {
            return Some(hit);
        }
        let path = self
            .config
            .cache_dir
            .join(format!("{fingerprint:016x}.snap"));
        let view = load_snapshot_file(&path).ok()?;
        let mut monitor = ReliabilityMonitor::new(self.config.monitor.clone());
        replay_view(&view, &mut monitor);
        let sealed = Arc::new(SealedAnalysis::new(fingerprint, monitor.report()));
        self.cache.insert(Arc::clone(&sealed));
        Some(sealed)
    }

    /// Requests handled so far (any route, including rejections).
    pub fn requests_handled(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Routes one parsed request. Pure with respect to the connection:
    /// no socket I/O happens here.
    pub fn handle(&self, req: &Request) -> Action {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method, segments.as_slice()) {
            (Method::Get, ["healthz"]) => Action::Respond(Response::json(200, self.healthz_json())),
            (Method::Post, ["api", "v1", "sweeps"]) => Action::Respond(self.submit_sweep(req)),
            (Method::Get, ["api", "v1", "jobs"]) => {
                let jobs = self.jobs.list();
                let body = format!(
                    "{{\"jobs\":[{}]}}",
                    jobs.iter().map(job_json).collect::<Vec<_>>().join(",")
                );
                Action::Respond(Response::json(200, body))
            }
            (Method::Get, ["api", "v1", "jobs", id]) => Action::Respond(self.job_status(id)),
            (Method::Get, ["api", "v1", "jobs", id, "analysis"]) => {
                Action::Respond(self.job_analysis(id, req))
            }
            (Method::Get, ["api", "v1", "analysis", fp]) => {
                Action::Respond(self.fingerprint_analysis(fp))
            }
            (Method::Get, ["api", "v1", "events"]) => match req.query("job") {
                Some(raw) => match raw.parse::<u64>() {
                    Ok(id) => Action::Stream(self.hub.subscribe(Some(id))),
                    Err(_) => Action::Respond(Response::error(
                        400,
                        "bad_job_id",
                        "job filter must be an integer",
                    )),
                },
                None => Action::Stream(self.hub.subscribe(None)),
            },
            (Method::Post, ["api", "v1", "shutdown"]) => Action::Shutdown(Response::json(
                200,
                "{\"status\":\"shutting_down\"}".to_string(),
            )),
            (Method::Post, ["healthz" | "api", ..]) => Action::Respond(Response::error(
                405,
                "method_not_allowed",
                "use GET for this route",
            )),
            _ => Action::Respond(Response::error(404, "not_found", "unknown route")),
        }
    }

    /// The `/healthz` body: queue depths, artifact-cache counters
    /// (including corruption), LRU counters, SSE hub counters.
    fn healthz_json(&self) -> String {
        let queue = self.jobs.counts();
        let artifacts = self.runner.stats();
        let lru = self.cache.stats();
        let sse = self.hub.stats();
        json::Object::new()
            .field("status", "\"ok\"")
            .field(
                "queue",
                &json::Object::new()
                    .field("queued", &queue.queued.to_string())
                    .field("running", &queue.running.to_string())
                    .field("sealed", &queue.sealed.to_string())
                    .field("failed", &queue.failed.to_string())
                    .field("capacity", &queue.capacity.to_string())
                    .finish(),
            )
            .field(
                "artifact_cache",
                &json::Object::new()
                    .field("hits", &artifacts.hits.to_string())
                    .field("misses", &artifacts.misses.to_string())
                    .field("corrupt", &artifacts.corrupt.to_string())
                    .finish(),
            )
            .field(
                "analysis_lru",
                &json::Object::new()
                    .field("entries", &lru.entries.to_string())
                    .field("capacity", &self.config.lru_capacity.to_string())
                    .field("hits", &lru.hits.to_string())
                    .field("misses", &lru.misses.to_string())
                    .field("evictions", &lru.evictions.to_string())
                    .finish(),
            )
            .field(
                "sse",
                &json::Object::new()
                    .field("subscribers", &sse.subscribers.to_string())
                    .field("published", &sse.published.to_string())
                    .field("dropped", &sse.dropped.to_string())
                    .finish(),
            )
            .field("requests", &self.requests_handled().to_string())
            .finish()
    }

    /// `POST /api/v1/sweeps?preset=&seeds=&days=&scale=` — expands the
    /// sweep into one queued job per seed.
    fn submit_sweep(&self, req: &Request) -> Response {
        let preset = req.query("preset").unwrap_or("small_test");
        let scale = match req.query("scale").map(str::parse::<u32>) {
            None => None,
            Some(Ok(d)) if d > 0 => Some(d),
            Some(_) => {
                return Response::error(400, "bad_scale", "scale must be a positive integer")
            }
        };
        let config = match preset_config(preset, scale) {
            Some(config) => config,
            None => {
                return Response::error(
                    400,
                    "unknown_preset",
                    "preset must be small_test, rsc1, or rsc2",
                )
            }
        };
        let days = match req.query("days").map(str::parse::<u64>) {
            None => 3,
            Some(Ok(d)) if (1..=MAX_SWEEP_DAYS).contains(&d) => d,
            Some(_) => {
                return Response::error(400, "bad_days", "days must be an integer in 1..=3650")
            }
        };
        let seeds = match parse_seeds(req.query("seeds").unwrap_or("1")) {
            Some(seeds) if !seeds.is_empty() => seeds,
            _ => {
                return Response::error(
                    400,
                    "bad_seeds",
                    "seeds must be a comma-separated list of integers",
                )
            }
        };
        if seeds.len() > self.config.max_sweep_jobs {
            return Response::error(400, "too_many_seeds", "sweep exceeds max_sweep_jobs");
        }

        let mut accepted = Vec::new();
        for &seed in &seeds {
            let spec = ScenarioSpec::new(config.clone(), seed, days);
            match self.jobs.submit(spec, preset) {
                Ok(id) => accepted.push((id, seed)),
                Err(SubmitError::QueueFull) => {
                    // Jobs already accepted stay queued; the client sees
                    // how far the sweep got and can resubmit the rest.
                    return Response::error(
                        429,
                        "queue_full",
                        &format!(
                            "queue full after {} of {} jobs",
                            accepted.len(),
                            seeds.len()
                        ),
                    );
                }
                Err(SubmitError::ShuttingDown) => {
                    return Response::error(503, "shutting_down", "service is shutting down")
                }
            }
        }
        let jobs = accepted
            .iter()
            .map(|(id, seed)| {
                let snap = self.jobs.get(*id).expect("just submitted");
                json::Object::new()
                    .field("id", &id.to_string())
                    .field("seed", &seed.to_string())
                    .field(
                        "fingerprint",
                        &json::string(&format!("{:016x}", snap.fingerprint)),
                    )
                    .finish()
            })
            .collect::<Vec<_>>()
            .join(",");
        Response::json(
            202,
            json::Object::new()
                .field("preset", &json::string(preset))
                .field("days", &days.to_string())
                .field("jobs", &format!("[{jobs}]"))
                .finish(),
        )
    }

    fn job_status(&self, raw_id: &str) -> Response {
        match raw_id.parse::<u64>().ok().and_then(|id| self.jobs.get(id)) {
            Some(snap) => Response::json(200, job_json(&snap)),
            None => Response::error(404, "unknown_job", "no such job id"),
        }
    }

    /// `GET /api/v1/jobs/{id}/analysis` — the canonical analysis JSON,
    /// or, when the client sends `Accept: text/csv`, a CSV download of
    /// the sealed alert log (`?kind=alerts`, the default) or control
    /// actions (`?kind=actions`).
    fn job_analysis(&self, raw_id: &str, req: &Request) -> Response {
        let snap = match raw_id.parse::<u64>().ok().and_then(|id| self.jobs.get(id)) {
            Some(snap) => snap,
            None => return Response::error(404, "unknown_job", "no such job id"),
        };
        match &snap.state {
            crate::jobs::JobState::Sealed => {
                if wants_csv(req) {
                    return self
                        .analysis_csv(snap.fingerprint, req.query("kind").unwrap_or("alerts"));
                }
                match self.analysis_for(snap.fingerprint) {
                    Some(sealed) => Response::json(200, sealed.json.to_string()),
                    None => Response::error(404, "analysis_missing", "sealed artifact not found"),
                }
            }
            crate::jobs::JobState::Failed(detail) => Response::error(500, "job_failed", detail),
            _ => Response::error(409, "not_sealed", "job has not sealed yet; poll its status"),
        }
    }

    /// One sealed CSV artifact for a fingerprint. The file written at seal
    /// is served verbatim when present; a missing file (cache pruned) is
    /// re-rendered from the sealed analysis through the same renderer that
    /// wrote it, so both paths serve identical bytes.
    fn analysis_csv(&self, fingerprint: u64, kind: &str) -> Response {
        use rsc_monitor::export::{
            actions_rows, alerts_rows, ACTIONS_CSV_HEADER, ALERTS_CSV_HEADER,
        };
        if kind != "alerts" && kind != "actions" {
            return Response::error(400, "bad_kind", "kind must be alerts or actions");
        }
        let path = self
            .config
            .cache_dir
            .join(format!("{fingerprint:016x}.{kind}.csv"));
        if let Ok(bytes) = std::fs::read(&path) {
            return Response::csv(200, bytes);
        }
        let mut body = Vec::new();
        let rendered = match kind {
            "alerts" => match self.analysis_for(fingerprint) {
                Some(sealed) => rsc_telemetry::csv::write_csv(
                    &mut body,
                    &ALERTS_CSV_HEADER,
                    alerts_rows(&sealed.report.alerts),
                )
                .is_ok(),
                None => false,
            },
            _ => {
                let snap = self
                    .config
                    .cache_dir
                    .join(format!("{fingerprint:016x}.snap"));
                match load_snapshot_file(&snap) {
                    Ok(view) => rsc_telemetry::csv::write_csv(
                        &mut body,
                        &ACTIONS_CSV_HEADER,
                        actions_rows(view.control_actions()),
                    )
                    .is_ok(),
                    Err(_) => false,
                }
            }
        };
        if rendered {
            Response::csv(200, body)
        } else {
            Response::error(404, "csv_missing", "sealed CSV artifact not found")
        }
    }

    fn fingerprint_analysis(&self, raw_fp: &str) -> Response {
        match u64::from_str_radix(raw_fp, 16)
            .ok()
            .and_then(|fp| self.analysis_for(fp))
        {
            Some(sealed) => Response::json(200, sealed.json.to_string()),
            None => Response::error(404, "unknown_fingerprint", "no sealed analysis on record"),
        }
    }
}

/// Whether the request negotiates a CSV body (`Accept` mentions
/// `text/csv`). Anything else — absent header, `*/*`, JSON — keeps the
/// canonical JSON body.
fn wants_csv(req: &Request) -> bool {
    req.header("accept")
        .is_some_and(|v| v.to_ascii_lowercase().contains("text/csv"))
}

/// Renders one job record.
fn job_json(snap: &JobSnapshot) -> String {
    let error = match &snap.state {
        crate::jobs::JobState::Failed(detail) => json::string(detail),
        _ => "null".to_string(),
    };
    json::Object::new()
        .field("id", &snap.id.to_string())
        .field("preset", &json::string(&snap.preset))
        .field("seed", &snap.seed.to_string())
        .field("days", &snap.days.to_string())
        .field(
            "fingerprint",
            &json::string(&format!("{:016x}", snap.fingerprint)),
        )
        .field("state", &json::string(snap.state.label()))
        .field("error", &error)
        .finish()
}

/// Resolves a preset name (optionally scaled down) to a configuration.
fn preset_config(preset: &str, scale: Option<u32>) -> Option<SimConfig> {
    let base = match preset {
        "small_test" => SimConfig::small_test_cluster(),
        "rsc1" => SimConfig::rsc1(),
        "rsc2" => SimConfig::rsc2(),
        _ => return None,
    };
    Some(match scale {
        Some(divisor) if divisor > 1 => base.scaled_down(divisor),
        _ => base,
    })
}

/// Parses `1,2,3` into seeds; `None` on any non-integer entry.
fn parse_seeds(raw: &str) -> Option<Vec<u64>> {
    raw.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse::<u64>().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_request;
    use std::time::{Duration, Instant};

    fn temp_cache(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rsc-serve-core-{tag}-{}", std::process::id()))
    }

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        parse_request(&mut raw.as_bytes()).unwrap().unwrap()
    }

    fn post(path: &str) -> Request {
        let raw = format!("POST {path} HTTP/1.1\r\n\r\n");
        parse_request(&mut raw.as_bytes()).unwrap().unwrap()
    }

    fn respond(state: &ServiceState, req: &Request) -> Response {
        match state.handle(req) {
            Action::Respond(r) | Action::Shutdown(r) => r,
            Action::Stream(_) => panic!("expected plain response"),
        }
    }

    fn wait_sealed(state: &ServiceState, id: u64) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match state.jobs().get(id).map(|s| s.state) {
                Some(crate::jobs::JobState::Sealed) => return,
                Some(crate::jobs::JobState::Failed(e)) => panic!("job failed: {e}"),
                _ if Instant::now() > deadline => panic!("job never sealed"),
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    #[test]
    fn routes_reject_unknowns_with_typed_errors() {
        let dir = temp_cache("routes");
        let state = ServiceState::new(ServiceConfig::with_cache_dir(&dir));
        assert_eq!(respond(&state, &get("/nope")).status, 404);
        assert_eq!(respond(&state, &post("/healthz")).status, 405);
        assert_eq!(
            respond(&state, &post("/api/v1/sweeps?preset=bogus")).status,
            400
        );
        assert_eq!(respond(&state, &post("/api/v1/sweeps?days=0")).status, 400);
        assert_eq!(
            respond(&state, &post("/api/v1/sweeps?seeds=1,x")).status,
            400
        );
        assert_eq!(respond(&state, &get("/api/v1/jobs/99")).status, 404);
        assert_eq!(respond(&state, &get("/api/v1/analysis/zz")).status, 404);
        let health = respond(&state, &get("/healthz"));
        assert_eq!(health.status, 200);
        let body = String::from_utf8(health.body).unwrap();
        assert!(body.starts_with("{\"status\":\"ok\",\"queue\":{"));
        assert!(body.contains("\"artifact_cache\":{\"hits\":0,\"misses\":0,\"corrupt\":0}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_overflow_surfaces_as_429() {
        let dir = temp_cache("overflow");
        let mut config = ServiceConfig::with_cache_dir(&dir);
        config.queue_capacity = 1;
        // No workers spawned: the queue never drains.
        let state = ServiceState::new(config);
        let first = respond(&state, &post("/api/v1/sweeps?seeds=1"));
        assert_eq!(first.status, 202);
        let second = respond(&state, &post("/api/v1/sweeps?seeds=2"));
        assert_eq!(second.status, 429);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_job_serves_byte_identical_analysis_on_every_path() {
        let dir = temp_cache("identity");
        let _ = std::fs::remove_dir_all(&dir);
        let state = ServiceState::new(ServiceConfig::with_cache_dir(&dir));
        let workers = state.spawn_job_workers();

        let accepted = respond(
            &state,
            &post("/api/v1/sweeps?preset=small_test&seeds=5&days=2"),
        );
        assert_eq!(accepted.status, 202);
        let body = String::from_utf8(accepted.body).unwrap();
        assert!(body.contains("\"jobs\":[{\"id\":0,"));
        wait_sealed(&state, 0);

        let via_job = respond(&state, &get("/api/v1/jobs/0/analysis"));
        assert_eq!(via_job.status, 200);
        let fp = state.jobs().get(0).unwrap().fingerprint;
        let via_fp = respond(&state, &get(&format!("/api/v1/analysis/{fp:016x}")));
        assert_eq!(via_job.body, via_fp.body);

        // Evict the LRU entry by rebuilding the state: the disk-reload
        // path (snapshot -> replay -> render) must produce identical
        // bytes.
        let fresh = ServiceState::new(ServiceConfig::with_cache_dir(&dir));
        let reloaded = respond(&fresh, &get(&format!("/api/v1/analysis/{fp:016x}")));
        assert_eq!(reloaded.status, 200);
        assert_eq!(via_job.body, reloaded.body);

        state.begin_shutdown();
        for w in workers {
            w.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn get_csv(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\nAccept: text/csv\r\n\r\n");
        parse_request(&mut raw.as_bytes()).unwrap().unwrap()
    }

    #[test]
    fn accept_csv_downloads_sealed_artifacts() {
        let dir = temp_cache("csv");
        let _ = std::fs::remove_dir_all(&dir);
        let state = ServiceState::new(ServiceConfig::with_cache_dir(&dir));
        let workers = state.spawn_job_workers();
        assert_eq!(
            respond(&state, &post("/api/v1/sweeps?seeds=5&days=2")).status,
            202
        );
        wait_sealed(&state, 0);
        let fp = state.jobs().get(0).unwrap().fingerprint;

        // Default JSON is untouched by the negotiation.
        let json = respond(&state, &get("/api/v1/jobs/0/analysis"));
        assert_eq!(json.content_type, "application/json");

        // Accept: text/csv serves the sealed alert log verbatim.
        let alerts = respond(&state, &get_csv("/api/v1/jobs/0/analysis"));
        assert_eq!((alerts.status, alerts.content_type), (200, "text/csv"));
        let on_disk = std::fs::read(dir.join(format!("{fp:016x}.alerts.csv"))).unwrap();
        assert_eq!(alerts.body, on_disk);
        assert!(alerts.body.starts_with(b"kind,node,raised_at_days"));

        // kind=actions selects the control-action log.
        let actions = respond(&state, &get_csv("/api/v1/jobs/0/analysis?kind=actions"));
        assert_eq!((actions.status, actions.content_type), (200, "text/csv"));
        assert_eq!(
            actions.body,
            std::fs::read(dir.join(format!("{fp:016x}.actions.csv"))).unwrap()
        );

        // A pruned file regenerates byte-identically from the sealed
        // analysis.
        std::fs::remove_file(dir.join(format!("{fp:016x}.alerts.csv"))).unwrap();
        let regenerated = respond(&state, &get_csv("/api/v1/jobs/0/analysis"));
        assert_eq!(regenerated.status, 200);
        assert_eq!(regenerated.body, on_disk);

        // Unknown kinds reject crisply.
        assert_eq!(
            respond(&state, &get_csv("/api/v1/jobs/0/analysis?kind=nope")).status,
            400
        );

        state.begin_shutdown();
        for w in workers {
            w.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_stream_carries_monitor_events_and_finishes() {
        let dir = temp_cache("stream");
        let _ = std::fs::remove_dir_all(&dir);
        let state = ServiceState::new(ServiceConfig::with_cache_dir(&dir));
        let sub = match state.handle(&get("/api/v1/events?job=0")) {
            Action::Stream(sub) => sub,
            other => panic!("expected stream, got {other:?}"),
        };
        let workers = state.spawn_job_workers();
        let accepted = respond(&state, &post("/api/v1/sweeps?seeds=3&days=2"));
        assert_eq!(accepted.status, 202);
        wait_sealed(&state, 0);

        let mut saw_finished = false;
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            match sub.try_recv() {
                Some(frame) if frame.contains("event: finished\n") => {
                    saw_finished = true;
                    break;
                }
                Some(_) => continue,
                None => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        assert!(saw_finished, "stream never delivered the finished frame");

        state.begin_shutdown();
        for w in workers {
            w.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
