//! `rsc-serve`: a long-running, dependency-light scenario service over
//! the telemetry artifact cache, with live alert streaming.
//!
//! The batch tooling in this workspace answers reliability questions one
//! process at a time: run a sweep, read the sealed artifacts. This crate
//! turns the same substrate into a *service* — many clients submitting
//! scenario sweeps, polling job state, fetching sealed analyses
//! (per-size MTTF with confidence intervals, ETTR, availability, lemon
//! scores, control actions) as JSON, and following alerts, estimator
//! heartbeats, and control actions live over Server-Sent Events — the
//! shape a production reliability dashboard sits on.
//!
//! Built on `std` only (`TcpListener` + worker threads), like the rest
//! of the workspace:
//!
//! - [`http`] — a bounded, panic-free HTTP/1.1 parser and response
//!   writer; every malformed input maps to a typed 4xx.
//! - [`core`] — the socket-free service brain: routing, the sweep → job
//!   pipeline over `rsc_sim::runner::ScenarioRunner` (artifact-cache
//!   hits replay instead of re-simulating), and the analysis read path.
//! - [`jobs`] — the bounded job queue and its state machine
//!   (queued → running → sealed/failed); overflow is a visible `429`.
//! - [`cache`] — the in-memory LRU of sealed analyses over the on-disk
//!   artifact cache.
//! - [`sse`] — the event fan-out hub: bounded per-subscriber buffers,
//!   slow consumers drop (counted) instead of blocking.
//! - [`events`] — `rsc_monitor::tap::MonitorEvent` → SSE JSON payloads.
//! - [`server`] — the accept loop, HTTP worker pool, and SSE streamer
//!   threads.
//! - [`client`] — a minimal blocking client for tests, the bench, and
//!   the smoke flow.
//!
//! # The determinism contract
//!
//! An analysis response is a pure function of the scenario fingerprint
//! and the monitor configuration: the simulation is deterministic in
//! (config, seed), a cache hit replays the sealed view through the same
//! monitor, and the JSON is rendered once from the resulting report. So
//! the same request returns **byte-identical** bodies whether the
//! scenario was computed live, replayed from the artifact cache, served
//! from the LRU, or reloaded from disk by a different process — and N
//! concurrent clients all receive those same bytes (`tests/e2e.rs` pins
//! this over real sockets). The SSE stream inherits the same property:
//! live and replayed runs emit identical frame sequences, and alert
//! frames enumerate `alerts.csv` rows in order.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod core;
pub mod events;
pub mod http;
pub mod jobs;
pub mod json;
pub mod server;
pub mod sse;
