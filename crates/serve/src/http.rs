//! A bounded, panic-free HTTP/1.1 request parser and response writer.
//!
//! Hand-rolled on `std` only, like the rest of the workspace's I/O: the
//! service needs exactly enough HTTP to parse a request line, a small
//! header block, an optional `Content-Length` body, and to write framed
//! responses — not a general-purpose server stack. Every way a request
//! can be malformed, oversized, or truncated maps to a typed
//! [`RequestError`] carrying its 4xx status; nothing in this module
//! panics on untrusted input (`tests/parser_properties.rs` proves it on
//! arbitrary byte soup).

use std::io::{self, BufRead, Write};

/// Longest accepted request line, bytes (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted header line, bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// Request methods the service understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
}

impl Method {
    /// The method's wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// Every way an incoming request can be rejected. Each variant maps to a
/// definite 4xx status — the parser never panics and never produces a
/// half-validated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The connection closed before a complete request was read.
    Truncated,
    /// The request line exceeded [`MAX_REQUEST_LINE`].
    RequestLineTooLong,
    /// The request line was not `METHOD SP TARGET SP VERSION`.
    MalformedRequestLine,
    /// The method token is not one the service accepts.
    UnsupportedMethod,
    /// The version was not `HTTP/1.0` or `HTTP/1.1`.
    UnsupportedVersion,
    /// A header line exceeded [`MAX_HEADER_LINE`].
    HeaderTooLong,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// A header line had no `:` separator or an empty name.
    MalformedHeader,
    /// `Content-Length` was present but not a valid integer.
    BadContentLength,
    /// The declared (or actual) body exceeds [`MAX_BODY`].
    BodyTooLarge,
    /// `Transfer-Encoding` is not supported; bodies must be
    /// `Content-Length`-framed.
    UnsupportedTransferEncoding,
    /// The target contained an invalid percent-escape or raw control
    /// bytes.
    BadTarget,
    /// The socket failed mid-read (timeout, reset).
    Io,
}

impl RequestError {
    /// The 4xx status this rejection answers with.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::RequestLineTooLong
            | RequestError::HeaderTooLong
            | RequestError::TooManyHeaders => 431,
            RequestError::UnsupportedMethod => 405,
            RequestError::BodyTooLarge => 413,
            RequestError::Io | RequestError::Truncated => 408,
            _ => 400,
        }
    }

    /// Short machine-readable label for the error body.
    pub fn label(&self) -> &'static str {
        match self {
            RequestError::Truncated => "truncated",
            RequestError::RequestLineTooLong => "request_line_too_long",
            RequestError::MalformedRequestLine => "malformed_request_line",
            RequestError::UnsupportedMethod => "unsupported_method",
            RequestError::UnsupportedVersion => "unsupported_version",
            RequestError::HeaderTooLong => "header_too_long",
            RequestError::TooManyHeaders => "too_many_headers",
            RequestError::MalformedHeader => "malformed_header",
            RequestError::BadContentLength => "bad_content_length",
            RequestError::BodyTooLarge => "body_too_large",
            RequestError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
            RequestError::BadTarget => "bad_target",
            RequestError::Io => "io",
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Percent-decoded path (no query string).
    pub path: String,
    /// Decoded query parameters, in wire order.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line of at most `cap` bytes,
/// without the terminator. `Ok(None)` means clean EOF before any byte.
fn read_line_bounded(
    r: &mut impl BufRead,
    cap: usize,
    too_long: RequestError,
) -> Result<Option<Vec<u8>>, RequestError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(RequestError::Truncated);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(line));
                }
                if line.len() >= cap {
                    return Err(too_long);
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(RequestError::Io),
        }
    }
}

/// Decodes `%XX` escapes (and, when `plus_is_space`, `+`) in one
/// URL-encoded component. Rejects bad escapes, raw control bytes, and
/// invalid UTF-8.
fn percent_decode(s: &[u8], plus_is_space: bool) -> Result<String, RequestError> {
    let mut out = Vec::with_capacity(s.len());
    let mut i = 0;
    while i < s.len() {
        match s[i] {
            b'%' => {
                let hi = s.get(i + 1).and_then(|b| (*b as char).to_digit(16));
                let lo = s.get(i + 2).and_then(|b| (*b as char).to_digit(16));
                match (hi, lo) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => return Err(RequestError::BadTarget),
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b if b < 0x20 || b == 0x7f => return Err(RequestError::BadTarget),
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| RequestError::BadTarget)
}

/// Splits and decodes a request target into path + query pairs.
fn parse_target(target: &[u8]) -> Result<(String, Vec<(String, String)>), RequestError> {
    let (path_raw, query_raw) = match target.iter().position(|&b| b == b'?') {
        Some(at) => (&target[..at], Some(&target[at + 1..])),
        None => (target, None),
    };
    if path_raw.is_empty() || path_raw[0] != b'/' {
        return Err(RequestError::BadTarget);
    }
    let path = percent_decode(path_raw, false)?;
    let mut query = Vec::new();
    if let Some(raw) = query_raw {
        for pair in raw.split(|&b| b == b'&') {
            if pair.is_empty() {
                continue;
            }
            let (k, v) = match pair.iter().position(|&b| b == b'=') {
                Some(at) => (&pair[..at], &pair[at + 1..]),
                None => (pair, &[][..]),
            };
            query.push((percent_decode(k, true)?, percent_decode(v, true)?));
        }
    }
    Ok((path, query))
}

/// Parses one request from `r`, enforcing every bound. `Ok(None)` means
/// the peer closed the connection without sending anything.
///
/// # Errors
///
/// Any malformed, oversized, or truncated input yields the corresponding
/// [`RequestError`]; I/O failures map to [`RequestError::Io`].
pub fn parse_request(r: &mut impl BufRead) -> Result<Option<Request>, RequestError> {
    let line = match read_line_bounded(r, MAX_REQUEST_LINE, RequestError::RequestLineTooLong)? {
        None => return Ok(None),
        Some(line) => line,
    };

    let mut parts = line.split(|&b| b == b' ').filter(|p| !p.is_empty());
    let (method_raw, target_raw, version_raw) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(RequestError::MalformedRequestLine),
    };
    if parts.next().is_some() {
        return Err(RequestError::MalformedRequestLine);
    }
    let method = match method_raw {
        b"GET" => Method::Get,
        b"POST" => Method::Post,
        _ => return Err(RequestError::UnsupportedMethod),
    };
    if version_raw != b"HTTP/1.1" && version_raw != b"HTTP/1.0" {
        return Err(RequestError::UnsupportedVersion);
    }
    let (path, query) = parse_target(target_raw)?;

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line_bounded(r, MAX_HEADER_LINE, RequestError::HeaderTooLong)?
            .ok_or(RequestError::Truncated)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::TooManyHeaders);
        }
        let at = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(RequestError::MalformedHeader)?;
        if at == 0 {
            return Err(RequestError::MalformedHeader);
        }
        let name = std::str::from_utf8(&line[..at])
            .map_err(|_| RequestError::MalformedHeader)?
            .trim()
            .to_ascii_lowercase();
        if name.is_empty() || name.contains(' ') {
            return Err(RequestError::MalformedHeader);
        }
        let value = String::from_utf8_lossy(&line[at + 1..]).trim().to_string();
        headers.push((name, value));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(RequestError::UnsupportedTransferEncoding);
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| RequestError::BadContentLength)?,
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(RequestError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(RequestError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(RequestError::Io),
        }
    }

    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// The standard reason phrase for the statuses the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One framed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A CSV response (content-negotiated downloads of sealed artifacts).
    pub fn csv(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type: "text/csv",
            body,
        }
    }

    /// A typed JSON error body: `{"error":label,"detail":...}`.
    pub fn error(status: u16, label: &str, detail: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":{},\"detail\":{}}}",
                crate::json::string(label),
                crate::json::string(detail)
            ),
        )
    }

    /// The response a [`RequestError`] answers with.
    pub fn from_request_error(err: &RequestError) -> Self {
        Self::error(err.status(), err.label(), "request rejected by parser")
    }

    /// Writes the response with framing headers and `Connection: close`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, RequestError> {
        parse_request(&mut &bytes[..])
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse(b"GET /api/v1/jobs?preset=small%20test&seeds=1,2+3 HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/api/v1/jobs");
        assert_eq!(req.query("preset"), Some("small test"));
        assert_eq!(req.query("seeds"), Some("1,2 3"));
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(parse(b"").unwrap(), None);
    }

    #[test]
    fn typed_errors_for_malformed_input() {
        assert_eq!(
            parse(b"GET\r\n\r\n").unwrap_err(),
            RequestError::MalformedRequestLine
        );
        assert_eq!(
            parse(b"PUT / HTTP/1.1\r\n\r\n").unwrap_err(),
            RequestError::UnsupportedMethod
        );
        assert_eq!(
            parse(b"GET / HTTP/2\r\n\r\n").unwrap_err(),
            RequestError::UnsupportedVersion
        );
        assert_eq!(
            parse(b"GET nopath HTTP/1.1\r\n\r\n").unwrap_err(),
            RequestError::BadTarget
        );
        assert_eq!(
            parse(b"GET /%zz HTTP/1.1\r\n\r\n").unwrap_err(),
            RequestError::BadTarget
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nbroken\r\n\r\n").unwrap_err(),
            RequestError::MalformedHeader
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n").unwrap_err(),
            RequestError::BadContentLength
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            RequestError::UnsupportedTransferEncoding
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err(),
            RequestError::Truncated
        );
    }

    #[test]
    fn oversized_inputs_rejected_with_431_and_413() {
        let long_line = [b"GET /".as_slice(), &vec![b'a'; MAX_REQUEST_LINE]].concat();
        assert_eq!(
            parse(&long_line).unwrap_err(),
            RequestError::RequestLineTooLong
        );
        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            many.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(parse(&many).unwrap_err(), RequestError::TooManyHeaders);
        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse(big_body.as_bytes()).unwrap_err();
        assert_eq!(err, RequestError::BodyTooLarge);
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn every_error_status_is_4xx() {
        let all = [
            RequestError::Truncated,
            RequestError::RequestLineTooLong,
            RequestError::MalformedRequestLine,
            RequestError::UnsupportedMethod,
            RequestError::UnsupportedVersion,
            RequestError::HeaderTooLong,
            RequestError::TooManyHeaders,
            RequestError::MalformedHeader,
            RequestError::BadContentLength,
            RequestError::BodyTooLarge,
            RequestError::UnsupportedTransferEncoding,
            RequestError::BadTarget,
            RequestError::Io,
        ];
        for e in all {
            assert!((400..500).contains(&e.status()), "{e:?} -> {}", e.status());
        }
    }

    #[test]
    fn response_frames_with_content_length() {
        let mut out = Vec::new();
        Response::json(200, "{}".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
