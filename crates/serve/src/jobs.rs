//! The sweep job queue: a bounded, deterministic state machine from
//! submission to sealed analysis.
//!
//! Submissions append jobs to a bounded FIFO; worker threads (spawned by
//! [`crate::core::ServiceState`]) claim jobs in submission order, execute
//! them through the shared `ScenarioRunner` (artifact-cache hits replay
//! instead of re-simulating), and seal the result into the analysis LRU.
//! A full queue rejects the submit with a typed error — backpressure is
//! visible to the client as `429`, never an unbounded queue.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

use rsc_sim::runner::ScenarioSpec;

/// Where one job is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is executing (simulating or replaying) it.
    Running,
    /// Sealed: the analysis is served from the LRU / artifact cache.
    Sealed,
    /// Execution failed (the error is preserved verbatim).
    Failed(String),
}

impl JobState {
    /// Machine-readable label used in status JSON.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Sealed => "sealed",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One job's externally visible record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// Service-assigned job id.
    pub id: u64,
    /// Preset label the job was submitted with.
    pub preset: String,
    /// Scenario seed.
    pub seed: u64,
    /// Scenario horizon, days.
    pub days: u64,
    /// Scenario fingerprint (artifact-cache key).
    pub fingerprint: u64,
    /// Current state.
    pub state: JobState,
}

#[derive(Debug)]
struct JobEntry {
    snapshot: JobSnapshot,
    spec: ScenarioSpec,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is at capacity; retry later.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
}

/// Queue-depth counters, surfaced on `/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounts {
    /// Jobs waiting for a worker.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs sealed.
    pub sealed: usize,
    /// Jobs failed.
    pub failed: usize,
    /// Pending-queue capacity.
    pub capacity: usize,
}

#[derive(Debug, Default)]
struct RegistryInner {
    next_id: u64,
    jobs: BTreeMap<u64, JobEntry>,
    pending: VecDeque<u64>,
    shutdown: bool,
}

/// The shared job table plus its bounded pending queue.
#[derive(Debug)]
pub struct JobRegistry {
    inner: Mutex<RegistryInner>,
    ready: Condvar,
    capacity: usize,
}

impl JobRegistry {
    /// A registry whose pending queue holds at most `capacity` jobs.
    pub fn new(capacity: usize) -> Self {
        JobRegistry {
            inner: Mutex::new(RegistryInner::default()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues one job, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the pending queue is at capacity;
    /// [`SubmitError::ShuttingDown`] after [`Self::shutdown`].
    pub fn submit(&self, spec: ScenarioSpec, preset: &str) -> Result<u64, SubmitError> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if inner.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.pending.len() >= self.capacity {
            return Err(SubmitError::QueueFull);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let snapshot = JobSnapshot {
            id,
            preset: preset.to_string(),
            seed: spec.seed,
            days: spec.days,
            fingerprint: spec.fingerprint(),
            state: JobState::Queued,
        };
        inner.jobs.insert(id, JobEntry { snapshot, spec });
        inner.pending.push_back(id);
        self.ready.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available (claiming it as `Running`) or the
    /// registry shuts down (`None`).
    pub fn claim_next(&self) -> Option<(u64, ScenarioSpec)> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        loop {
            if let Some(id) = inner.pending.pop_front() {
                let entry = inner.jobs.get_mut(&id).expect("pending id exists");
                entry.snapshot.state = JobState::Running;
                return Some((id, entry.spec.clone()));
            }
            if inner.shutdown {
                return None;
            }
            inner = self.ready.wait(inner).expect("registry poisoned");
        }
    }

    /// Marks a running job sealed.
    pub fn mark_sealed(&self, id: u64) {
        self.set_state(id, JobState::Sealed);
    }

    /// Marks a running job failed.
    pub fn mark_failed(&self, id: u64, error: String) {
        self.set_state(id, JobState::Failed(error));
    }

    fn set_state(&self, id: u64, state: JobState) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some(entry) = inner.jobs.get_mut(&id) {
            entry.snapshot.state = state;
        }
    }

    /// A job's current record.
    pub fn get(&self, id: u64) -> Option<JobSnapshot> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.jobs.get(&id).map(|e| e.snapshot.clone())
    }

    /// Every job's record, in id (= submission) order.
    pub fn list(&self) -> Vec<JobSnapshot> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.jobs.values().map(|e| e.snapshot.clone()).collect()
    }

    /// Current queue-depth counters.
    pub fn counts(&self) -> QueueCounts {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut counts = QueueCounts {
            capacity: self.capacity,
            ..QueueCounts::default()
        };
        for entry in inner.jobs.values() {
            match entry.snapshot.state {
                JobState::Queued => counts.queued += 1,
                JobState::Running => counts.running += 1,
                JobState::Sealed => counts.sealed += 1,
                JobState::Failed(_) => counts.failed += 1,
            }
        }
        counts
    }

    /// Stops the queue: pending claims return `None`, submissions are
    /// rejected.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.shutdown = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_sim::config::SimConfig;

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec::new(SimConfig::small_test_cluster(), seed, 2)
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let registry = JobRegistry::new(2);
        registry.submit(spec(1), "small_test").unwrap();
        registry.submit(spec(2), "small_test").unwrap();
        assert_eq!(
            registry.submit(spec(3), "small_test"),
            Err(SubmitError::QueueFull)
        );
        // Claiming drains the pending queue, reopening capacity.
        let (id, _) = registry.claim_next().unwrap();
        assert_eq!(id, 0);
        registry.submit(spec(3), "small_test").unwrap();
        assert_eq!(registry.counts().queued, 2);
        assert_eq!(registry.counts().running, 1);
    }

    #[test]
    fn lifecycle_and_listing() {
        let registry = JobRegistry::new(4);
        let id = registry.submit(spec(5), "small_test").unwrap();
        assert_eq!(registry.get(id).unwrap().state, JobState::Queued);
        let (claimed, claimed_spec) = registry.claim_next().unwrap();
        assert_eq!(claimed, id);
        assert_eq!(claimed_spec.seed, 5);
        assert_eq!(registry.get(id).unwrap().state, JobState::Running);
        registry.mark_sealed(id);
        assert_eq!(registry.get(id).unwrap().state, JobState::Sealed);
        assert_eq!(registry.list().len(), 1);
    }

    #[test]
    fn shutdown_unblocks_claims_and_rejects_submissions() {
        let registry = JobRegistry::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| registry.claim_next());
            std::thread::sleep(std::time::Duration::from_millis(20));
            registry.shutdown();
            assert_eq!(waiter.join().unwrap(), None);
        });
        assert_eq!(
            registry.submit(spec(1), "small_test"),
            Err(SubmitError::ShuttingDown)
        );
    }
}
