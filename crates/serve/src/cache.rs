//! An in-memory LRU of sealed analyses over the on-disk artifact cache.
//!
//! The service's hot read path — `GET .../analysis` — serves the
//! pre-rendered JSON of a sealed scenario. The LRU keeps the most
//! recently requested analyses resident (fingerprint-keyed, shared
//! `Arc`s, so N concurrent readers clone a pointer, not bytes); misses
//! fall back to the snapshot on disk, which is replayed through the
//! monitor and re-inserted. Eviction is strictly least-recently-used and
//! the capacity bounds resident analyses, not bytes — entries are small
//! (one report JSON plus the alert log) next to the views they summarize.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rsc_monitor::report::MonitorReport;

/// One sealed scenario's served artifacts: the canonical analysis JSON
/// (the byte-identity unit of the determinism contract) plus the report
/// it was rendered from.
#[derive(Debug)]
pub struct SealedAnalysis {
    /// The scenario fingerprint.
    pub fingerprint: u64,
    /// Canonical analysis JSON, served verbatim to every client.
    pub json: Arc<str>,
    /// The monitor report the JSON renders.
    pub report: MonitorReport,
}

impl SealedAnalysis {
    /// Renders the canonical analysis body for a report: the scenario
    /// fingerprint wrapping the monitor report. Everything inside comes
    /// from the sealed view plus the service's monitor config, so live
    /// execution, cache replay, and disk reload all render identical
    /// bytes.
    pub fn new(fingerprint: u64, report: MonitorReport) -> Self {
        let json = crate::json::Object::new()
            .field(
                "fingerprint",
                &crate::json::string(&format!("{fingerprint:016x}")),
            )
            .field("report", &report.to_json())
            .finish();
        SealedAnalysis {
            fingerprint,
            json: json.into(),
            report,
        }
    }
}

/// LRU counters, surfaced on `/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct LruInner {
    map: HashMap<u64, Arc<SealedAnalysis>>,
    /// Keys from least- to most-recently used.
    order: Vec<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe LRU of [`SealedAnalysis`] keyed by fingerprint.
#[derive(Debug)]
pub struct AnalysisCache {
    inner: Mutex<LruInner>,
    capacity: usize,
}

impl AnalysisCache {
    /// A cache holding at most `capacity` analyses.
    pub fn new(capacity: usize) -> Self {
        AnalysisCache {
            inner: Mutex::new(LruInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Looks up a fingerprint, refreshing its recency on hit.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<SealedAnalysis>> {
        let mut inner = self.inner.lock().expect("lru poisoned");
        match inner.map.get(&fingerprint).cloned() {
            Some(hit) => {
                inner.hits += 1;
                inner.order.retain(|&k| k != fingerprint);
                inner.order.push(fingerprint);
                Some(hit)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an analysis, evicting the least recently
    /// used entries beyond capacity.
    pub fn insert(&self, analysis: Arc<SealedAnalysis>) {
        let mut inner = self.inner.lock().expect("lru poisoned");
        let key = analysis.fingerprint;
        inner.order.retain(|&k| k != key);
        inner.order.push(key);
        inner.map.insert(key, analysis);
        while inner.map.len() > self.capacity {
            let victim = inner.order.remove(0);
            inner.map.remove(&victim);
            inner.evictions += 1;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> LruStats {
        let inner = self.inner.lock().expect("lru poisoned");
        LruStats {
            entries: inner.map.len(),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_monitor::config::MonitorConfig;
    use rsc_monitor::monitor::ReliabilityMonitor;

    fn analysis(fp: u64) -> Arc<SealedAnalysis> {
        let report = ReliabilityMonitor::new(MonitorConfig::rsc_default()).report();
        Arc::new(SealedAnalysis::new(fp, report))
    }

    #[test]
    fn canonical_json_embeds_fingerprint_and_report() {
        let a = analysis(0xabcd);
        assert!(a.json.starts_with("{\"fingerprint\":\"000000000000abcd\""));
        assert!(a.json.contains("\"report\":{"));
        assert!(a.json.ends_with('}'));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = AnalysisCache::new(2);
        cache.insert(analysis(1));
        cache.insert(analysis(2));
        assert!(cache.get(1).is_some()); // refresh 1: now 2 is LRU
        cache.insert(analysis(3));
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
    }
}
