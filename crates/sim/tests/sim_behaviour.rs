//! End-to-end behavioural tests of the cluster simulation.

use rsc_sched::job::JobStatus;
use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::SimDuration;

fn small_run(days: u64, seed: u64) -> rsc_telemetry::store::TelemetryStore {
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), seed);
    sim.run(SimDuration::from_days(days));
    sim.into_telemetry()
}

#[test]
fn simulation_is_deterministic() {
    let a = small_run(5, 42);
    let b = small_run(5, 42);
    assert_eq!(a.jobs().len(), b.jobs().len());
    assert_eq!(a.health_events().len(), b.health_events().len());
    assert_eq!(
        a.ground_truth_failures().len(),
        b.ground_truth_failures().len()
    );
    for (x, y) in a.jobs().zip(b.jobs()) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_diverge() {
    let a = small_run(5, 1);
    let b = small_run(5, 2);
    assert_ne!(a.jobs().len(), b.jobs().len());
}

#[test]
fn most_jobs_complete() {
    let t = small_run(10, 7);
    let total = t.jobs().len() as f64;
    assert!(
        total > 1000.0,
        "expected a busy cluster, got {total} records"
    );
    let completed = t
        .jobs()
        .filter(|r| r.status == JobStatus::Completed)
        .count() as f64;
    let frac = completed / total;
    assert!(
        (0.45..0.75).contains(&frac),
        "completed fraction {frac} out of range"
    );
}

#[test]
fn user_failures_present() {
    let t = small_run(10, 7);
    let failed = t.jobs().filter(|r| r.status == JobStatus::Failed).count() as f64;
    let frac = failed / t.jobs().len() as f64;
    assert!((0.1..0.4).contains(&frac), "failed fraction {frac}");
}

#[test]
fn hardware_failures_generate_health_events_and_requeues() {
    let t = small_run(30, 9);
    assert!(
        !t.ground_truth_failures().is_empty(),
        "30 node-months should see failures"
    );
    assert!(!t.health_events().is_empty());
    // Some jobs should have been hit: NODE_FAIL or REQUEUED statuses exist.
    let interrupted = t
        .jobs()
        .filter(|r| matches!(r.status, JobStatus::NodeFail | JobStatus::Requeued))
        .count();
    assert!(interrupted > 0, "no infra-interrupted jobs");
    // Requeued jobs keep their id: find one id with multiple attempts.
    let has_multi_attempt = t.jobs().any(|r| r.attempt > 0);
    assert!(has_multi_attempt);
}

#[test]
fn node_events_balance() {
    use rsc_telemetry::store::NodeEventKind;
    let t = small_run(30, 11);
    let enters = t
        .node_events()
        .filter(|e| e.kind == NodeEventKind::EnterRemediation)
        .count();
    let exits = t
        .node_events()
        .filter(|e| e.kind == NodeEventKind::ExitRemediation)
        .count();
    assert!(enters > 0);
    // Every exit has a prior enter; some repairs may still be pending at the
    // horizon.
    assert!(exits <= enters);
    assert!(enters - exits <= 64, "too many nodes stuck in remediation");
}

#[test]
fn utilization_is_high() {
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 13);
    sim.run(SimDuration::from_days(10));
    let util = sim.mean_utilization();
    assert!(util > 0.5, "utilization {util} too low");
    assert!(util <= 1.0);
}

#[test]
fn preemptions_occur_under_contention() {
    let t = small_run(15, 17);
    let preempted = t
        .jobs()
        .filter(|r| r.status == JobStatus::Preempted)
        .count();
    assert!(preempted > 0, "no preemptions in a congested cluster");
    // Preempted records carry their preemptor.
    assert!(t
        .jobs()
        .filter(|r| r.status == JobStatus::Preempted)
        .all(|r| r.preempted_by.is_some()));
}

#[test]
fn timeouts_and_cancels_appear() {
    let t = small_run(15, 19);
    let statuses: Vec<JobStatus> = t.jobs().map(|r| r.status).collect();
    assert!(statuses.contains(&JobStatus::Timeout));
    assert!(statuses.contains(&JobStatus::Cancelled));
}

#[test]
fn lemon_nodes_fail_more() {
    let mut config = SimConfig::small_test_cluster();
    config.lemon_count = 4;
    let mut sim = ClusterSim::new(config, 23);
    let lemon_ids: Vec<_> = sim.lemons().node_ids();
    assert_eq!(lemon_ids.len(), 4);
    sim.run(SimDuration::from_days(45));
    let t = sim.into_telemetry();
    let lemon_failures = t
        .ground_truth_failures()
        .filter(|f| lemon_ids.contains(&f.node))
        .count() as f64
        / lemon_ids.len() as f64;
    let other_failures = t
        .ground_truth_failures()
        .filter(|f| !lemon_ids.contains(&f.node))
        .count() as f64
        / (64 - lemon_ids.len()) as f64;
    assert!(
        lemon_failures > 3.0 * other_failures,
        "lemons {lemon_failures}/node vs healthy {other_failures}/node"
    );
}

#[test]
fn run_extends_incrementally() {
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 29);
    sim.run(SimDuration::from_days(2));
    let after2 = sim.run(SimDuration::from_days(2)).jobs().len();
    let mut sim2 = ClusterSim::new(SimConfig::small_test_cluster(), 29);
    let straight4 = sim2.run(SimDuration::from_days(4)).jobs().len();
    assert_eq!(after2, straight4);
}

#[test]
fn attached_observer_leaves_telemetry_byte_identical() {
    use rsc_sim::bus::{CountingObserver, SharedObserver};
    use rsc_telemetry::snapshot::write_snapshot;

    let baseline = small_run(5, 31).seal();

    let handle = SharedObserver::new(CountingObserver::default());
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 31);
    sim.attach_observer(Box::new(handle.clone()));
    sim.run(SimDuration::from_days(5));
    let observed = sim.into_telemetry().seal();

    let mut a = Vec::new();
    let mut b = Vec::new();
    write_snapshot(&mut a, &baseline).unwrap();
    write_snapshot(&mut b, &observed).unwrap();
    assert_eq!(a, b, "observer changed the serialized telemetry");
}

#[test]
fn observer_sees_consistent_event_counts() {
    use rsc_sim::bus::{CountingObserver, SharedObserver};

    let handle = SharedObserver::new(CountingObserver::default());
    let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 37);
    sim.attach_observer(Box::new(handle.clone()));
    sim.run(SimDuration::from_days(5));
    let view = sim.into_telemetry().seal();
    let counts = handle.with(|c| *c);

    assert_eq!(counts.jobs as usize, view.jobs().len());
    assert_eq!(counts.health as usize, view.health_events().len());
    assert_eq!(counts.node as usize, view.node_events().len());
    assert_eq!(counts.exclusions as usize, view.exclusions().len());
    assert_eq!(
        counts.ground_truth as usize,
        view.ground_truth_failures().len()
    );
    assert_eq!(counts.ckpt_fallbacks as usize, view.ckpt_fallbacks().len());
    // A D-day run sweeps at days 1..D-1: the driver's loop exits before
    // the sweep scheduled exactly at the horizon fires.
    assert_eq!(counts.ticks, 4);
    assert!(counts.jobs > 0 && counts.health > 0);
}
