//! Targeted tests of the driver's failure-handling paths: hang detection,
//! check-rollout restart loops, drain semantics, and lemon dynamics.

use rsc_failure::modes::ModeCatalog;
use rsc_failure::taxonomy::FailureSymptom;
use rsc_health::registry::CheckRegistry;
use rsc_sched::job::JobStatus;
use rsc_sim::config::{EraPreset, SimConfig};
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::store::NodeEventKind;

/// A config whose only failure mode is the given symptom, at a high rate
/// so short runs see plenty of events.
fn single_mode_config(symptom: FailureSymptom, rate: f64) -> SimConfig {
    let mut config = SimConfig::small_test_cluster();
    let base = ModeCatalog::rsc1();
    let spec = base
        .iter()
        .find(|(_, m)| m.symptom == symptom)
        .map(|(_, m)| m.clone())
        .expect("mode exists");
    config.modes = ModeCatalog::new(vec![rsc_failure::modes::ModeSpec {
        rate_per_node_day: rate,
        ..spec
    }]);
    config.eras = EraPreset::None;
    config
}

#[test]
fn hangs_surface_as_node_fail_after_heartbeat() {
    // The NcclTimeout mode is unobservable: only the scheduler heartbeat
    // catches it, producing NODE_FAIL records and remediation.
    let config = single_mode_config(FailureSymptom::NcclTimeout, 0.05);
    let mut sim = ClusterSim::new(config, 7);
    sim.run(SimDuration::from_days(20));
    let store = sim.into_telemetry();
    let node_fails = store
        .jobs()
        .filter(|r| r.status == JobStatus::NodeFail)
        .count();
    assert!(node_fails > 0, "hangs should produce NODE_FAIL records");
    // No health check can see these failures.
    assert!(store
        .health_events()
        .all(|e| e.false_positive || e.signal.is_some()));
    let hang_detected = store
        .node_events()
        .filter(|e| e.kind == NodeEventKind::EnterRemediation)
        .count();
    assert!(hang_detected > 0, "hung nodes should be pulled for repair");
}

#[test]
fn high_severity_mode_requeues_jobs() {
    // IB link failures are high severity: jobs are killed immediately with
    // REQUEUED status and restart under the same id.
    let config = single_mode_config(FailureSymptom::InfinibandLink, 0.05);
    let mut sim = ClusterSim::new(config, 8);
    sim.run(SimDuration::from_days(20));
    let store = sim.into_telemetry();
    let requeued: Vec<_> = store
        .jobs()
        .filter(|r| r.status == JobStatus::Requeued)
        .collect();
    assert!(!requeued.is_empty());
    // Each requeued attempt should be followed by a later attempt of the
    // same job id.
    let followed_up = requeued.iter().take(20).filter(|r| {
        store
            .jobs()
            .any(|other| other.job == r.job && other.attempt == r.attempt + 1)
    });
    assert!(followed_up.count() > 0);
}

#[test]
fn pre_rollout_faults_become_visible_at_rollout() {
    // Filesystem-mount failures are invisible before the FS-mount check
    // ships at day 100 (per the default registry): they appear only as
    // unattributed crashes; afterwards the check fires.
    let config = single_mode_config(FailureSymptom::FilesystemMount, 0.02);
    let mut sim = ClusterSim::new(config, 9);
    sim.run(SimDuration::from_days(160));
    let store = sim.into_telemetry();
    let before_rollout = store
        .health_events()
        .filter(|e| !e.false_positive && e.at < rsc_sim_core::time::SimTime::from_days(100))
        .count();
    let after_rollout = store
        .health_events()
        .filter(|e| !e.false_positive && e.at >= rsc_sim_core::time::SimTime::from_days(100))
        .count();
    assert_eq!(before_rollout, 0, "no check should fire before rollout");
    assert!(after_rollout > 0, "the rolled-out check should fire");
}

#[test]
fn ideal_checks_eliminate_unattributed_gaps() {
    // With every check live from day 0 and no misses, every observable
    // failure produces a health event.
    let mut config = single_mode_config(FailureSymptom::PcieError, 0.03);
    config.registry = CheckRegistry::ideal();
    let mut sim = ClusterSim::new(config, 10);
    sim.run(SimDuration::from_days(15));
    let store = sim.into_telemetry();
    let ground_truth = store.ground_truth_failures().len();
    assert!(ground_truth > 0);
    // At least one check event per observed failure (PCIe raises 1–3).
    assert!(store.health_events().len() >= ground_truth);
}

#[test]
fn lemons_repair_fast_and_keep_failing() {
    let mut config = SimConfig::small_test_cluster();
    config.lemon_count = 2;
    let mut sim = ClusterSim::new(config, 11);
    let lemon_ids = sim.lemons().node_ids();
    sim.run(SimDuration::from_days(90));
    let store = sim.into_telemetry();
    // Lemons fail repeatedly across the run (defect survives repair).
    let mut total = 0;
    for lemon in &lemon_ids {
        let failures = store
            .ground_truth_failures()
            .filter(|f| f.node == *lemon)
            .count();
        total += failures;
        assert!(failures >= 2, "lemon {lemon} failed only {failures} times");
        // And their failures are all transient from the shop's view.
        assert!(store
            .ground_truth_failures()
            .filter(|f| f.node == *lemon)
            .all(|f| !f.permanent));
    }
    assert!(
        total >= 8,
        "lemons should fail often in aggregate, got {total}"
    );
}

#[test]
fn drained_nodes_enter_remediation_after_jobs_leave() {
    // GSP timeouts are low severity: nodes drain, then remediate.
    let config = single_mode_config(FailureSymptom::GspTimeout, 0.05);
    let mut sim = ClusterSim::new(config, 12);
    sim.run(SimDuration::from_days(30));
    let store = sim.into_telemetry();
    let drains = store
        .node_events()
        .filter(|e| e.kind == NodeEventKind::Drain)
        .count();
    // GSP check rolls out at day 45; before that the failures are
    // invisible. Run 30 days → no drains; extend past rollout instead.
    let _ = drains;
    let mut sim2 = ClusterSim::new(single_mode_config(FailureSymptom::GspTimeout, 0.05), 12);
    sim2.run(SimDuration::from_days(80));
    let store2 = sim2.into_telemetry();
    let drains2 = store2
        .node_events()
        .filter(|e| e.kind == NodeEventKind::Drain)
        .count();
    assert!(drains2 > 0, "low-severity detections should drain nodes");
    // Every drain is eventually followed by remediation or the horizon.
    let remediations = store2
        .node_events()
        .filter(|e| e.kind == NodeEventKind::EnterRemediation)
        .count();
    assert!(remediations > 0);
}
