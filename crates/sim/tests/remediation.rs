//! End-to-end tests of the fallible-remediation lifecycle through the
//! driver: the disabled path stays on the v1 telemetry surface, the
//! fallible path degrades availability monotonically in repair-failure
//! probability, quarantined nodes feed lemon detection, and fallible
//! telemetry round-trips through the v2 snapshot codec.

use rsc_core::availability::fleet_availability;
use rsc_core::lemon::compute_features;
use rsc_health::lifecycle::RemediationPolicy;
use rsc_sim::config::SimConfig;
use rsc_sim::driver::ClusterSim;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_storage::checkpoint::CheckpointFallbackPolicy;
use rsc_telemetry::snapshot::{read_snapshot, write_snapshot, write_snapshot_legacy};
use rsc_telemetry::store::NodeEventKind;
use rsc_telemetry::view::TelemetryView;

fn run(config: SimConfig, days: u64, seed: u64) -> TelemetryView {
    let mut sim = ClusterSim::new(config, seed);
    sim.run(SimDuration::from_days(days));
    sim.into_telemetry().seal()
}

fn fallible(p: f64) -> SimConfig {
    let mut config = SimConfig::small_test_cluster();
    config.remediation = RemediationPolicy::rsc_default().with_failure_prob(p);
    config.ckpt_fallback = CheckpointFallbackPolicy::rsc_default();
    config
}

/// With the default (infallible) policy the simulation must stay on the v1
/// telemetry surface: no lifecycle event kinds, no checkpoint fallbacks,
/// and a legacy-format snapshot that still carries the v1 magic — so
/// disabled-path artifacts written for pre-lifecycle consumers stay
/// byte-compatible. The current writer frames the same view as v3.
#[test]
fn default_config_stays_on_v1_surface() {
    let config = SimConfig::small_test_cluster();
    assert!(config.remediation.is_infallible());
    assert!(!config.ckpt_fallback.is_enabled());
    let view = run(config, 5, 42);
    assert!(view.node_events().iter().all(|e| e.kind.is_v1()));
    assert!(view.ckpt_fallbacks().is_empty());
    let mut bytes = Vec::new();
    write_snapshot_legacy(&mut bytes, &view).expect("snapshot writes");
    let text = String::from_utf8(bytes).expect("snapshot is utf-8");
    assert!(
        text.starts_with("rsc-telemetry-snapshot v1"),
        "disabled-path legacy snapshot must keep the v1 magic"
    );
    let mut current = Vec::new();
    write_snapshot(&mut current, &view).expect("snapshot writes");
    let current = String::from_utf8(current).expect("snapshot is utf-8");
    assert!(current.starts_with("rsc-telemetry-snapshot v3"));
}

/// The fallible path and the legacy path are the same simulation when the
/// policy is infallible: flipping only the probation/success knobs changes
/// telemetry, but `infallible()` must reproduce the default run exactly.
#[test]
fn explicit_infallible_policy_is_byte_identical_to_default() {
    let mut explicit = SimConfig::small_test_cluster();
    explicit.remediation = RemediationPolicy::infallible();
    explicit.ckpt_fallback = CheckpointFallbackPolicy::disabled();
    let a = run(SimConfig::small_test_cluster(), 5, 42);
    let b = run(explicit, 5, 42);
    let mut bytes_a = Vec::new();
    let mut bytes_b = Vec::new();
    write_snapshot(&mut bytes_a, &a).expect("snapshot writes");
    write_snapshot(&mut bytes_b, &b).expect("snapshot writes");
    assert_eq!(bytes_a, bytes_b);
}

/// Availability falls as repairs get less likely to work: every failed
/// attempt stretches the node's remediation interval by backoff and
/// escalation. Averaged over seeds to keep the comparison about the
/// policy, not one RNG trajectory.
#[test]
fn availability_falls_with_repair_failure_probability() {
    let seeds = [11u64, 12, 13];
    let mean_availability = |p: f64| {
        let total: f64 = seeds
            .iter()
            .map(|&s| fleet_availability(&run(fallible(p), 10, s)).fleet_availability)
            .sum();
        total / seeds.len() as f64
    };
    let lo = mean_availability(0.0);
    let mid = mean_availability(0.5);
    let hi = mean_availability(0.9);
    assert!(
        lo > mid && mid > hi,
        "availability must fall in p: {lo:.5} / {mid:.5} / {hi:.5}"
    );
}

/// A harsh policy (tiny budget, near-certain attempt failure) quarantines
/// nodes, and every quarantined node surfaces in the lemon detector's
/// input features with ticket churn and an out-count.
#[test]
fn quarantined_nodes_feed_lemon_features() {
    let mut config = fallible(0.95);
    config.remediation.max_total_attempts = 3;
    let view = run(config, 10, 7);
    let quarantined: Vec<_> = view
        .node_events()
        .iter()
        .filter(|e| e.kind == NodeEventKind::Quarantined)
        .map(|e| e.node)
        .collect();
    assert!(
        !quarantined.is_empty(),
        "a 3-attempt budget at p=0.95 must quarantine nodes"
    );
    let features = compute_features(&view, SimTime::ZERO, view.horizon());
    for node in &quarantined {
        let f = features
            .iter()
            .find(|f| f.node == *node)
            .expect("quarantined node present in lemon features");
        assert!(f.tickets > 0, "quarantine must count as ticket churn");
        assert!(f.out_count > 0, "quarantined node was taken out of service");
    }
}

/// Fallible-path telemetry (lifecycle events + checkpoint fallbacks)
/// round-trips bit-exactly through both the current (v3, hash-chained)
/// codec and the legacy v2 codec.
#[test]
fn fallible_telemetry_round_trips_through_snapshot() {
    let mut config = fallible(0.6);
    // Corrupt checkpoints aggressively so the short window is guaranteed
    // to exercise the fallback section of the codec.
    config.ckpt_fallback.corrupt_prob = 0.5;
    let view = run(config, 10, 21);
    assert!(
        view.node_events().iter().any(|e| !e.kind.is_v1()),
        "fallible run should emit lifecycle events"
    );
    assert!(
        !view.ckpt_fallbacks().is_empty(),
        "fallible run should emit checkpoint fallbacks"
    );
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &view).expect("snapshot writes");
    let text = String::from_utf8(bytes.clone()).expect("snapshot is utf-8");
    assert!(text.starts_with("rsc-telemetry-snapshot v3"));
    let restored = read_snapshot(&bytes[..]).expect("snapshot reads back");
    let mut bytes2 = Vec::new();
    write_snapshot(&mut bytes2, &restored).expect("snapshot rewrites");
    assert_eq!(bytes, bytes2);
    // The legacy writer still frames this content as v2 and round-trips.
    let mut legacy = Vec::new();
    write_snapshot_legacy(&mut legacy, &view).expect("snapshot writes");
    let legacy_text = String::from_utf8(legacy.clone()).expect("snapshot is utf-8");
    assert!(legacy_text.starts_with("rsc-telemetry-snapshot v2"));
    let legacy_restored = read_snapshot(&legacy[..]).expect("legacy reads back");
    let mut legacy2 = Vec::new();
    write_snapshot_legacy(&mut legacy2, &legacy_restored).expect("legacy rewrites");
    assert_eq!(legacy, legacy2);
}

/// Quarantine is terminal in the driver too: a quarantined node never
/// re-enters service, so its remediation interval stays open and there is
/// no ExitRemediation after the Quarantined event.
#[test]
fn quarantine_is_terminal_in_the_driver() {
    let mut config = fallible(0.95);
    config.remediation.max_total_attempts = 3;
    let view = run(config, 10, 7);
    let mut quarantined_at: std::collections::HashMap<_, SimTime> = Default::default();
    for e in view.node_events() {
        if e.kind == NodeEventKind::Quarantined {
            quarantined_at.entry(e.node).or_insert(e.at);
        }
    }
    assert!(!quarantined_at.is_empty());
    for e in view.node_events() {
        if let Some(at) = quarantined_at.get(&e.node) {
            assert!(
                e.at <= *at || e.kind != NodeEventKind::ExitRemediation,
                "node {:?} exited remediation after quarantine",
                e.node
            );
        }
    }
}
