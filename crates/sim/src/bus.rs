//! The simulation event bus: a zero-copy observer hook over the driver's
//! telemetry streams.
//!
//! [`ClusterSim`](crate::driver::ClusterSim) records everything it does in
//! a [`rsc_telemetry::TelemetryStore`]; the bus mirrors each record to any
//! attached [`SimObserver`] *at the simulated instant it is produced*, so
//! online consumers (the `rsc-monitor` crate's streaming estimators, live
//! dashboards, alerting) see the run as a stream instead of a sealed
//! post-run view.
//!
//! Observers are strictly passive: they receive borrowed events, never
//! touch the simulation RNG, and are consulted only when at least one is
//! attached — the default path (no observers) performs a single
//! `is_empty()` check per record and produces byte-identical telemetry to
//! builds that predate the bus. `rsc-sim/tests/sim_behaviour.rs` proves
//! the attached path changes nothing either.

use rsc_failure::injector::FailureEvent;
use rsc_health::monitor::HealthEvent;
use rsc_sched::accounting::JobRecord;
use rsc_sim_core::time::SimTime;
use rsc_telemetry::store::{
    CheckpointFallbackEvent, ControlActionEvent, ExclusionEvent, NodeEvent,
};

/// One item of the simulation's event stream, borrowed from the driver at
/// the moment the corresponding telemetry record is appended.
#[derive(Debug, Clone, Copy)]
pub enum SimEvent<'a> {
    /// The run is starting (sent once, when the observer is attached).
    Start {
        /// Cluster name (matches the telemetry store's).
        cluster: &'a str,
        /// Number of nodes in the cluster.
        num_nodes: u32,
    },
    /// A job attempt reached a terminal state. Job records are flushed
    /// from scheduler accounting at each daily sweep (and once more at the
    /// end of the run), so a record arrives at the first sweep at or after
    /// its `ended_at`, carrying its own timestamps.
    Job(&'a JobRecord),
    /// A health check fired (real detection or false positive).
    Health(&'a HealthEvent),
    /// A node lifecycle transition.
    Node(&'a NodeEvent),
    /// A user excluded a node after a job failure.
    Exclusion(&'a ExclusionEvent),
    /// A ground-truth failure injection (not operator-visible in
    /// production; carried on the bus so validation-side consumers can
    /// measure detection latency).
    GroundTruth(&'a FailureEvent),
    /// A restarting job fell back to an older checkpoint.
    CkptFallback(&'a CheckpointFallbackEvent),
    /// The control plane actuated (or budget-rejected) a mitigation. Only
    /// closed-loop runs — a driver with a command queue attached and a
    /// controller issuing commands — ever produce this variant.
    ControlAction(&'a ControlActionEvent),
    /// The daily housekeeping sweep ran: a natural cadence for windowed
    /// re-evaluation. All job records with `ended_at <= now` have been
    /// delivered by the time the tick arrives.
    Tick {
        /// Current simulated time.
        now: SimTime,
    },
    /// The run (or one `run()` segment) finished; final accounting has
    /// been flushed.
    Finish {
        /// The measurement horizon.
        horizon: SimTime,
        /// Cumulative GPU swaps performed by repairs.
        gpu_swaps: u64,
    },
}

impl SimEvent<'_> {
    /// The simulated time this event is anchored at, when it has one.
    pub fn at(&self) -> Option<SimTime> {
        match self {
            SimEvent::Start { .. } => None,
            SimEvent::Job(r) => Some(r.ended_at),
            SimEvent::Health(e) => Some(e.at),
            SimEvent::Node(e) => Some(e.at),
            SimEvent::Exclusion(e) => Some(e.at),
            SimEvent::GroundTruth(e) => Some(e.at),
            SimEvent::CkptFallback(e) => Some(e.at),
            SimEvent::ControlAction(e) => Some(e.at),
            SimEvent::Tick { now } => Some(*now),
            SimEvent::Finish { horizon, .. } => Some(*horizon),
        }
    }
}

/// A passive consumer of the simulation event stream.
///
/// Implementations must not assume they see every run from the start:
/// [`SimEvent::Start`] is delivered on attach, which may happen mid-run.
/// Observers are called synchronously from the driver's hot path — keep
/// per-event work O(1)-amortized and defer heavy evaluation to
/// [`SimEvent::Tick`].
pub trait SimObserver: Send {
    /// Receives one event.
    fn on_event(&mut self, event: &SimEvent<'_>);
}

/// A trivial observer that counts events — useful for tests and overhead
/// measurements of the bus itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingObserver {
    /// Events received, by coarse category, in declaration order:
    /// jobs, health, node, exclusion, ground truth, fallback, ticks.
    pub jobs: u64,
    /// Health events received.
    pub health: u64,
    /// Node lifecycle events received.
    pub node: u64,
    /// Exclusions received.
    pub exclusions: u64,
    /// Ground-truth injections received.
    pub ground_truth: u64,
    /// Checkpoint fallbacks received.
    pub ckpt_fallbacks: u64,
    /// Control actions received.
    pub control_actions: u64,
    /// Daily ticks received.
    pub ticks: u64,
}

impl SimObserver for CountingObserver {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        match event {
            SimEvent::Start { .. } | SimEvent::Finish { .. } => {}
            SimEvent::Job(_) => self.jobs += 1,
            SimEvent::Health(_) => self.health += 1,
            SimEvent::Node(_) => self.node += 1,
            SimEvent::Exclusion(_) => self.exclusions += 1,
            SimEvent::GroundTruth(_) => self.ground_truth += 1,
            SimEvent::CkptFallback(_) => self.ckpt_fallbacks += 1,
            SimEvent::ControlAction(_) => self.control_actions += 1,
            SimEvent::Tick { .. } => self.ticks += 1,
        }
    }
}

/// A shared handle wrapping an observer so the caller can keep access to
/// it while the simulation owns the attached half.
///
/// The driver takes observers by `Box<dyn SimObserver>`; wrapping state in
/// `SharedObserver` lets callers read results after the run without
/// downcasting:
///
/// ```
/// use rsc_sim::bus::{CountingObserver, SharedObserver};
/// use rsc_sim::config::SimConfig;
/// use rsc_sim::driver::ClusterSim;
/// use rsc_sim_core::time::SimDuration;
///
/// let handle = SharedObserver::new(CountingObserver::default());
/// let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 7);
/// sim.attach_observer(Box::new(handle.clone()));
/// sim.run(SimDuration::from_days(2));
/// assert!(handle.with(|c| c.jobs) > 0);
/// ```
#[derive(Debug, Default)]
pub struct SharedObserver<T>(std::sync::Arc<std::sync::Mutex<T>>);

impl<T> Clone for SharedObserver<T> {
    fn clone(&self) -> Self {
        SharedObserver(std::sync::Arc::clone(&self.0))
    }
}

impl<T> SharedObserver<T> {
    /// Wraps an observer in a shared handle.
    pub fn new(inner: T) -> Self {
        SharedObserver(std::sync::Arc::new(std::sync::Mutex::new(inner)))
    }

    /// Runs `f` against the wrapped observer.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned (an observer panicked mid-event).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.lock().expect("observer lock poisoned"))
    }

    /// Unwraps the inner observer if this is the last handle, otherwise
    /// returns `self` back.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when other handles are still alive.
    pub fn try_into_inner(self) -> Result<T, Self> {
        match std::sync::Arc::try_unwrap(self.0) {
            Ok(mutex) => Ok(mutex.into_inner().expect("observer lock poisoned")),
            Err(arc) => Err(SharedObserver(arc)),
        }
    }
}

impl<T: SimObserver> SimObserver for SharedObserver<T> {
    fn on_event(&mut self, event: &SimEvent<'_>) {
        self.0
            .lock()
            .expect("observer lock poisoned")
            .on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::NodeId;
    use rsc_telemetry::store::NodeEventKind;

    #[test]
    fn event_times_are_exposed() {
        let node_event = NodeEvent {
            node: NodeId::new(1),
            at: SimTime::from_hours(3),
            kind: NodeEventKind::Drain,
        };
        assert_eq!(
            SimEvent::Node(&node_event).at(),
            Some(SimTime::from_hours(3))
        );
        assert_eq!(
            SimEvent::Start {
                cluster: "c",
                num_nodes: 4
            }
            .at(),
            None
        );
    }

    #[test]
    fn shared_observer_counts_through_handle() {
        let handle = SharedObserver::new(CountingObserver::default());
        let mut attached: Box<dyn SimObserver> = Box::new(handle.clone());
        attached.on_event(&SimEvent::Tick {
            now: SimTime::from_days(1),
        });
        assert_eq!(handle.with(|c| c.ticks), 1);
        drop(attached);
        let inner = handle.try_into_inner().expect("last handle");
        assert_eq!(inner.ticks, 1);
    }
}
