//! Shard-compute / merge-apply decomposition of the driver's failure phase.
//!
//! The driver's `handle` phase dominates large-fleet runs. Its per-failure
//! work splits cleanly in two:
//!
//! - a **pure compute** part — attributing the failure to a mode spec
//!   (observable / severity / component scalars) and masking permanence
//!   through the lemon set — which reads only immutable, whole-run state
//!   (the mode catalog and the planted lemons); and
//! - a **stateful apply** part — ground-truth telemetry, signal expansion,
//!   health checks, scheduler interrupts — which reads and mutates live
//!   cluster state and draws from the simulation RNG.
//!
//! [`compute_plans`] performs the pure part for a whole look-ahead batch at
//! once, sharded by contiguous node-id ranges (pods are contiguous id
//! ranges, so whole pods land in one shard) across scoped worker threads —
//! the same discipline as the pod-sharded parallel seal in
//! `rsc_telemetry::view`. Each worker scans the full batch but fills only
//! the output slots of its own nodes, so the merged plan vector is
//! *positionally* identical to a serial computation for every worker count,
//! including 1. The driver then applies plans one at a time, in the exact
//! chronological order the sequential loop would have processed them,
//! drawing all simulation RNG at apply time — so RNG streams, bus delivery
//! order, and sealed telemetry bytes are bitwise unchanged.
//!
//! Why look-ahead is sound: the failure injector's draws live on a private
//! RNG stream, and `FailureInjector::next_before`'s limit only gates when a
//! candidate is *exposed*, never what is drawn. Attributing a batch of
//! future failures eagerly therefore consumes the injector stream in
//! exactly the sequential order, and a plan waits in the buffer until the
//! driver's clock actually reaches it — queued events and job submissions
//! that land in between still interleave exactly as before.

use rsc_cluster::component::ComponentKind;
use rsc_failure::injector::FailureEvent;
use rsc_failure::modes::{ModeCatalog, Severity};
use rsc_sim_core::bitset::HierBitSet;

/// How many failures the driver attributes ahead of the clock per refill.
pub(crate) const PLAN_BATCH: usize = 1024;

/// Below this batch size the sharded path costs more than it saves; compute
/// serially (also the path taken on single-core hosts).
const PARALLEL_PLAN_MIN: usize = 512;

/// The precomputed, state-independent part of handling one failure.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FailurePlan {
    /// The failure with its permanence already masked through the lemon
    /// set (lemon defects evade diagnosis; see the driver).
    pub event: FailureEvent,
    /// Whether the mode is observable (copied out of the mode spec).
    pub observable: bool,
    /// The mode's severity.
    pub severity: Severity,
    /// The component the mode damages.
    pub component: ComponentKind,
}

/// Computes the plan for one failure — the shared kernel of the serial and
/// sharded paths.
fn plan_one(failure: &FailureEvent, catalog: &ModeCatalog, lemon_mask: &HierBitSet) -> FailurePlan {
    let spec = catalog.mode(failure.mode);
    FailurePlan {
        event: FailureEvent {
            permanent: failure.permanent && !lemon_mask.contains(failure.node.index()),
            ..*failure
        },
        observable: spec.observable,
        severity: spec.severity,
        component: spec.component,
    }
}

/// Computes plans for a batch of attributed failures, preserving input
/// (chronological) order in the output.
///
/// `force_serial` pins the single-threaded reference path — the lockstep
/// twin for byte-identity tests.
pub(crate) fn compute_plans(
    batch: &[FailureEvent],
    catalog: &ModeCatalog,
    lemon_mask: &HierBitSet,
    num_nodes: u32,
    force_serial: bool,
) -> Vec<FailurePlan> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if force_serial || batch.len() < PARALLEL_PLAN_MIN || workers < 2 || num_nodes == 0 {
        return batch
            .iter()
            .map(|f| plan_one(f, catalog, lemon_mask))
            .collect();
    }
    let shards = workers.min(num_nodes as usize);
    let per_shard = (num_nodes as usize).div_ceil(shards);
    // Out-of-range node ids clamp into the last shard, mirroring the
    // parallel-seal convention, so no failure is ever dropped.
    let shard_of =
        |node: rsc_cluster::ids::NodeId| (node.index() as usize / per_shard).min(shards - 1);
    let mut out: Vec<Option<FailurePlan>> = vec![None; batch.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        // Workers' output slots interleave (slot i belongs to whichever
        // shard batch[i]'s node falls in), so each worker returns disjoint
        // (index, plan) pairs and the merge writes them back in place.
        for s in 0..shards {
            handles.push(scope.spawn(move || {
                let mut partial: Vec<(usize, FailurePlan)> = Vec::new();
                for (i, f) in batch.iter().enumerate() {
                    if shard_of(f.node) == s {
                        partial.push((i, plan_one(f, catalog, lemon_mask)));
                    }
                }
                partial
            }));
        }
        for h in handles {
            for (i, plan) in h.join().expect("plan shard worker panicked") {
                out[i] = Some(plan);
            }
        }
    });
    out.into_iter()
        .map(|p| p.expect("every batch slot planned exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsc_cluster::ids::NodeId;
    use rsc_failure::modes::ModeId;
    use rsc_failure::taxonomy::FailureSymptom;
    use rsc_sim_core::time::SimTime;

    fn batch(n: usize, num_nodes: u32) -> Vec<FailureEvent> {
        let catalog = ModeCatalog::rsc1();
        let modes: Vec<ModeId> = catalog.iter().map(|(id, _)| id).collect();
        (0..n)
            .map(|i| {
                let mode = modes[i % modes.len()];
                FailureEvent {
                    at: SimTime::from_secs(i as u64),
                    node: NodeId::new((i as u32 * 7919) % num_nodes),
                    mode,
                    symptom: FailureSymptom::GpuMemoryError,
                    permanent: i % 3 == 0,
                }
            })
            .collect()
    }

    #[test]
    fn sharded_plans_match_serial_exactly() {
        let catalog = ModeCatalog::rsc1();
        let num_nodes = 4096u32;
        let mut mask = HierBitSet::new(num_nodes as usize);
        for k in (0..num_nodes).step_by(97) {
            mask.insert(k);
        }
        let events = batch(2000, num_nodes);
        let serial = compute_plans(&events, &catalog, &mask, num_nodes, true);
        let sharded = compute_plans(&events, &catalog, &mask, num_nodes, false);
        assert_eq!(serial, sharded);
        assert_eq!(serial.len(), events.len());
    }

    #[test]
    fn lemon_mask_strips_permanence() {
        let catalog = ModeCatalog::rsc1();
        let mut mask = HierBitSet::new(64);
        mask.insert(5);
        let mut events = batch(12, 64);
        events[0].node = NodeId::new(5);
        events[0].permanent = true;
        events[1].node = NodeId::new(6);
        events[1].permanent = true;
        let plans = compute_plans(&events, &catalog, &mask, 64, true);
        assert!(!plans[0].event.permanent, "lemon keeps its defect hidden");
        assert!(plans[1].event.permanent, "non-lemon permanence survives");
    }
}
