//! Shared scenario runtime: parallel execution and a telemetry artifact
//! cache.
//!
//! A [`ScenarioSpec`] names one simulation — (config, seed, horizon in
//! days) — and [`ScenarioRunner`] executes batches of them, fanning out
//! across `std::thread` workers and consulting an on-disk snapshot cache
//! so repeated invocations (bench figures, ablations, tests) load sealed
//! telemetry instead of re-simulating.
//!
//! # Cache layout and invalidation
//!
//! Artifacts live under one directory (default `target/telemetry/`,
//! overridable — see [`default_cache_dir`]) as
//! `{fingerprint:016x}.snap`, where the fingerprint is a 64-bit FNV-1a
//! hash over the scenario's `Debug`-formatted config, its seed and
//! horizon, and [`SNAPSHOT_VERSION`]. Any change to the config shape,
//! scenario parameters, or snapshot format therefore changes the key and
//! invalidates stale artifacts; unreadable or corrupt artifacts are
//! re-simulated and rewritten, never trusted.
//!
//! # Determinism
//!
//! The simulation itself is deterministic in (config, seed), snapshots
//! round-trip byte-identically, and workers only partition *which*
//! scenario each thread runs — never split one scenario — so sequential,
//! parallel, and cache-hit execution all produce byte-identical
//! telemetry. `tests/determinism.rs` at the workspace root proves this.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rsc_sim_core::time::SimDuration;
use rsc_telemetry::snapshot::{load_snapshot_file, save_snapshot_file, SNAPSHOT_VERSION};
use rsc_telemetry::view::TelemetryView;

use crate::config::SimConfig;
use crate::driver::ClusterSim;

/// One scenario to execute: a configuration, an RNG seed, and a horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario configuration.
    pub config: SimConfig,
    /// RNG seed for the deterministic simulation.
    pub seed: u64,
    /// Horizon in days.
    pub days: u64,
    /// Resident telemetry byte budget for the run, if bounded (see
    /// [`ClusterSim::set_telemetry_memory_budget`]). Budgeted runs spill
    /// rotated segments to disk and reload them at seal, so the sealed
    /// bytes — and therefore the cache [`fingerprint`](Self::fingerprint) —
    /// are identical to an unbudgeted run; the budget only bounds peak
    /// resident memory while simulating.
    pub memory_budget: Option<usize>,
    /// Where a budgeted run spills rotated segments. `None` uses a private
    /// directory under the system temp dir (unique per fingerprint and
    /// process, removed after seal).
    pub spill_dir: Option<PathBuf>,
}

impl ScenarioSpec {
    /// Creates a spec.
    pub fn new(config: SimConfig, seed: u64, days: u64) -> Self {
        ScenarioSpec {
            config,
            seed,
            days,
            memory_budget: None,
            spill_dir: None,
        }
    }

    /// Bounds the run's resident telemetry to roughly `bytes`, spilling
    /// rotated segments to disk (see [`Self::memory_budget`]). Sealed
    /// telemetry is byte-identical to an unbudgeted run.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Overrides the spill directory a budgeted run uses. The directory is
    /// created on demand and left in place at seal (a `None` default is
    /// private and removed).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Stable cache fingerprint: FNV-1a 64 over the `Debug` rendering of
    /// the config plus seed, horizon, and the snapshot format version.
    ///
    /// `Debug` output covers every field of [`SimConfig`] (all substrate
    /// configs derive `Debug` structurally), so any parameter change
    /// yields a new fingerprint and a cache miss rather than a stale hit.
    /// The memory budget and spill directory are deliberately *excluded*:
    /// they never change the sealed bytes (pinned by
    /// `tests/memory_lockstep.rs`), so a budgeted and an unbudgeted run of
    /// the same scenario rightly share one cached artifact.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(format!("{:?}", self.config).as_bytes());
        eat(&self.seed.to_le_bytes());
        eat(&self.days.to_le_bytes());
        eat(&SNAPSHOT_VERSION.to_le_bytes());
        h
    }

    /// The cache file name for this spec.
    pub fn cache_file_name(&self) -> String {
        format!("{:016x}.snap", self.fingerprint())
    }

    /// Applies the memory budget (if any) to a freshly built sim,
    /// returning a spill directory to remove after seal when the default
    /// private one was used. A spill setup failure degrades to an
    /// unbudgeted in-memory run — sealed bytes are identical either way.
    fn apply_memory_budget(&self, sim: &mut ClusterSim) -> Option<PathBuf> {
        let bytes = self.memory_budget?;
        sim.set_telemetry_memory_budget(bytes);
        let (dir, private) = match &self.spill_dir {
            Some(dir) => (dir.clone(), false),
            None => (
                std::env::temp_dir().join(format!(
                    "rsc-spill-{:016x}-{}",
                    self.fingerprint(),
                    std::process::id()
                )),
                true,
            ),
        };
        match sim.enable_telemetry_spill(&dir) {
            Ok(()) => private.then_some(dir),
            Err(e) => {
                eprintln!(
                    "warning: telemetry spill unavailable at {} ({e}); \
                     running unbudgeted in memory",
                    dir.display()
                );
                None
            }
        }
    }

    /// Runs the simulation synchronously (no cache) and seals the result.
    pub fn simulate(&self) -> TelemetryView {
        let mut sim = ClusterSim::new(self.config.clone(), self.seed);
        let cleanup = self.apply_memory_budget(&mut sim);
        sim.run(SimDuration::from_days(self.days));
        let view = sim.into_telemetry().seal();
        if let Some(dir) = cleanup {
            let _ = std::fs::remove_dir_all(&dir);
        }
        view
    }

    /// Runs the simulation with an event-stream observer attached (see
    /// [`crate::bus`]), sealing the result. The observer sees the run
    /// live; telemetry is byte-identical to [`Self::simulate`].
    pub fn simulate_observed(&self, observer: Box<dyn crate::bus::SimObserver>) -> TelemetryView {
        let mut sim = ClusterSim::new(self.config.clone(), self.seed);
        let cleanup = self.apply_memory_budget(&mut sim);
        sim.attach_observer(observer);
        sim.run(SimDuration::from_days(self.days));
        let view = sim.into_telemetry().seal();
        if let Some(dir) = cleanup {
            let _ = std::fs::remove_dir_all(&dir);
        }
        view
    }
}

/// How [`ScenarioRunner::run_one_observed`] satisfied the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedOutcome {
    /// The scenario was simulated live: the observer saw the full event
    /// stream as it happened.
    Live,
    /// A cached artifact satisfied the scenario; the observer was never
    /// invoked. Callers wanting streaming state can replay the returned
    /// view through their observer (`rsc-monitor` does exactly this).
    CachedSkipped,
}

/// Cache accounting from one [`ScenarioRunner::run_all_with_stats`] call,
/// and — via [`ScenarioRunner::stats`] — the cumulative ledger across
/// every scenario a runner (and its clones) ever executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Scenarios satisfied from the artifact cache.
    pub hits: usize,
    /// Scenarios that had to simulate (and, with a cache dir, wrote an
    /// artifact afterwards).
    pub misses: usize,
    /// Of the misses, how many found an artifact on disk that failed to
    /// load (truncated, malformed, wrong version). These were re-simulated
    /// and the artifact rewritten — but repeated corruption points at a
    /// bad disk or a concurrent writer and deserves a look.
    pub corrupt: usize,
}

/// Shared cumulative counters behind every clone of one runner: the
/// service's `/healthz` endpoint reads these, so corruption is a visible
/// counter rather than a stderr warning that scrolls away.
#[derive(Debug, Default)]
struct SharedCacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
}

impl SharedCacheStats {
    fn record(&self, outcome: RunOutcome) {
        match outcome {
            RunOutcome::Hit => self.hits.fetch_add(1, Ordering::Relaxed),
            RunOutcome::Miss => self.misses.fetch_add(1, Ordering::Relaxed),
            RunOutcome::CorruptMiss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.corrupt.fetch_add(1, Ordering::Relaxed)
            }
        };
    }

    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed) as usize,
            misses: self.misses.load(Ordering::Relaxed) as usize,
            corrupt: self.corrupt.load(Ordering::Relaxed) as usize,
        }
    }
}

/// How one scenario was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunOutcome {
    Hit,
    Miss,
    /// An artifact existed but failed to load — re-simulated and rewritten.
    CorruptMiss,
}

/// One worker slot's completed run: the sealed view plus how the cache
/// satisfied it.
type SlotResult = Mutex<Option<(Arc<TelemetryView>, RunOutcome)>>;

/// Executes scenario specs across worker threads with an artifact cache.
///
/// Cloning a runner shares its cumulative [`stats`](Self::stats) ledger:
/// a service holding one handle sees the cache traffic of every worker
/// that cloned from it.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    cache_dir: Option<PathBuf>,
    workers: usize,
    stats: Arc<SharedCacheStats>,
}

impl Default for ScenarioRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioRunner {
    /// A runner using [`default_cache_dir`] and one worker per available
    /// CPU (capped at 8 — scenarios are memory-hungry).
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ScenarioRunner {
            cache_dir: Some(default_cache_dir()),
            workers,
            stats: Arc::new(SharedCacheStats::default()),
        }
    }

    /// A runner that never touches the disk cache.
    pub fn without_cache() -> Self {
        ScenarioRunner {
            cache_dir: None,
            ..Self::new()
        }
    }

    /// Replaces the cache directory.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The artifact-cache directory, if caching is enabled.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Cumulative cache accounting across every scenario this runner —
    /// and every clone of it — has executed, including observed runs.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Runs one scenario, consulting the cache.
    pub fn run_one(&self, spec: &ScenarioSpec) -> Arc<TelemetryView> {
        let (view, outcome) = self.run_one_tracked(spec);
        if outcome == RunOutcome::CorruptMiss {
            eprintln!("warning: corrupt telemetry artifact re-simulated and rewritten");
        }
        view
    }

    /// Runs one scenario with an event-stream observer attached, still
    /// consulting the artifact cache.
    ///
    /// On a cache hit the simulation never runs, so the observer receives
    /// nothing and the outcome is [`ObservedOutcome::CachedSkipped`] — the
    /// caller decides whether to replay the sealed view through its
    /// observer. On a miss the scenario simulates live with the observer
    /// attached and the artifact is written as usual.
    pub fn run_one_observed(
        &self,
        spec: &ScenarioSpec,
        observer: Box<dyn crate::bus::SimObserver>,
    ) -> (Arc<TelemetryView>, ObservedOutcome) {
        if let Some(dir) = &self.cache_dir {
            let path = dir.join(spec.cache_file_name());
            let existed = path.exists();
            if let Ok(view) = load_snapshot_file(&path) {
                self.stats.record(RunOutcome::Hit);
                return (Arc::new(view), ObservedOutcome::CachedSkipped);
            }
            self.stats.record(if existed {
                RunOutcome::CorruptMiss
            } else {
                RunOutcome::Miss
            });
            let view = spec.simulate_observed(observer);
            let _ = write_artifact(&path, &view);
            (Arc::new(view), ObservedOutcome::Live)
        } else {
            self.stats.record(RunOutcome::Miss);
            (
                Arc::new(spec.simulate_observed(observer)),
                ObservedOutcome::Live,
            )
        }
    }

    fn run_one_tracked(&self, spec: &ScenarioSpec) -> (Arc<TelemetryView>, RunOutcome) {
        let (view, outcome) = if let Some(dir) = &self.cache_dir {
            let path = dir.join(spec.cache_file_name());
            let existed = path.exists();
            if let Ok(view) = load_snapshot_file(&path) {
                self.stats.record(RunOutcome::Hit);
                return (Arc::new(view), RunOutcome::Hit);
            }
            let outcome = if existed {
                RunOutcome::CorruptMiss
            } else {
                RunOutcome::Miss
            };
            let view = spec.simulate();
            // Best-effort: a failed write just means the next run
            // simulates again.
            let _ = write_artifact(&path, &view);
            (Arc::new(view), outcome)
        } else {
            (Arc::new(spec.simulate()), RunOutcome::Miss)
        };
        self.stats.record(outcome);
        (view, outcome)
    }

    /// Runs every spec, in parallel across the worker pool, returning
    /// views in spec order. Duplicate specs (same fingerprint) execute
    /// once and share one `Arc`.
    pub fn run_all(&self, specs: &[ScenarioSpec]) -> Vec<Arc<TelemetryView>> {
        self.run_all_with_stats(specs).0
    }

    /// [`run_all`](Self::run_all), also reporting cache hits/misses.
    pub fn run_all_with_stats(
        &self,
        specs: &[ScenarioSpec],
    ) -> (Vec<Arc<TelemetryView>>, CacheStats) {
        // Dedup by fingerprint so a batch with repeated scenarios does
        // the work once.
        let mut unique: Vec<&ScenarioSpec> = Vec::new();
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        for spec in specs {
            let fp = spec.fingerprint();
            slot_of.entry(fp).or_insert_with(|| {
                unique.push(spec);
                unique.len() - 1
            });
        }

        let results: Vec<SlotResult> = (0..unique.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let threads = self.workers.min(unique.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= unique.len() {
                        break;
                    }
                    let out = self.run_one_tracked(unique[i]);
                    *results[i].lock().unwrap() = Some(out);
                });
            }
        });

        let mut stats = CacheStats::default();
        let done: Vec<Arc<TelemetryView>> = results
            .into_iter()
            .map(|m| {
                let (view, outcome) = m
                    .into_inner()
                    .unwrap()
                    .expect("worker pool covered every slot");
                match outcome {
                    RunOutcome::Hit => stats.hits += 1,
                    RunOutcome::Miss => stats.misses += 1,
                    RunOutcome::CorruptMiss => {
                        stats.misses += 1;
                        stats.corrupt += 1;
                    }
                }
                view
            })
            .collect();
        if stats.corrupt > 0 {
            eprintln!(
                "warning: {} corrupt telemetry artifact(s) re-simulated and rewritten",
                stats.corrupt
            );
        }
        let views = specs
            .iter()
            .map(|spec| Arc::clone(&done[slot_of[&spec.fingerprint()]]))
            .collect();
        (views, stats)
    }
}

/// Writes a snapshot atomically: to a `.tmp` sibling first, then renamed
/// into place, so readers never observe a half-written artifact.
///
/// The temp name carries the pid *and* a process-wide sequence number, so
/// concurrent workers inside one process (service worker pool) and across
/// processes (parallel CLI runners sharing a cache) each write a private
/// temp file; the final `rename` is atomic and the simulation is
/// deterministic, so whichever writer lands last leaves identical bytes.
fn write_artifact(path: &Path, view: &TelemetryView) -> std::io::Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    save_snapshot_file(&tmp, view)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The default artifact-cache directory, resolved in order:
///
/// 1. `$RSC_TELEMETRY_CACHE` — explicit override;
/// 2. `$CARGO_TARGET_DIR/telemetry` — follows a relocated target dir;
/// 3. `target/telemetry` relative to the working directory.
pub fn default_cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("RSC_TELEMETRY_CACHE") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
        if !target.is_empty() {
            return Path::new(&target).join("telemetry");
        }
    }
    PathBuf::from("target").join("telemetry")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rsc-runner-{tag}-{}", std::process::id()))
    }

    fn tiny_spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec::new(SimConfig::small_test_cluster(), seed, 2)
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = tiny_spec(1);
        assert_eq!(a.fingerprint(), tiny_spec(1).fingerprint());
        assert_ne!(a.fingerprint(), tiny_spec(2).fingerprint());
        let mut longer = tiny_spec(1);
        longer.days = 3;
        assert_ne!(a.fingerprint(), longer.fingerprint());
        let mut tweaked = tiny_spec(1);
        tweaked.config.exclusion_prob += 0.01;
        assert_ne!(a.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn uncached_parallel_matches_sequential() {
        let specs = vec![tiny_spec(7), tiny_spec(8)];
        let runner = ScenarioRunner::without_cache().workers(2);
        let parallel = runner.run_all(&specs);
        for (spec, view) in specs.iter().zip(&parallel) {
            let sequential = spec.simulate();
            assert_eq!(view.jobs(), sequential.jobs());
            assert_eq!(view.health_events(), sequential.health_events());
        }
    }

    #[test]
    fn cache_hit_reproduces_simulation() {
        let dir = temp_cache("hit");
        let _ = std::fs::remove_dir_all(&dir);
        let runner = ScenarioRunner::new().with_cache_dir(&dir).workers(1);
        let spec = tiny_spec(11);
        let (_, cold) = runner.run_all_with_stats(std::slice::from_ref(&spec));
        assert_eq!((cold.hits, cold.misses), (0, 1));
        let (views, warm) = runner.run_all_with_stats(std::slice::from_ref(&spec));
        assert_eq!((warm.hits, warm.misses), (1, 0));
        let fresh = spec.simulate();
        assert_eq!(views[0].jobs(), fresh.jobs());
        assert_eq!(
            views[0].ground_truth_failures(),
            fresh.ground_truth_failures()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_resimulated() {
        let dir = temp_cache("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec(13);
        let path = dir.join(spec.cache_file_name());
        std::fs::write(&path, b"not a snapshot\n").unwrap();
        let runner = ScenarioRunner::new().with_cache_dir(&dir).workers(1);
        let (views, stats) = runner.run_all_with_stats(std::slice::from_ref(&spec));
        assert_eq!((stats.hits, stats.misses), (0, 1));
        // The planted garbage was detected as corruption, not a plain miss.
        assert_eq!(stats.corrupt, 1);
        assert_eq!(views[0].jobs(), spec.simulate().jobs());
        // The artifact was repaired in place.
        let (_, warm) = runner.run_all_with_stats(std::slice::from_ref(&spec));
        assert_eq!((warm.hits, warm.misses), (1, 0));
        assert_eq!(warm.corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_miss_is_not_counted_corrupt() {
        let dir = temp_cache("fresh");
        let _ = std::fs::remove_dir_all(&dir);
        let runner = ScenarioRunner::new().with_cache_dir(&dir).workers(1);
        let spec = tiny_spec(19);
        let (_, cold) = runner.run_all_with_stats(std::slice::from_ref(&spec));
        assert_eq!((cold.hits, cold.misses, cold.corrupt), (0, 1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_specs_share_one_result() {
        let specs = vec![tiny_spec(17), tiny_spec(17)];
        let runner = ScenarioRunner::without_cache().workers(2);
        let views = runner.run_all(&specs);
        assert!(Arc::ptr_eq(&views[0], &views[1]));
    }

    #[test]
    fn cumulative_stats_shared_across_clones() {
        let dir = temp_cache("cumulative");
        let _ = std::fs::remove_dir_all(&dir);
        let runner = ScenarioRunner::new().with_cache_dir(&dir).workers(1);
        let clone = runner.clone();
        let spec = tiny_spec(23);
        clone.run_one(&spec);
        clone.run_one(&spec);
        // The original handle sees the clone's traffic: one miss, one hit.
        assert_eq!(
            runner.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                corrupt: 0
            }
        );
        // Observed runs are part of the same ledger.
        let (_, outcome) = runner.run_one_observed(
            &spec,
            Box::new(crate::bus::SharedObserver::new(
                crate::bus::CountingObserver::default(),
            )),
        );
        assert_eq!(outcome, ObservedOutcome::CachedSkipped);
        assert_eq!(runner.stats().hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_run_counts_corrupt_artifacts() {
        let dir = temp_cache("observed-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec(29);
        std::fs::write(dir.join(spec.cache_file_name()), b"garbage\n").unwrap();
        let runner = ScenarioRunner::new().with_cache_dir(&dir).workers(1);
        let (_, outcome) = runner.run_one_observed(
            &spec,
            Box::new(crate::bus::SharedObserver::new(
                crate::bus::CountingObserver::default(),
            )),
        );
        assert_eq!(outcome, ObservedOutcome::Live);
        assert_eq!(
            runner.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                corrupt: 1
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_share_one_cache_without_tearing() {
        let dir = temp_cache("concurrent");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec(31);
        // Many independent runners (each its own ledger, as separate
        // processes would be) race to write the same artifact.
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let dir = &dir;
                let spec = &spec;
                scope.spawn(move || {
                    let runner = ScenarioRunner::new().with_cache_dir(dir).workers(1);
                    runner.run_one(spec);
                });
            }
        });
        // Whatever the interleaving, the surviving artifact is whole and
        // no temp files leak.
        let runner = ScenarioRunner::new().with_cache_dir(&dir).workers(1);
        let (_, warm) = runner.run_all_with_stats(std::slice::from_ref(&spec));
        assert_eq!((warm.hits, warm.corrupt), (1, 0));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x != "snap"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_cache_dir_has_telemetry_leaf() {
        // Whichever branch resolves, the layout contract is a
        // `telemetry/` leaf unless RSC_TELEMETRY_CACHE overrides it all.
        let dir = default_cache_dir();
        if std::env::var("RSC_TELEMETRY_CACHE").is_err() {
            assert_eq!(dir.file_name().unwrap(), "telemetry");
        }
    }
}
