//! The wired-up cluster simulation.
//!
//! [`ClusterSim`] merges four deterministic streams — job arrivals, the
//! failure injector, scheduled job endings, and repair completions — into
//! one discrete-event run, reproducing the operational behaviour described
//! in the paper's §II: health checks pull bad nodes, jobs requeue under the
//! same id, hung nodes surface as NODE_FAIL after a heartbeat timeout,
//! permanent-but-undetected faults create restart loops until a check
//! (possibly rolled out later) finally catches them.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use rsc_cluster::cluster::Cluster;
use rsc_cluster::ids::{JobId, NodeId};
use rsc_cluster::node::NodeState;
use rsc_failure::injector::{FailureEvent, FailureInjector};
use rsc_failure::lemon::LemonPlan;
use rsc_failure::modes::{ModeId, Severity};
use rsc_failure::process::HazardSchedule;
use rsc_failure::signals::SignalKind;
use rsc_health::lifecycle::{
    AttemptOutcome, NodeLifecycle, ProbationOutcome, QuarantineOrigin, ReleaseOutcome,
    ReleasePolicy,
};
use rsc_health::monitor::{HealthEvent, HealthMonitor};
use rsc_network::routing::RoutingPolicy;
use rsc_sched::job::{Destiny, JobStatus};
use rsc_sched::sched::{InterruptCause, Scheduler, StartedAttempt};
use rsc_sim_core::event::EventQueue;
use rsc_sim_core::rng::SimRng;
use rsc_sim_core::time::{SimDuration, SimTime};
use rsc_telemetry::store::{
    CheckpointFallbackEvent, ControlActionEvent, ControlActionKind, ControlTrigger, ExclusionEvent,
    NodeEvent, NodeEventKind, TelemetryStore,
};
use rsc_workload::generator::JobStream;

use rsc_sim_core::bitset::HierBitSet;

use crate::bus::{SimEvent, SimObserver};
use crate::config::{EraPreset, SimConfig};
use crate::control::{CommandQueue, ControlCommand, ControlVerb};
use crate::plan::{compute_plans, FailurePlan, PLAN_BATCH};

/// Internal future events.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    /// A job attempt reaches its user-driven end (destiny, cancel, timeout).
    JobEnd {
        job: JobId,
        attempt: u32,
        status: JobStatus,
    },
    /// A hardware fault crashes a running attempt.
    HwCrash { job: JobId, attempt: u32 },
    /// The scheduler heartbeat declares a hung node failed.
    HangDetected { node: NodeId },
    /// A node repair completes (legacy infallible path).
    RepairDone { node: NodeId },
    /// A fallible repair attempt on the escalation ladder resolves.
    RepairAttempt { node: NodeId },
    /// A returning node's probation window closes.
    ProbationEnd { node: NodeId },
    /// A controlled-release observation window closes on a
    /// controller-quarantined node.
    ReleaseWindow { node: NodeId },
    /// Daily housekeeping: false-positive generation, utilization sampling.
    DailySweep,
}

/// Wall-time attribution for the event loop's hot phases, accumulated only
/// when [`ClusterSim::enable_phase_timings`] was called (the default path
/// pays a single boolean check per phase).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Seconds in the failure injector (`next_before` sampling).
    pub inject_s: f64,
    /// Seconds in future-event queue peeks and pops.
    pub queue_s: f64,
    /// Seconds in scheduler cycles.
    pub sched_s: f64,
    /// Seconds handling popped events, failures, and submissions.
    pub handle_s: f64,
}

impl PhaseTimings {
    fn absorb(&mut self, other: PhaseTimings) {
        self.inject_s += other.inject_s;
        self.queue_s += other.queue_s;
        self.sched_s += other.sched_s;
        self.handle_s += other.handle_s;
    }
}

/// A deterministic, seeded simulation of one cluster over a time horizon.
pub struct ClusterSim {
    config: SimConfig,
    cluster: Cluster,
    sched: Scheduler,
    monitor: HealthMonitor,
    injector: FailureInjector,
    stream: JobStream,
    events: EventQueue<Ev>,
    rng: SimRng,
    telemetry: TelemetryStore,
    lemons: LemonPlan,
    /// The lemon set as a bitset — O(1) membership for the per-failure
    /// permanence mask (the linear scan it replaces dominated the handle
    /// phase at fleet scale).
    lemon_mask: HierBitSet,
    /// Failure plans attributed ahead of the clock by the shard-compute
    /// phase, applied one at a time in chronological order (see
    /// [`crate::plan`]).
    pending_plans: VecDeque<FailurePlan>,
    /// Pins the planner's single-threaded reference path (lockstep twin).
    serial_planning: bool,
    /// Nodes with a permanent fault no check has caught yet.
    broken: HashMap<NodeId, ModeId>,
    /// Nodes draining (leave service when their last job ends).
    draining: HashSet<NodeId>,
    /// Per-node remediation state machines (fallible path only; empty when
    /// the policy is infallible).
    lifecycles: HashMap<NodeId, NodeLifecycle>,
    /// Utilization samples (fraction busy), taken daily.
    utilization_samples: Vec<f64>,
    /// Attached event-stream observers (the online-monitoring hook).
    /// Empty by default: the no-observer path is a single `is_empty()`
    /// check per record and leaves telemetry byte-identical.
    observers: Vec<Box<dyn SimObserver>>,
    /// Reusable staging buffer for co-occurring signal expansion, so the
    /// failure hot path allocates nothing per event.
    staged_signals: Vec<rsc_failure::signals::NodeSignal>,
    /// Reusable staging buffer for check detections; drained into
    /// telemetry in one batched extend per handled failure.
    staged_detections: Vec<HealthEvent>,
    /// Occurrences processed by the event loop (failures, submissions,
    /// popped future events) — the throughput-bench numerator.
    events_processed: u64,
    /// The control-plane command queue, when a closed-loop controller is
    /// attached (see [`crate::control`]). `None` by default: the open-loop
    /// path pays one `Option` check per loop iteration and telemetry stays
    /// byte-identical to pre-control-plane builds.
    commands: Option<CommandQueue>,
    /// Whether the control plane flipped fabric routing to adaptive.
    routing_adaptive: bool,
    /// The baseline static routing policy restored by `RestoreRouting`.
    base_routing: RoutingPolicy,
    /// Control-plane checkpoint-cadence override, applied to newly
    /// submitted jobs.
    ckpt_retune: Option<SimDuration>,
    /// Controlled-release schedules for controller-quarantined nodes.
    release_policies: HashMap<NodeId, ReleasePolicy>,
    /// Pristine copy of the injector's forked RNG stream, so test hooks can
    /// rebuild the injector on the reference backend with identical seeding.
    injector_rng: SimRng,
    /// Per-phase wall-time attribution; `None` (untimed) by default.
    phase_timings: Option<PhaseTimings>,
    now: SimTime,
}

impl ClusterSim {
    /// Builds a simulation from a config and a seed. Identical inputs give
    /// byte-identical telemetry.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let cluster = Cluster::new(config.cluster.clone());
        let num_nodes = config.cluster.num_nodes();

        // Era node sets and lemons are sampled from dedicated streams.
        let mut era_rng = rng.fork(1);
        let ib_spike_nodes: Vec<NodeId> = {
            let mut set = Vec::new();
            while set.len() < config.ib_spike_node_count.min(num_nodes as usize) {
                let n = NodeId::new(era_rng.below(num_nodes as u64) as u32);
                if !set.contains(&n) {
                    set.push(n);
                }
            }
            set
        };
        let mut schedule = HazardSchedule::new(config.modes.clone());
        schedule = match config.eras {
            EraPreset::None => schedule,
            EraPreset::Rsc1 => schedule.rsc1_eras(ib_spike_nodes),
            EraPreset::Rsc2 => schedule.rsc2_eras(ib_spike_nodes),
        };
        let mut lemon_rng = rng.fork(2);
        let lemons = LemonPlan::plant_with_rate(
            &mut lemon_rng,
            num_nodes,
            config.lemon_count,
            config.lemon_extra_rate_median,
        );
        lemons.apply(&mut schedule);

        let injector_rng = rng.fork(3);
        let injector = FailureInjector::new(schedule, num_nodes, injector_rng.clone());
        let monitor = HealthMonitor::new(config.registry.clone(), rng.fork(4));
        let stream = JobStream::new(config.workload.clone(), rng.fork(5));
        let mut sched = Scheduler::new(cluster.topology().clone(), config.sched);
        sched.set_quotas(config.quotas.clone());
        let telemetry = TelemetryStore::new(config.cluster.name(), num_nodes);

        let mut events = EventQueue::new();
        events.schedule(SimTime::from_days(1), Ev::DailySweep);

        let lemon_mask = lemons.node_mask(num_nodes);
        ClusterSim {
            config,
            cluster,
            sched,
            monitor,
            injector,
            stream,
            events,
            rng,
            telemetry,
            lemons,
            lemon_mask,
            pending_plans: VecDeque::new(),
            serial_planning: false,
            broken: HashMap::new(),
            draining: HashSet::new(),
            lifecycles: HashMap::new(),
            utilization_samples: Vec::new(),
            observers: Vec::new(),
            staged_signals: Vec::new(),
            staged_detections: Vec::new(),
            events_processed: 0,
            commands: None,
            routing_adaptive: false,
            base_routing: RoutingPolicy::Static {
                shield_threshold: 1.0,
            },
            ckpt_retune: None,
            release_policies: HashMap::new(),
            injector_rng,
            phase_timings: None,
            now: SimTime::ZERO,
        }
    }

    /// Attaches the control-plane command queue (see [`crate::control`]).
    /// The driver drains it after every scheduling cycle, applying
    /// commands in push order at the current simulated time. An attached
    /// queue that never receives a command leaves the run byte-identical
    /// to an open-loop one.
    pub fn set_command_queue(&mut self, queue: CommandQueue) {
        self.commands = Some(queue);
    }

    /// The fabric routing policy currently in force: the baseline static
    /// policy unless the control plane flipped routing to adaptive.
    pub fn routing_policy(&self) -> RoutingPolicy {
        if self.routing_adaptive {
            RoutingPolicy::Adaptive
        } else {
            self.base_routing
        }
    }

    /// The control plane's checkpoint-cadence override, if one is in
    /// force. Newly submitted jobs checkpoint at this interval.
    pub fn checkpoint_interval_override(&self) -> Option<SimDuration> {
        self.ckpt_retune
    }

    /// Attaches an event-stream observer (see [`crate::bus`]). The
    /// observer immediately receives [`SimEvent::Start`], then every
    /// telemetry record as the run produces it. Observers are passive:
    /// they never touch the simulation RNG, so attaching one leaves the
    /// telemetry byte-identical to an unobserved run.
    pub fn attach_observer(&mut self, mut observer: Box<dyn SimObserver>) {
        observer.on_event(&SimEvent::Start {
            cluster: self.config.cluster.name(),
            num_nodes: self.config.cluster.num_nodes(),
        });
        self.observers.push(observer);
    }

    /// Detaches and returns all attached observers.
    pub fn take_observers(&mut self) -> Vec<Box<dyn SimObserver>> {
        std::mem::take(&mut self.observers)
    }

    /// Mirrors one event to every attached observer.
    fn emit(&mut self, event: &SimEvent<'_>) {
        for obs in &mut self.observers {
            obs.on_event(event);
        }
    }

    /// The scenario being simulated.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Ground truth: the planted lemon nodes.
    pub fn lemons(&self) -> &LemonPlan {
        &self.lemons
    }

    /// The cluster state (for inspection between/after runs).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Occurrences the event loop has processed so far: injected failures,
    /// job submissions, and popped future events. The denominator-free
    /// throughput metric `sim_throughput` reports as events/sec.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Allocation statistics of the scheduler's job arena (slab capacity,
    /// live jobs, slots recycled) — the bench harness reports these
    /// alongside peak RSS.
    pub fn arena_stats(&self) -> rsc_sched::arena::ArenaStats {
        self.sched.arena_stats()
    }

    /// Routes scheduler allocation queries through the retained naive
    /// reference scans instead of the incremental indexes. Test hook for
    /// byte-identity checks (indexed vs naive runs must produce identical
    /// telemetry); not part of the public API.
    #[doc(hidden)]
    pub fn set_naive_scheduler_scans(&mut self, naive: bool) {
        self.sched.set_naive_scans(naive);
    }

    /// Disables job-arena slot recycling (every insertion appends a fresh
    /// slab slot). Test hook for byte-identity checks — a run with reuse
    /// and a run without must seal identical telemetry; not part of the
    /// public API.
    #[doc(hidden)]
    pub fn set_arena_no_reuse(&mut self, on: bool) {
        self.sched.set_arena_no_reuse(on);
    }

    /// Rebuilds the failure injector on the retained per-stream thinning
    /// backend, reusing the exact RNG stream the default superposition
    /// injector was seeded with. Must be called before the first `run` —
    /// it restarts the failure stream from time zero. Test hook for the
    /// statistical-equivalence suite; not part of the public API.
    #[doc(hidden)]
    pub fn set_per_stream_injector(&mut self) {
        let schedule = self.injector.schedule().clone();
        self.injector = FailureInjector::new_per_stream(
            schedule,
            self.config.cluster.num_nodes(),
            self.injector_rng.clone(),
        );
        self.pending_plans.clear();
    }

    /// Pins failure planning to the single-threaded reference path and a
    /// look-ahead batch of one — the sequential twin for the sharded
    /// compute/merge-apply split. Byte-identity tests run one sim with the
    /// default planner and one with this hook and demand identical sealed
    /// telemetry; not part of the public API.
    #[doc(hidden)]
    pub fn set_serial_failure_planning(&mut self) {
        self.serial_planning = true;
    }

    /// Switches the future-event queue to the reference single-binary-heap
    /// backend, carrying all pending events across. Test hook for the
    /// tiered-queue byte-identity checks; not part of the public API.
    #[doc(hidden)]
    pub fn set_reference_event_queue(&mut self) {
        self.events.use_reference_heap();
    }

    /// Overrides the telemetry store's segment capacity. Sealed chain
    /// heads and snapshot bytes are capacity-invariant, so this only
    /// changes rotation cadence — the cross-capacity determinism gate
    /// leans on that. Must be called before any record is appended (the
    /// store panics otherwise); not part of the public API.
    #[doc(hidden)]
    pub fn set_telemetry_segment_capacity(&mut self, capacity: usize) {
        self.telemetry.set_segment_capacity(capacity);
    }

    /// Derives per-stream telemetry segment capacities from a resident
    /// byte budget (see [`rsc_telemetry::store::TelemetryStore::set_memory_budget`]).
    /// Sealed bytes are capacity-invariant, so the budget only bounds
    /// resident memory — pair with [`Self::enable_telemetry_spill`] to
    /// keep a long run's telemetry flat at roughly the budget. Must be
    /// called before the first `run`.
    pub fn set_telemetry_memory_budget(&mut self, bytes: usize) {
        self.telemetry.set_memory_budget(bytes);
    }

    /// Shallow estimate of telemetry record bytes currently resident (the
    /// quantity [`Self::set_telemetry_memory_budget`] bounds when spilling
    /// is enabled).
    pub fn telemetry_resident_bytes(&self) -> usize {
        self.telemetry.resident_record_bytes()
    }

    /// Streams sealed telemetry segments to row files under `dir` as they
    /// rotate, keeping only the active segment of each stream in memory.
    /// [`Self::into_telemetry`]'s seal reloads and chain-verifies the
    /// spilled segments. Must be called before the first `run`.
    pub fn enable_telemetry_spill(
        &mut self,
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<()> {
        self.telemetry.enable_spill(dir)
    }

    /// Turns on per-append wall-time attribution in the telemetry store,
    /// so benches can split seal cost into append / rotate / final-seal
    /// phases (see [`rsc_telemetry::SegmentStats`]).
    pub fn enable_telemetry_append_timing(&mut self) {
        self.telemetry.enable_append_timing();
    }

    /// Segment bookkeeping counters from the telemetry store: capacity,
    /// rotations so far, and accumulated rotate/append seconds.
    pub fn telemetry_segment_stats(&self) -> rsc_telemetry::SegmentStats {
        self.telemetry.segment_stats()
    }

    /// Turns on per-phase wall-time attribution for subsequent [`Self::run`]
    /// calls (see [`PhaseTimings`]). Instrumentation costs a few `Instant`
    /// reads per event, so benches measure untimed rounds for the headline
    /// number and a timed run for the phase breakdown.
    pub fn enable_phase_timings(&mut self) {
        self.phase_timings.get_or_insert_with(PhaseTimings::default);
    }

    /// Accumulated phase timings, if [`Self::enable_phase_timings`] was
    /// called before running.
    pub fn phase_timings(&self) -> Option<PhaseTimings> {
        self.phase_timings
    }

    /// Mean sampled cluster utilization so far (busy GPUs / total GPUs).
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization_samples.is_empty() {
            return 0.0;
        }
        self.utilization_samples.iter().sum::<f64>() / self.utilization_samples.len() as f64
    }

    /// Runs the simulation for `duration` beyond the current time and
    /// returns the accumulated telemetry.
    ///
    /// May be called repeatedly to extend a run; telemetry accumulates.
    pub fn run(&mut self, duration: SimDuration) -> &TelemetryStore {
        let horizon = self.now + duration;
        let timed = self.phase_timings.is_some();
        let mut phases = PhaseTimings::default();
        loop {
            let t_submit = self.stream.peek_time();
            let mark = timed.then(Instant::now);
            let t_event = self.events.peek_time().unwrap_or(SimTime::MAX);
            if let Some(m) = mark {
                phases.queue_s += m.elapsed().as_secs_f64();
            }
            let t_other = t_submit.min(t_event).min(horizon);

            // Drain failures occurring strictly before the next other event.
            let mark = timed.then(Instant::now);
            let failure = self.next_planned_failure(t_other);
            if let Some(m) = mark {
                phases.inject_s += m.elapsed().as_secs_f64();
            }
            if let Some(failure) = failure {
                self.now = failure.event.at;
                self.events_processed += 1;
                let mark = timed.then(Instant::now);
                self.apply_failure_plan(failure);
                if let Some(m) = mark {
                    phases.handle_s += m.elapsed().as_secs_f64();
                }
                let mark = timed.then(Instant::now);
                self.run_cycle();
                if let Some(m) = mark {
                    phases.sched_s += m.elapsed().as_secs_f64();
                }
                self.drain_control_commands();
                continue;
            }

            if t_other >= horizon {
                break;
            }

            self.events_processed += 1;
            if t_submit <= t_event {
                self.now = t_submit;
                let mark = timed.then(Instant::now);
                let mut spec = self.stream.next_job();
                if let Some(interval) = self.ckpt_retune {
                    spec.checkpoint_interval = interval;
                }
                self.sched.submit(spec);
                if let Some(m) = mark {
                    phases.handle_s += m.elapsed().as_secs_f64();
                }
            } else {
                let mark = timed.then(Instant::now);
                let (at, ev) = self.events.pop().expect("peeked event exists");
                if let Some(m) = mark {
                    phases.queue_s += m.elapsed().as_secs_f64();
                }
                self.now = at;
                let mark = timed.then(Instant::now);
                self.handle_event(ev);
                if let Some(m) = mark {
                    phases.handle_s += m.elapsed().as_secs_f64();
                }
            }
            let mark = timed.then(Instant::now);
            self.run_cycle();
            if let Some(m) = mark {
                phases.sched_s += m.elapsed().as_secs_f64();
            }
            self.drain_control_commands();
        }
        if let Some(t) = &mut self.phase_timings {
            t.absorb(phases);
        }
        self.now = horizon;
        self.finish_run();
        &self.telemetry
    }

    /// Consumes the simulation, returning the telemetry store.
    pub fn into_telemetry(mut self) -> TelemetryStore {
        self.finish_run();
        self.telemetry
    }

    fn finish_run(&mut self) {
        self.flush_job_records();
        let gpu_swaps = self.cluster.total_gpu_swaps();
        self.telemetry.set_gpu_swaps(gpu_swaps);
        self.telemetry.set_horizon(self.now);
        self.emit(&SimEvent::Finish {
            horizon: self.now,
            gpu_swaps,
        });
    }

    /// Moves completed accounting records from the scheduler into
    /// telemetry, mirroring each to the bus.
    fn flush_job_records(&mut self) {
        let records = self.sched.take_records();
        if self.observers.is_empty() {
            // The common unobserved path moves the whole batch in one
            // extend instead of a per-record call.
            self.telemetry.extend_jobs(records);
            return;
        }
        for record in records {
            self.emit(&SimEvent::Job(&record));
            self.telemetry.push_job(record);
        }
    }

    /// Records a health-check firing (and mirrors it to the bus).
    fn record_health_event(&mut self, event: HealthEvent) {
        self.emit(&SimEvent::Health(&event));
        self.telemetry.push_health_event(event);
    }

    /// Flushes the staged detections into telemetry in one batched extend,
    /// mirroring each to the bus first. The buffer's capacity is kept for
    /// the next failure.
    fn drain_staged_detections(&mut self) {
        if self.staged_detections.is_empty() {
            return;
        }
        if !self.observers.is_empty() {
            let detections = std::mem::take(&mut self.staged_detections);
            for d in &detections {
                self.emit(&SimEvent::Health(d));
            }
            self.staged_detections = detections;
        }
        self.telemetry
            .extend_health_events(self.staged_detections.drain(..));
    }

    // ---- event handling ----

    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::JobEnd {
                job,
                attempt,
                status,
            } => {
                self.sched.finish(job, attempt, status, self.now);
            }
            Ev::HwCrash { job, attempt } => {
                let nodes: Vec<NodeId> = self
                    .sched
                    .job(job)
                    .map(|j| j.allocated_nodes().to_vec())
                    .unwrap_or_default();
                if self.sched.crash_job(job, attempt, self.now) {
                    self.maybe_exclude(&nodes, job);
                    self.check_drained(&nodes);
                    // The broken hardware re-manifests with every crash,
                    // giving (possibly newly rolled-out) checks another
                    // chance to catch it.
                    for node in nodes {
                        self.remanifest_broken(node);
                    }
                }
            }
            Ev::HangDetected { node } => {
                // The node stopped heartbeating: NODE_FAIL its jobs and pull
                // it for remediation.
                if self.cluster.node_state(node) != NodeState::Remediation {
                    let victims =
                        self.sched
                            .interrupt_node(node, InterruptCause::NodeHang, self.now);
                    for v in victims {
                        self.maybe_exclude(&[node], v);
                    }
                    self.remediate(node, true);
                }
            }
            Ev::RepairDone { node } => {
                self.return_to_service(node);
            }
            Ev::RepairAttempt { node } => self.handle_repair_attempt(node),
            Ev::ProbationEnd { node } => self.handle_probation_end(node),
            Ev::ReleaseWindow { node } => self.handle_release_window(node),
            Ev::DailySweep => {
                let from = self.now - SimDuration::from_days(1);
                let fps = self.monitor.false_positives_between(
                    from,
                    self.now,
                    self.config.cluster.num_nodes(),
                );
                for fp in fps {
                    // False positives look real to the infrastructure: a
                    // high-severity FP pulls a healthy node.
                    self.record_health_event(fp);
                    if fp.severity == Severity::High
                        && self.cluster.node_state(fp.node) == NodeState::Healthy
                    {
                        let victims = self.sched.interrupt_node(
                            fp.node,
                            InterruptCause::HealthCheck,
                            self.now,
                        );
                        for v in victims {
                            self.maybe_exclude(&[fp.node], v);
                        }
                        self.remediate(fp.node, false);
                    }
                }
                let busy = self.sched.busy_gpus() as f64;
                self.utilization_samples
                    .push(busy / self.config.cluster.total_gpus() as f64);
                // Flush accounting records into telemetry incrementally,
                // then tick the bus: observers see every record with
                // `ended_at <= now` before the tick's windowed re-eval.
                self.flush_job_records();
                self.emit(&SimEvent::Tick { now: self.now });
                self.events
                    .schedule(self.now + SimDuration::from_days(1), Ev::DailySweep);
            }
        }
    }

    /// Returns the next planned failure at or before `limit`, refilling the
    /// plan buffer from the injector (one shard-computed look-ahead batch
    /// at a time) when it runs dry. A buffered plan past `limit` stays
    /// buffered, so queued events and submissions interleave exactly as
    /// they would against an unbatched injector.
    fn next_planned_failure(&mut self, limit: SimTime) -> Option<FailurePlan> {
        if self.pending_plans.is_empty() {
            // The serial twin pins a look-ahead of one, reproducing the
            // pre-split lazy draw-then-handle loop exactly.
            let look_ahead = if self.serial_planning { 1 } else { PLAN_BATCH };
            let mut batch: Vec<FailureEvent> = Vec::new();
            while batch.len() < look_ahead {
                match self.injector.next_before(SimTime::MAX) {
                    Some(f) => batch.push(f),
                    None => break,
                }
            }
            if !batch.is_empty() {
                self.pending_plans.extend(compute_plans(
                    &batch,
                    self.injector.schedule().catalog(),
                    &self.lemon_mask,
                    self.config.cluster.num_nodes(),
                    self.serial_planning,
                ));
            }
        }
        match self.pending_plans.front() {
            Some(p) if p.event.at <= limit => self.pending_plans.pop_front(),
            _ => None,
        }
    }

    /// Applies one precomputed failure plan: the stateful half of failure
    /// handling — telemetry, signal expansion, checks, interrupts — with
    /// every simulation-RNG draw happening here, in chronological order.
    fn apply_failure_plan(&mut self, plan: FailurePlan) {
        // Permanence already masked through the lemon set at plan time:
        // lemon defects evade diagnosis — the repair shop finds "no
        // trouble", the node returns to service quickly, and the defect
        // (the elevated hazard) persists — the recurring pattern §IV-A
        // hunts for.
        let FailurePlan {
            event: failure,
            observable,
            severity,
            component,
        } = plan;
        self.emit(&SimEvent::GroundTruth(&failure));
        self.telemetry.push_ground_truth(failure);
        let node = failure.node;
        if self.cluster.node_state(node) == NodeState::Remediation {
            return; // already out of service
        }
        if failure.permanent {
            self.apply_permanent_damage(node, component);
        }
        self.staged_signals.clear();
        self.config
            .cooccurrence
            .expand_into(&failure, &mut self.rng, &mut self.staged_signals);
        for i in 0..self.staged_signals.len() {
            if let SignalKind::Xid(xid) = self.staged_signals[i].kind {
                let slot = self.rng.below(rsc_cluster::node::GPUS_PER_NODE as u64) as u8;
                self.cluster.node_mut(node).gpu_mut(slot).record_xid(xid);
            }
        }
        self.staged_detections.clear();
        for signal in &self.staged_signals {
            self.monitor
                .observe_signal_into(signal, &mut self.staged_detections);
        }
        let any_detection = !self.staged_detections.is_empty();
        let any_high = self
            .staged_detections
            .iter()
            .any(|d| d.severity == Severity::High);
        self.drain_staged_detections();

        if any_high {
            // High-severity check: immediate removal + reschedule.
            let victims = self
                .sched
                .interrupt_node(node, InterruptCause::HealthCheck, self.now);
            for v in victims {
                self.maybe_exclude(&[node], v);
            }
            self.remediate(node, false);
        } else if any_detection {
            // Low-severity only: drain; the fault may still crash jobs.
            self.drain_node(node);
            self.crash_jobs_on_node(node, self.config.low_severity_crash_prob);
            if self.sched.jobs_on_node(node).is_empty() {
                self.remediate(node, true);
            }
        } else {
            // Undetected.
            if !observable {
                // Hung node: heartbeat will notice shortly.
                self.events.schedule(
                    self.now + self.config.heartbeat_timeout,
                    Ev::HangDetected { node },
                );
            } else {
                // Missed/pre-rollout detection: the fault still crashes the
                // jobs running through it.
                let p = match severity {
                    Severity::High => 1.0,
                    Severity::Low => self.config.low_severity_crash_prob,
                };
                self.crash_jobs_on_node(node, p);
                // Permanent damage with no detection leaves a silently
                // broken node: every future job placed there will crash
                // (and re-raise signals) until some check finally fires —
                // the paper's restart-loop pathology.
                if failure.permanent {
                    self.broken.insert(node, failure.mode);
                }
            }
        }
    }

    fn apply_permanent_damage(
        &mut self,
        node: NodeId,
        component: rsc_cluster::component::ComponentKind,
    ) {
        use rsc_cluster::component::ComponentHealth;
        self.cluster
            .node_mut(node)
            .set_component_health(component, ComponentHealth::Failed);
        if component == rsc_cluster::component::ComponentKind::Gpu {
            let slot = self.rng.below(rsc_cluster::node::GPUS_PER_NODE as u64) as u8;
            self.cluster
                .node_mut(node)
                .gpu_mut(slot)
                .set_health(ComponentHealth::Failed);
        }
    }

    /// Crashes each job on `node` independently with probability `p`,
    /// via the FAILED (application-visible) path.
    fn crash_jobs_on_node(&mut self, node: NodeId, p: f64) {
        let victims: Vec<(JobId, u32)> = self
            .sched
            .jobs_on_node(node)
            .iter()
            .map(|&id| (id, self.sched.job(id).expect("running job exists").attempt))
            .collect();
        for (id, attempt) in victims {
            if self.rng.chance(p) {
                let nodes: Vec<NodeId> = self
                    .sched
                    .job(id)
                    .map(|j| j.allocated_nodes().to_vec())
                    .unwrap_or_default();
                if self.sched.crash_job(id, attempt, self.now) {
                    self.maybe_exclude(&nodes, id);
                    self.check_drained(&nodes);
                }
            }
        }
    }

    /// Pulls a node into remediation and schedules its repair. Idempotent:
    /// a node already in remediation is left alone.
    fn remediate(&mut self, node: NodeId, transient_only: bool) {
        if self.cluster.node_state(node) == NodeState::Remediation {
            return;
        }
        self.cluster.remediate_node(node, self.now);
        self.sched.set_node_available(node, false);
        self.draining.remove(&node);
        self.record_node_event(node, NodeEventKind::EnterRemediation);
        let permanent = !transient_only
            && (self.broken.contains_key(&node) || self.cluster.has_hardware_damage(node));
        if self.config.remediation.is_infallible() {
            // Legacy path: repairs always succeed after one sampled
            // duration. Draws exactly the RNG stream pre-lifecycle builds
            // drew, keeping disabled-path telemetry byte-identical.
            let dur = self.config.repair.sample(permanent, &mut self.rng);
            self.events
                .schedule(self.now + dur, Ev::RepairDone { node });
        } else {
            let policy = self.config.remediation;
            let lc = NodeLifecycle::begin(permanent);
            let dur = lc.attempt_duration(&policy, &mut self.rng);
            self.lifecycles.insert(node, lc);
            self.events
                .schedule(self.now + dur, Ev::RepairAttempt { node });
        }
    }

    /// Returns a repaired node to service: the terminal success transition
    /// of both the legacy and the fallible repair paths.
    fn return_to_service(&mut self, node: NodeId) {
        self.cluster.repair_node(node);
        self.broken.remove(&node);
        self.draining.remove(&node);
        self.lifecycles.remove(&node);
        self.sched.set_node_available(node, true);
        self.record_node_event(node, NodeEventKind::ExitRemediation);
    }

    /// Records a node lifecycle transition at the current time (and
    /// mirrors it to the bus).
    fn record_node_event(&mut self, node: NodeId, kind: NodeEventKind) {
        let event = NodeEvent {
            node,
            at: self.now,
            kind,
        };
        self.emit(&SimEvent::Node(&event));
        self.telemetry.push_node_event(event);
    }

    /// Drains the control-plane command queue, applying commands in push
    /// order at the current simulated time. Bounded rounds: actuating a
    /// command emits bus events the controller may respond to with
    /// follow-up commands at the same instant; anything still pending
    /// after the last round waits for the next scheduling cycle.
    fn drain_control_commands(&mut self) {
        let Some(queue) = self.commands.clone() else {
            return;
        };
        for _ in 0..4 {
            let batch = queue.drain();
            if batch.is_empty() {
                break;
            }
            for cmd in batch {
                self.apply_control_command(cmd);
            }
        }
    }

    /// Applies one control command: actuate it if its budget admitted it
    /// and the target is in an actuatable state, then record the action
    /// (accepted or not) in telemetry and on the bus.
    fn apply_control_command(&mut self, cmd: ControlCommand) {
        let (kind, node, value) = match cmd.verb {
            ControlVerb::RemediateNode { node } => {
                (ControlActionKind::RemediateNode, Some(node), 0)
            }
            ControlVerb::QuarantineNode { node, .. } => {
                (ControlActionKind::QuarantineNode, Some(node), 0)
            }
            ControlVerb::AdaptiveRouting => (ControlActionKind::AdaptiveRouting, None, 0),
            ControlVerb::RestoreRouting => (ControlActionKind::RestoreRouting, None, 0),
            ControlVerb::RetuneCheckpoint { interval } => (
                ControlActionKind::RetuneCheckpoint,
                None,
                interval.as_secs(),
            ),
        };
        let accepted = cmd.budget_ok
            && match cmd.verb {
                ControlVerb::RemediateNode { node } | ControlVerb::QuarantineNode { node, .. } => {
                    self.cluster.node_state(node) != NodeState::Remediation
                }
                ControlVerb::AdaptiveRouting => !self.routing_adaptive,
                ControlVerb::RestoreRouting => self.routing_adaptive,
                ControlVerb::RetuneCheckpoint { interval } => self.ckpt_retune != Some(interval),
            };
        if accepted {
            match cmd.verb {
                ControlVerb::RemediateNode { node } => {
                    let victims =
                        self.sched
                            .interrupt_node(node, InterruptCause::HealthCheck, self.now);
                    for v in victims {
                        self.maybe_exclude(&[node], v);
                    }
                    self.remediate(node, true);
                }
                ControlVerb::QuarantineNode { node, release } => {
                    let victims =
                        self.sched
                            .interrupt_node(node, InterruptCause::HealthCheck, self.now);
                    for v in victims {
                        self.maybe_exclude(&[node], v);
                    }
                    self.cluster.remediate_node(node, self.now);
                    self.sched.set_node_available(node, false);
                    self.draining.remove(&node);
                    self.record_node_event(node, NodeEventKind::EnterRemediation);
                    self.record_node_event(node, NodeEventKind::Quarantined);
                    self.lifecycles.insert(
                        node,
                        NodeLifecycle::begin_quarantined(QuarantineOrigin::Controller),
                    );
                    if let Some(policy) = release {
                        self.release_policies.insert(node, policy);
                        self.events
                            .schedule(self.now + policy.window, Ev::ReleaseWindow { node });
                    }
                }
                ControlVerb::AdaptiveRouting => self.routing_adaptive = true,
                ControlVerb::RestoreRouting => self.routing_adaptive = false,
                ControlVerb::RetuneCheckpoint { interval } => self.ckpt_retune = Some(interval),
            }
        }
        self.record_control_action(ControlActionEvent {
            at: self.now,
            kind,
            trigger: cmd.trigger,
            node,
            job: None,
            accepted,
            value,
        });
    }

    /// Records a control action at the current time (and mirrors it to
    /// the bus).
    fn record_control_action(&mut self, event: ControlActionEvent) {
        self.emit(&SimEvent::ControlAction(&event));
        self.telemetry.push_control_action(event);
    }

    /// Resolves one controlled-release observation window on a
    /// controller-quarantined node: release it back to service after
    /// enough consecutive clean windows, otherwise keep watching.
    fn handle_release_window(&mut self, node: NodeId) {
        let Some(policy) = self.release_policies.get(&node).copied() else {
            return;
        };
        let Some(mut lc) = self.lifecycles.get(&node).copied() else {
            self.release_policies.remove(&node);
            return;
        };
        match lc.resolve_release_window(&policy, &mut self.rng) {
            ReleaseOutcome::Released => {
                self.release_policies.remove(&node);
                self.record_control_action(ControlActionEvent {
                    at: self.now,
                    kind: ControlActionKind::ReleaseNode,
                    trigger: ControlTrigger::Controller,
                    node: Some(node),
                    job: None,
                    accepted: true,
                    value: u64::from(policy.clean_windows),
                });
                self.return_to_service(node);
            }
            ReleaseOutcome::Progress { .. } | ReleaseOutcome::Reset => {
                self.lifecycles.insert(node, lc);
                self.events
                    .schedule(self.now + policy.window, Ev::ReleaseWindow { node });
            }
            ReleaseOutcome::Absorbing => {
                self.release_policies.remove(&node);
            }
        }
    }

    /// Resolves one fallible repair attempt: succeed (into service or
    /// probation), retry/escalate with backoff, or quarantine.
    fn handle_repair_attempt(&mut self, node: NodeId) {
        let policy = self.config.remediation;
        let Some(mut lc) = self.lifecycles.get(&node).copied() else {
            return;
        };
        match lc.resolve_attempt(&policy, &mut self.rng) {
            AttemptOutcome::Succeeded {
                probation: false, ..
            } => {
                self.return_to_service(node);
            }
            AttemptOutcome::Succeeded {
                probation: true, ..
            } => {
                self.lifecycles.insert(node, lc);
                self.record_node_event(node, NodeEventKind::EnterProbation);
                self.events.schedule(
                    self.now + policy.probation.window,
                    Ev::ProbationEnd { node },
                );
            }
            AttemptOutcome::Failed { escalated_to, .. } => {
                self.record_node_event(node, NodeEventKind::RepairAttemptFailed);
                if escalated_to.is_some() {
                    self.record_node_event(node, NodeEventKind::RepairEscalated);
                }
                let dur = lc.attempt_duration(&policy, &mut self.rng);
                self.lifecycles.insert(node, lc);
                self.events
                    .schedule(self.now + dur, Ev::RepairAttempt { node });
            }
            AttemptOutcome::Quarantined => {
                self.lifecycles.insert(node, lc);
                self.record_node_event(node, NodeEventKind::Quarantined);
                // The node stays in `NodeState::Remediation` forever: its
                // open remediation interval is charged to the horizon, and
                // the Quarantined event feeds lemon detection.
            }
        }
    }

    /// Closes a node's probation window: re-admit, or back down the ladder.
    fn handle_probation_end(&mut self, node: NodeId) {
        let policy = self.config.remediation;
        let Some(mut lc) = self.lifecycles.get(&node).copied() else {
            return;
        };
        match lc.resolve_probation(&policy, &mut self.rng) {
            ProbationOutcome::Passed => {
                self.record_node_event(node, NodeEventKind::ProbationPassed);
                self.return_to_service(node);
            }
            ProbationOutcome::Failed { .. } => {
                self.record_node_event(node, NodeEventKind::ProbationFailed);
                let dur = lc.attempt_duration(&policy, &mut self.rng);
                self.lifecycles.insert(node, lc);
                self.events
                    .schedule(self.now + dur, Ev::RepairAttempt { node });
            }
            ProbationOutcome::Quarantined => {
                self.lifecycles.insert(node, lc);
                self.record_node_event(node, NodeEventKind::ProbationFailed);
                self.record_node_event(node, NodeEventKind::Quarantined);
            }
        }
    }

    /// Re-raises a silently-broken node's signals, detecting and removing
    /// it if a matching check is now live.
    fn remanifest_broken(&mut self, node: NodeId) {
        let Some(&mode) = self.broken.get(&node) else {
            return;
        };
        if self.cluster.node_state(node) == NodeState::Remediation {
            return;
        }
        let symptom = self.injector.schedule().catalog().mode(mode).symptom;
        let synthetic = FailureEvent {
            at: self.now,
            node,
            mode,
            symptom,
            permanent: true,
        };
        self.staged_signals.clear();
        self.config
            .cooccurrence
            .expand_into(&synthetic, &mut self.rng, &mut self.staged_signals);
        self.staged_detections.clear();
        for signal in &self.staged_signals {
            self.monitor
                .observe_signal_into(signal, &mut self.staged_detections);
        }
        let any_detection = !self.staged_detections.is_empty();
        let any_high = self
            .staged_detections
            .iter()
            .any(|d| d.severity == Severity::High);
        self.drain_staged_detections();
        if any_high {
            let victims = self
                .sched
                .interrupt_node(node, InterruptCause::HealthCheck, self.now);
            for v in victims {
                self.maybe_exclude(&[node], v);
            }
            self.remediate(node, false);
        } else if any_detection {
            // Low-severity catch: stop feeding the broken node new jobs; it
            // remediates once its current jobs finish.
            self.drain_node(node);
            if self.sched.jobs_on_node(node).is_empty() {
                self.remediate(node, false);
            }
        }
    }

    /// Marks a node draining (idempotent), syncing scheduler availability
    /// and telemetry.
    fn drain_node(&mut self, node: NodeId) {
        if self.draining.insert(node) {
            self.cluster.begin_drain(node);
            self.sched.set_node_available(node, false);
            self.record_node_event(node, NodeEventKind::Drain);
        }
    }

    /// After a job vacates nodes, move now-empty draining nodes onward.
    fn check_drained(&mut self, nodes: &[NodeId]) {
        for &node in nodes {
            if self.draining.contains(&node) && self.sched.jobs_on_node(node).is_empty() {
                self.remediate(node, true);
            }
        }
    }

    /// Users sometimes exclude nodes after failures (the weakly-correlated
    /// lemon signal from Fig. 11).
    fn maybe_exclude(&mut self, nodes: &[NodeId], job: JobId) {
        if nodes.is_empty() {
            return;
        }
        if self.rng.chance(self.config.exclusion_prob) {
            let node = nodes[self.rng.below(nodes.len() as u64) as usize];
            let event = ExclusionEvent {
                node,
                job,
                at: self.now,
            };
            self.emit(&SimEvent::Exclusion(&event));
            self.telemetry.push_exclusion(event);
        }
    }

    /// Runs a scheduling cycle and post-processes starts: runs the Slurm
    /// prolog (preflight) against silently-broken nodes, schedules each
    /// surviving attempt's natural end, and arms crashes for jobs that
    /// land on undetected broken hardware.
    fn run_cycle(&mut self) {
        let started = self.sched.cycle(self.now);
        for s in started {
            if let Some(&broken_node) = s.nodes.iter().find(|n| self.broken.contains_key(n)) {
                // Preflight: the prolog check may catch the bad node right
                // at job start — the job goes straight back to the queue
                // and the node to remediation, no failure record.
                if self.rng.chance(self.config.preflight_detect_prob) {
                    self.sched
                        .interrupt_node(broken_node, InterruptCause::HealthCheck, self.now);
                    self.remediate(broken_node, false);
                    continue;
                }
                // Undetected: the job will crash shortly after start; the
                // crash re-raises the node's signals.
                let delay = SimDuration::from_secs_f64(self.rng.uniform_range(60.0, 1800.0));
                self.events.schedule(
                    self.now + delay,
                    Ev::HwCrash {
                        job: s.job,
                        attempt: s.attempt,
                    },
                );
            }
            self.maybe_ckpt_fallback(&s);
            self.arm_job_end(&s);
        }
    }

    /// At restart time, the newest checkpoints may be unreadable: roll the
    /// job's banked progress back and log the lost work. Draws nothing when
    /// the fallback policy is disabled (the default), so legacy runs keep
    /// their exact RNG stream.
    fn maybe_ckpt_fallback(&mut self, s: &StartedAttempt) {
        let policy = self.config.ckpt_fallback;
        if !policy.is_enabled() || s.attempt == 0 {
            return;
        }
        let has_banked = self
            .sched
            .job(s.job)
            .is_some_and(|j| j.checkpointed_work > SimDuration::ZERO);
        if !has_banked {
            return;
        }
        let intervals = policy.sample_fallback(&mut self.rng);
        if intervals == 0 {
            return;
        }
        if let Some((lost, gpus)) = self.sched.rollback_checkpoints(s.job, intervals) {
            let event = CheckpointFallbackEvent {
                at: self.now,
                job: s.job,
                gpus,
                intervals,
                lost,
            };
            self.emit(&SimEvent::CkptFallback(&event));
            self.telemetry.push_ckpt_fallback(event);
        }
    }

    /// Schedules the earliest of destiny / cancel / timeout for an attempt.
    /// No-op when the attempt already ended (e.g. a preflight kill on a
    /// shared node earlier in the same batch).
    fn arm_job_end(&mut self, s: &StartedAttempt) {
        let Some(job) = self.sched.job(s.job) else {
            return;
        };
        if job.attempt != s.attempt || !job.is_running() {
            return;
        }
        let spec = &job.spec;
        let (destiny_work, destiny_status) = spec.destiny_work();
        let remaining = destiny_work.saturating_sub(job.checkpointed_work);
        let natural_at =
            s.started_at + spec.restart_overhead + remaining.max(SimDuration::from_secs(1));
        let mut end_at = natural_at;
        let mut status = destiny_status;

        if let Destiny::Cancelled { after } = spec.destiny {
            let cancel_at = s.started_at + after.max(SimDuration::from_secs(1));
            if cancel_at < end_at {
                end_at = cancel_at;
                status = JobStatus::Cancelled;
            }
        }
        let timeout_at = s.started_at + spec.time_limit;
        if timeout_at < end_at {
            end_at = timeout_at;
            status = JobStatus::Timeout;
        }
        self.events.schedule(
            end_at,
            Ev::JobEnd {
                job: s.job,
                attempt: s.attempt,
                status,
            },
        );
    }
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("cluster", &self.config.cluster.name())
            .field("now", &self.now)
            .field("pending", &self.sched.pending_count())
            .field("running", &self.sched.running_count())
            .finish()
    }
}
