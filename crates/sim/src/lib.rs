#![warn(missing_docs)]

//! The wired-up cluster simulation for the `rsc-reliability` workspace.
//!
//! [`driver::ClusterSim`] combines the substrates — cluster hardware model,
//! Slurm-like scheduler, failure injector, health monitor, and workload
//! generator — into one deterministic discrete-event simulation that emits
//! the telemetry streams (`rsc-telemetry`) every analysis in `rsc-core`
//! consumes. [`config::SimConfig`] describes a scenario; presets replicate
//! the paper's RSC-1 and RSC-2 environments at full or reduced scale.
//! [`runner::ScenarioRunner`] executes batches of scenarios across worker
//! threads with an on-disk telemetry artifact cache, returning sealed
//! [`rsc_telemetry::TelemetryView`]s that are byte-identical whether
//! simulated sequentially, in parallel, or loaded from cache.
//!
//! # Example
//!
//! ```
//! use rsc_sim::config::SimConfig;
//! use rsc_sim::driver::ClusterSim;
//! use rsc_sim_core::time::SimDuration;
//!
//! let mut sim = ClusterSim::new(SimConfig::small_test_cluster(), 42);
//! let telemetry = sim.run(SimDuration::from_days(3));
//! assert!(!telemetry.jobs().is_empty());
//! ```

pub mod bus;
pub mod config;
pub mod control;
pub mod driver;
pub mod fleet;
mod plan;
pub mod runner;

pub use bus::{SimEvent, SimObserver};
pub use config::{EraPreset, SimConfig};
pub use control::{CommandQueue, ControlCommand, ControlVerb};
pub use driver::ClusterSim;
pub use fleet::{
    cgroup_memory_limit, FleetComparison, FleetMetrics, FleetResult, FleetSet, FleetSetResult,
    FleetSpec,
};
pub use runner::{CacheStats, ObservedOutcome, ScenarioRunner, ScenarioSpec};
