//! Multi-fleet orchestration: several independently-seeded clusters run
//! concurrently in one process, with per-fleet artifacts and a combined
//! cross-fleet comparison.
//!
//! The paper's analysis is inherently two-fleet — RSC-1 and RSC-2 share
//! infrastructure but differ in workload and failure rates, and most
//! tables compare them side by side. [`FleetSet`] models that: each fleet
//! is a named [`ScenarioSpec`] with its own derived seed, the set executes
//! through one [`ScenarioRunner`] (so fleets simulate concurrently on the
//! worker pool and each fleet's sealed telemetry lands in the artifact
//! cache under its own fingerprint), and the results reduce to a
//! [`FleetComparison`] — the cross-fleet metric table the paper reports.
//!
//! # Memory governance
//!
//! N fleets simulating concurrently multiply peak telemetry residency, so
//! a set can carry a **global memory budget**
//! ([`FleetSet::set_global_memory_budget`]): the cap is split across the
//! fleets proportionally to node count (telemetry volume scales with fleet
//! size) with a per-fleet floor, and each fleet runs under its share via
//! the spec-level budget ([`ScenarioSpec::with_memory_budget`]) — rotated
//! telemetry segments spill to disk and reload at seal, so sealed bytes,
//! fingerprints, and cached artifacts are identical to unbudgeted runs.
//! [`FleetSet::set_auto_memory_budget`] derives the cap from the cgroup v2
//! limit (`memory.max` / `memory.high`) when the process runs inside one.

use std::sync::Arc;

use rsc_sched::job::JobStatus;
use rsc_telemetry::view::TelemetryView;

use crate::config::SimConfig;
use crate::runner::{CacheStats, ScenarioRunner, ScenarioSpec};

/// Spreads a base seed into per-fleet seeds (golden-ratio stride, so any
/// two fleets' seeds differ in most bits). Fleet 0 keeps the base seed:
/// a single-fleet set is bit-for-bit the plain scenario, and its cached
/// artifact is shared with every other consumer of that (config, seed).
fn fleet_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One named fleet: the label its artifacts and comparison row carry,
/// plus the scenario it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Fleet label (e.g. `"RSC-1"`).
    pub name: String,
    /// The fleet's scenario (config, derived seed, horizon).
    pub scenario: ScenarioSpec,
}

/// Floor each fleet's budget share never drops below: under this the
/// telemetry store's per-stream capacities bottom out anyway, so smaller
/// shares only multiply rotations without saving memory.
pub const MIN_FLEET_BUDGET: usize = 1 << 20;

/// Splits a global byte budget across fleets proportionally to `weights`
/// (node counts), flooring every share at [`MIN_FLEET_BUDGET`]. The floor
/// is applied after the proportional split, so a set of many tiny fleets
/// next to one huge one may sum slightly above `total` — the floor is a
/// usefulness bound, not a hard partition.
fn split_budget(total: usize, weights: &[u64]) -> Vec<usize> {
    let sum: u128 = weights.iter().map(|&w| w as u128).sum();
    weights
        .iter()
        .map(|&w| {
            let share = (total as u128 * w as u128)
                .checked_div(sum)
                .map_or(total / weights.len().max(1), |s| s as usize);
            share.max(MIN_FLEET_BUDGET)
        })
        .collect()
}

/// Parses one cgroup v2 limit file body: a byte count, or `max` (no
/// limit) which maps to `None`.
fn parse_cgroup_limit(body: &str) -> Option<u64> {
    body.trim().parse().ok()
}

/// The effective cgroup v2 memory limit on this process, if any: the
/// smaller of `memory.max` (the OOM ceiling) and `memory.high` (the
/// throttle threshold), read from the unified hierarchy mount. `None`
/// outside a limited cgroup (either file absent or `max`).
pub fn cgroup_memory_limit() -> Option<u64> {
    let read = |name: &str| {
        std::fs::read_to_string(format!("/sys/fs/cgroup/{name}"))
            .ok()
            .and_then(|s| parse_cgroup_limit(&s))
    };
    match (read("memory.max"), read("memory.high")) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// A set of fleets executed together. See the module docs.
#[derive(Debug, Clone)]
pub struct FleetSet {
    fleets: Vec<FleetSpec>,
    runner: ScenarioRunner,
    global_budget: Option<usize>,
}

impl FleetSet {
    /// An empty set executing through `runner`.
    pub fn new(runner: ScenarioRunner) -> Self {
        FleetSet {
            fleets: Vec::new(),
            runner,
            global_budget: None,
        }
    }

    /// The canonical two-fleet set: full-size RSC-1 and RSC-2 presets over
    /// the same horizon, independently seeded off `base_seed` (RSC-1 keeps
    /// the base seed, RSC-2 gets a golden-ratio-strided one).
    pub fn rsc_pair(runner: ScenarioRunner, base_seed: u64, days: u64) -> Self {
        let mut set = FleetSet::new(runner);
        set.add_fleet("RSC-1", SimConfig::rsc1(), base_seed, days);
        set.add_fleet("RSC-2", SimConfig::rsc2(), base_seed, days);
        set
    }

    /// Adds a fleet. Its seed is derived from `base_seed` and the fleet's
    /// position, so two fleets added from the same base never share RNG
    /// streams.
    pub fn add_fleet(
        &mut self,
        name: impl Into<String>,
        config: SimConfig,
        base_seed: u64,
        days: u64,
    ) -> &mut Self {
        let seed = fleet_seed(base_seed, self.fleets.len());
        self.fleets.push(FleetSpec {
            name: name.into(),
            scenario: ScenarioSpec::new(config, seed, days),
        });
        self
    }

    /// The fleets, in addition order.
    pub fn fleets(&self) -> &[FleetSpec] {
        &self.fleets
    }

    /// Caps the set's combined resident telemetry at roughly `bytes`,
    /// split across fleets proportionally to node count at [`run`]
    /// (see the module docs). Sealed bytes are unchanged.
    pub fn set_global_memory_budget(&mut self, bytes: usize) -> &mut Self {
        self.global_budget = Some(bytes);
        self
    }

    /// [`Self::set_global_memory_budget`] with the cap derived from the
    /// host: half the cgroup v2 memory limit when the process runs inside
    /// one (leaving the other half for simulation state proper), else
    /// `fallback` bytes. Returns the cap chosen.
    pub fn set_auto_memory_budget(&mut self, fallback: usize) -> usize {
        let cap = cgroup_memory_limit()
            .map(|limit| (limit / 2) as usize)
            .unwrap_or(fallback);
        self.set_global_memory_budget(cap);
        cap
    }

    /// The global memory budget, if one is set.
    pub fn global_memory_budget(&self) -> Option<usize> {
        self.global_budget
    }

    /// Each fleet's share of the global budget (in addition order), or
    /// `None` when the set is unbudgeted.
    pub fn fleet_budgets(&self) -> Option<Vec<usize>> {
        let total = self.global_budget?;
        let weights: Vec<u64> = self
            .fleets
            .iter()
            .map(|f| f.scenario.config.cluster.num_nodes() as u64)
            .collect();
        Some(split_budget(total, &weights))
    }

    /// Executes every fleet concurrently on the runner's worker pool,
    /// returning per-fleet sealed views (in addition order) plus the
    /// cache accounting for the batch.
    pub fn run(&self) -> FleetSetResult {
        let budgets = self.fleet_budgets();
        let specs: Vec<ScenarioSpec> = self
            .fleets
            .iter()
            .enumerate()
            .map(|(i, f)| match &budgets {
                Some(b) => f.scenario.clone().with_memory_budget(b[i]),
                None => f.scenario.clone(),
            })
            .collect();
        let (views, cache) = self.runner.run_all_with_stats(&specs);
        let fleets = self
            .fleets
            .iter()
            .zip(views)
            .map(|(f, view)| FleetResult {
                name: f.name.clone(),
                fingerprint: f.scenario.fingerprint(),
                view,
            })
            .collect();
        FleetSetResult { fleets, cache }
    }
}

/// One fleet's completed run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Fleet label.
    pub name: String,
    /// The scenario fingerprint its cached artifact is filed under.
    pub fingerprint: u64,
    /// The fleet's sealed telemetry.
    pub view: Arc<TelemetryView>,
}

/// All fleets' completed runs.
#[derive(Debug, Clone)]
pub struct FleetSetResult {
    /// Per-fleet results, in addition order.
    pub fleets: Vec<FleetResult>,
    /// Cache accounting for the batch.
    pub cache: CacheStats,
}

impl FleetSetResult {
    /// Reduces every fleet's telemetry to the cross-fleet metric table.
    pub fn comparison(&self) -> FleetComparison {
        FleetComparison {
            rows: self
                .fleets
                .iter()
                .map(|f| FleetMetrics::from_view(&f.name, &f.view))
                .collect(),
        }
    }
}

/// One fleet's reduced reliability metrics (a row of the comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Fleet label.
    pub name: String,
    /// Cluster size in nodes.
    pub nodes: u32,
    /// Measurement horizon in days.
    pub horizon_days: f64,
    /// Job attempt records.
    pub job_records: usize,
    /// Attempts that ran to completion.
    pub completed: usize,
    /// Attempts ended by node failure.
    pub node_fails: usize,
    /// Node-days of job runtime (the failure-rate denominator).
    pub node_days: f64,
    /// Node-failure attempts per 1000 node-days — the paper's headline
    /// cross-fleet rate (RSC-1 ≈ 6.5, RSC-2 ≈ 2.3 in §III).
    pub failures_per_1000_node_days: f64,
    /// GPU swaps performed by repairs (§III corroboration).
    pub gpu_swaps: u64,
    /// Health-check events recorded.
    pub health_events: usize,
    /// User node-exclusion events (the lemon `excl_jobid_count` signal).
    pub exclusions: usize,
}

impl FleetMetrics {
    /// Computes the row from one sealed view.
    pub fn from_view(name: &str, view: &TelemetryView) -> Self {
        let jobs = view.jobs();
        let completed = jobs
            .iter()
            .filter(|r| r.status == JobStatus::Completed)
            .count();
        let node_fails = jobs
            .iter()
            .filter(|r| r.status == JobStatus::NodeFail)
            .count();
        let node_days = view.node_days_of_runtime(0);
        FleetMetrics {
            name: name.to_string(),
            nodes: view.num_nodes(),
            horizon_days: view.horizon().as_days(),
            job_records: jobs.len(),
            completed,
            node_fails,
            node_days,
            failures_per_1000_node_days: if node_days > 0.0 {
                node_fails as f64 * 1000.0 / node_days
            } else {
                0.0
            },
            gpu_swaps: view.gpu_swaps(),
            health_events: view.health_events().len(),
            exclusions: view.exclusions().len(),
        }
    }
}

/// The cross-fleet metric table.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetComparison {
    /// One row per fleet, in fleet-addition order.
    pub rows: Vec<FleetMetrics>,
}

impl FleetComparison {
    /// Renders the table as CSV (header + one row per fleet), the
    /// combined export the two-fleet example writes.
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "fleet,nodes,horizon_days,job_records,completed,node_fails,node_days,\
             failures_per_1000_node_days,gpu_swaps,health_events,exclusions\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{},{},{:.2},{},{},{},{:.2},{:.3},{},{},{}\n",
                r.name,
                r.nodes,
                r.horizon_days,
                r.job_records,
                r.completed,
                r.node_fails,
                r.node_days,
                r.failures_per_1000_node_days,
                r.gpu_swaps,
                r.health_events,
                r.exclusions,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_splits_proportionally_with_floor() {
        // 3:1 node weights → 3:1 shares.
        let shares = split_budget(400 << 20, &[30_000, 10_000]);
        assert_eq!(shares, vec![300 << 20, 100 << 20]);
        // A tiny fleet's proportional share floors at MIN_FLEET_BUDGET.
        let shares = split_budget(100 << 20, &[1_000_000, 64]);
        assert_eq!(shares[1], MIN_FLEET_BUDGET);
        assert!(shares[0] > (99 << 20));
        // Degenerate zero weights fall back to an even split.
        let shares = split_budget(8 << 20, &[0, 0]);
        assert_eq!(shares, vec![4 << 20, 4 << 20]);
    }

    #[test]
    fn cgroup_limit_parsing() {
        assert_eq!(parse_cgroup_limit("1073741824\n"), Some(1 << 30));
        assert_eq!(parse_cgroup_limit("max\n"), None);
        assert_eq!(parse_cgroup_limit(""), None);
        // Whatever this host's cgroup situation, probing it must not panic.
        let _ = cgroup_memory_limit();
    }

    #[test]
    fn global_budget_is_invisible_in_fleet_telemetry() {
        let mut unbudgeted = FleetSet::new(ScenarioRunner::without_cache().workers(2));
        unbudgeted.add_fleet("A", SimConfig::small_test_cluster(), 7, 3);
        unbudgeted.add_fleet("B", SimConfig::small_test_cluster(), 7, 3);
        let plain = unbudgeted.run();

        let mut budgeted = FleetSet::new(ScenarioRunner::without_cache().workers(2));
        budgeted.add_fleet("A", SimConfig::small_test_cluster(), 7, 3);
        budgeted.add_fleet("B", SimConfig::small_test_cluster(), 7, 3);
        // A cap small enough that each fleet's share hits the floor and
        // forces mid-run segment rotations through the spill path.
        budgeted.set_global_memory_budget(2 * MIN_FLEET_BUDGET);
        assert_eq!(
            budgeted.fleet_budgets(),
            Some(vec![MIN_FLEET_BUDGET, MIN_FLEET_BUDGET])
        );
        let capped = budgeted.run();

        for (a, b) in plain.fleets.iter().zip(&capped.fleets) {
            assert_eq!(a.view.chain_heads(), b.view.chain_heads());
            assert_eq!(a.view.jobs(), b.view.jobs());
        }
    }

    #[test]
    fn fleet_seeds_are_distinct_and_base_preserving() {
        assert_eq!(fleet_seed(42, 0), 42);
        let seeds: Vec<u64> = (0..4).map(|i| fleet_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn two_fleets_run_concurrently_and_match_solo_runs() {
        let mut set = FleetSet::new(ScenarioRunner::without_cache().workers(2));
        set.add_fleet("A", SimConfig::small_test_cluster(), 7, 2);
        set.add_fleet("B", SimConfig::small_test_cluster(), 7, 2);
        // Independent seeding: same config and base seed, different fleets.
        assert_ne!(set.fleets()[0].scenario.seed, set.fleets()[1].scenario.seed);
        let result = set.run();
        assert_eq!(result.fleets.len(), 2);
        for (fleet, spec) in result.fleets.iter().zip(set.fleets()) {
            let solo = spec.scenario.simulate();
            assert_eq!(fleet.view.jobs(), solo.jobs());
            assert_eq!(fleet.view.chain_heads(), solo.chain_heads());
        }
        // Different seeds actually produced different histories.
        assert_ne!(
            result.fleets[0].view.chain_heads(),
            result.fleets[1].view.chain_heads()
        );
    }

    #[test]
    fn comparison_rows_reduce_each_view() {
        let mut set = FleetSet::new(ScenarioRunner::without_cache().workers(2));
        set.add_fleet("A", SimConfig::small_test_cluster(), 3, 2);
        let result = set.run();
        let cmp = result.comparison();
        assert_eq!(cmp.rows.len(), 1);
        let row = &cmp.rows[0];
        assert_eq!(row.name, "A");
        assert_eq!(row.nodes, 64);
        assert_eq!(row.job_records, result.fleets[0].view.jobs().len());
        assert!(row.completed <= row.job_records);
        assert!(row.node_days > 0.0);
        let csv = cmp.to_csv();
        assert!(csv.starts_with("fleet,nodes,"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("A,64,"));
    }

    #[test]
    fn per_fleet_artifacts_land_in_the_cache() {
        let dir = std::env::temp_dir().join(format!("rsc-fleet-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let runner = ScenarioRunner::new().with_cache_dir(&dir).workers(2);
        let mut set = FleetSet::new(runner);
        set.add_fleet("A", SimConfig::small_test_cluster(), 11, 2);
        set.add_fleet("B", SimConfig::small_test_cluster(), 11, 2);
        let cold = set.run();
        assert_eq!(cold.cache.misses, 2);
        for fleet in &cold.fleets {
            assert!(
                dir.join(format!("{:016x}.snap", fleet.fingerprint))
                    .exists(),
                "missing artifact for fleet {}",
                fleet.name
            );
        }
        let warm = set.run();
        assert_eq!(warm.cache.hits, 2);
        assert_eq!(
            warm.fleets[0].view.chain_heads(),
            cold.fleets[0].view.chain_heads()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
