//! Simulation scenario configuration and presets.

use serde::{Deserialize, Serialize};

use rsc_cluster::spec::ClusterSpec;
use rsc_failure::cooccur::CooccurrenceProfile;
use rsc_failure::modes::ModeCatalog;
use rsc_health::lifecycle::RemediationPolicy;
use rsc_health::registry::CheckRegistry;
use rsc_health::remediation::RepairPolicy;
use rsc_sched::project::ProjectQuotas;
use rsc_sched::sched::SchedConfig;
use rsc_sim_core::time::SimDuration;
use rsc_storage::checkpoint::CheckpointFallbackPolicy;
use rsc_workload::profile::WorkloadProfile;

/// Which era storyline (paper Fig. 5) to overlay on the failure rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EraPreset {
    /// Stationary rates.
    None,
    /// RSC-1: GSP driver regression early, IB-link node spike in summer.
    Rsc1,
    /// RSC-2: the IB-link spike only.
    Rsc2,
}

/// Full description of a simulated cluster scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cluster sizing.
    pub cluster: ClusterSpec,
    /// Workload profile (should be pre-calibrated to the cluster size).
    pub workload: WorkloadProfile,
    /// Failure-mode catalog with per-mode rates.
    pub modes: ModeCatalog,
    /// Signal co-occurrence structure.
    pub cooccurrence: CooccurrenceProfile,
    /// Deployed health checks.
    pub registry: CheckRegistry,
    /// Repair-duration model.
    pub repair: RepairPolicy,
    /// Fallible-remediation lifecycle (escalation ladder, retry budgets,
    /// probation). The default, [`RemediationPolicy::infallible`], keeps the
    /// legacy always-succeeds repair path and its exact RNG stream.
    pub remediation: RemediationPolicy,
    /// Fallible checkpoint restores. The default,
    /// [`CheckpointFallbackPolicy::disabled`], keeps restarts lossless
    /// beyond the usual floor-to-checkpoint rule.
    pub ckpt_fallback: CheckpointFallbackPolicy,
    /// Scheduler policy.
    pub sched: SchedConfig,
    /// Project GPU quotas (unlimited by default).
    pub quotas: ProjectQuotas,
    /// Era storyline.
    pub eras: EraPreset,
    /// Number of lemon nodes to plant.
    pub lemon_count: usize,
    /// Median extra failure rate per lemon, failures/day.
    pub lemon_extra_rate_median: f64,
    /// Nodes participating in the summer IB-link spike.
    pub ib_spike_node_count: usize,
    /// How long until the scheduler declares a hung node NODE_FAIL.
    pub heartbeat_timeout: SimDuration,
    /// Probability a user excludes a node after their job fails on it.
    pub exclusion_prob: f64,
    /// Probability a low-severity fault crashes each job on the node.
    pub low_severity_crash_prob: f64,
    /// Probability the Slurm prolog (preflight) check catches a silently
    /// broken node at job start, sending it to remediation instead of
    /// failing the job (paper §II-A: checks run before a job).
    pub preflight_detect_prob: f64,
}

impl SimConfig {
    /// Full-fidelity RSC-1: 2,048 nodes, 7.2k jobs/day, the Fig. 5 era
    /// storyline, 24 lemon nodes.
    pub fn rsc1() -> Self {
        let cluster = ClusterSpec::rsc1();
        let mut workload = WorkloadProfile::rsc1();
        workload.calibrate_load(cluster.total_gpus(), 0.95);
        SimConfig {
            cluster,
            workload,
            // Residual background: 24 lemons × 0.12/day ≈ 22% of the
            // observed 6.50/1000 node-day total, so the base modes carry
            // the rest and base + lemons reproduces the published rate.
            modes: ModeCatalog::rsc1().scaled_rates(0.78),
            cooccurrence: CooccurrenceProfile::rsc1(),
            registry: CheckRegistry::rsc_default(),
            repair: RepairPolicy::rsc_default(),
            remediation: RemediationPolicy::infallible(),
            ckpt_fallback: CheckpointFallbackPolicy::disabled(),
            sched: SchedConfig::rsc_default(),
            quotas: ProjectQuotas::unlimited(),
            eras: EraPreset::Rsc1,
            lemon_count: 24,
            lemon_extra_rate_median: 0.12,
            ib_spike_node_count: 12,
            heartbeat_timeout: SimDuration::from_mins(10),
            exclusion_prob: 0.25,
            low_severity_crash_prob: 0.5,
            preflight_detect_prob: 0.5,
        }
    }

    /// Full-fidelity RSC-2: 1,024 nodes, 4.4k jobs/day, 16 lemons.
    pub fn rsc2() -> Self {
        let cluster = ClusterSpec::rsc2();
        let mut workload = WorkloadProfile::rsc2();
        workload.calibrate_load(cluster.total_gpus(), 0.95);
        SimConfig {
            cluster,
            workload,
            // 16 lemons × 0.05/day ≈ a third of RSC-2's 2.34/1000
            // node-day total; base modes carry the residual.
            modes: ModeCatalog::rsc2().scaled_rates(0.67),
            cooccurrence: CooccurrenceProfile::rsc2(),
            registry: CheckRegistry::rsc_default(),
            repair: RepairPolicy::rsc_default(),
            remediation: RemediationPolicy::infallible(),
            ckpt_fallback: CheckpointFallbackPolicy::disabled(),
            sched: SchedConfig::rsc_default(),
            quotas: ProjectQuotas::unlimited(),
            eras: EraPreset::Rsc2,
            lemon_count: 16,
            lemon_extra_rate_median: 0.05,
            ib_spike_node_count: 8,
            heartbeat_timeout: SimDuration::from_mins(10),
            exclusion_prob: 0.25,
            low_severity_crash_prob: 0.5,
            preflight_detect_prob: 0.5,
        }
    }

    /// A scaled-down replica of a full config: `1/divisor` of the nodes and
    /// arrival rate, with the workload's oversized jobs folded away. Failure
    /// *rates* are per node-day and stay unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero or does not divide the node count.
    pub fn scaled_down(&self, divisor: u32) -> Self {
        assert!(divisor > 0, "divisor must be positive");
        let nodes = self.cluster.num_nodes() / divisor;
        assert!(nodes > 0, "too large a divisor");
        let cluster = ClusterSpec::new(format!("{}/{}", self.cluster.name(), divisor), nodes);
        let mut workload = self.workload.scaled(1.0 / divisor as f64);
        workload.calibrate_load(cluster.total_gpus(), 0.95);
        SimConfig {
            cluster,
            workload,
            lemon_count: (self.lemon_count as u32 / divisor).max(1) as usize,
            ib_spike_node_count: (self.ib_spike_node_count as u32 / divisor).max(3) as usize,
            ..self.clone()
        }
    }

    /// A 64-node scenario for tests and examples: RSC-1-like behaviour at
    /// 1/32 scale, no lemons, stationary rates.
    pub fn small_test_cluster() -> Self {
        let cluster = ClusterSpec::small_test();
        let mut workload = WorkloadProfile::rsc1().scaled(1.0 / 32.0);
        workload.calibrate_load(cluster.total_gpus(), 0.95);
        SimConfig {
            cluster,
            workload,
            modes: ModeCatalog::rsc1(),
            cooccurrence: CooccurrenceProfile::rsc1(),
            registry: CheckRegistry::rsc_default(),
            repair: RepairPolicy::rsc_default(),
            remediation: RemediationPolicy::infallible(),
            ckpt_fallback: CheckpointFallbackPolicy::disabled(),
            sched: SchedConfig::rsc_default(),
            quotas: ProjectQuotas::unlimited(),
            eras: EraPreset::None,
            lemon_count: 0,
            lemon_extra_rate_median: 0.12,
            ib_spike_node_count: 0,
            heartbeat_timeout: SimDuration::from_mins(10),
            exclusion_prob: 0.25,
            low_severity_crash_prob: 0.5,
            preflight_detect_prob: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let c = SimConfig::rsc1();
        assert_eq!(c.cluster.total_gpus(), 16_384);
        // Residual base + expected lemon contribution ≈ published total.
        let lemon_rate =
            c.lemon_count as f64 * c.lemon_extra_rate_median / c.cluster.num_nodes() as f64;
        let total = c.modes.total_rate() + lemon_rate;
        assert!((total - 6.5e-3).abs() < 0.5e-3, "rsc1 total={total}");
        let c2 = SimConfig::rsc2();
        assert_eq!(c2.cluster.total_gpus(), 8_192);
        let lemon_rate2 =
            c2.lemon_count as f64 * c2.lemon_extra_rate_median / c2.cluster.num_nodes() as f64;
        let total2 = c2.modes.total_rate() + lemon_rate2;
        assert!((total2 - 2.34e-3).abs() < 0.3e-3, "rsc2 total={total2}");
    }

    #[test]
    fn scaled_down_divides_cluster_and_load() {
        let c = SimConfig::rsc1().scaled_down(8);
        assert_eq!(c.cluster.num_nodes(), 256);
        assert!((c.workload.jobs_per_day - 900.0).abs() < 1.0);
        // Offered load re-calibrated to the smaller cluster.
        let offered = c.workload.offered_gpu_hours_per_day();
        let target = c.cluster.total_gpus() as f64 * 24.0 * 0.95;
        assert!((offered - target).abs() / target < 1e-6);
    }

    #[test]
    fn small_test_cluster_is_small() {
        let c = SimConfig::small_test_cluster();
        assert_eq!(c.cluster.num_nodes(), 64);
        assert_eq!(c.lemon_count, 0);
    }
}
