//! The control-plane command channel: how a closed-loop controller
//! actuates the simulation it observes.
//!
//! Observers on the [`bus`](crate::bus) are strictly passive — they may
//! never touch the driver's RNG or state from inside an event callback.
//! A controller therefore gains agency only *indirectly*: it pushes
//! [`ControlCommand`]s into a [`CommandQueue`] shared with the driver, and
//! the driver drains the queue at fixed points of its event loop (after
//! each scheduling cycle), applying commands **in push order at the
//! current simulated time**. Because observers run synchronously on a
//! single thread, push order is deterministic, so a closed-loop run is as
//! replayable as an open-loop one: same config + seed + policy → identical
//! telemetry, byte for byte.
//!
//! With no queue attached (the default) the driver pays one `Option`
//! check per loop iteration and its telemetry stays byte-identical to
//! pre-control-plane builds. An attached-but-silent queue (a controller
//! with a disabled policy) likewise leaves the bytes untouched: draining
//! an empty queue draws nothing and records nothing.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use rsc_cluster::ids::NodeId;
use rsc_health::lifecycle::ReleasePolicy;
use rsc_sim_core::time::SimDuration;
use rsc_telemetry::store::ControlTrigger;

/// What a control command asks the driver to do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlVerb {
    /// Pull a node for a remediation visit (interrupt its jobs, walk the
    /// repair path). The soft mitigation for lemon suspects.
    RemediateNode {
        /// The node to pull.
        node: NodeId,
    },
    /// Quarantine a node preemptively. With a [`ReleasePolicy`] the
    /// quarantine is controller-initiated and may be released after
    /// enough clean observation windows; without one it is absorbing,
    /// like an operator write-off.
    QuarantineNode {
        /// The node to quarantine.
        node: NodeId,
        /// Controlled-release schedule, if any.
        release: Option<ReleasePolicy>,
    },
    /// Flip fabric routing from static to adaptive.
    AdaptiveRouting,
    /// Restore the fabric's baseline static routing policy.
    RestoreRouting,
    /// Re-solve the fleet checkpoint cadence: newly submitted jobs
    /// checkpoint at `interval` from now on.
    RetuneCheckpoint {
        /// The new checkpoint interval.
        interval: SimDuration,
    },
}

/// One actuation request from the control plane.
///
/// `budget_ok == false` marks a command the controller *wanted* to issue
/// but could not afford under its budget: the driver records the action
/// with `accepted == false` and actuates nothing — the graceful
/// degradation to alert-only the audit trail must still show.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlCommand {
    /// The requested actuation.
    pub verb: ControlVerb,
    /// Which alert condition motivated it.
    pub trigger: ControlTrigger,
    /// Whether the controller's budget admitted the action.
    pub budget_ok: bool,
}

/// The shared FIFO between a controller (producer) and the driver
/// (consumer). Cloning shares the underlying queue.
#[derive(Debug, Clone, Default)]
pub struct CommandQueue(Arc<Mutex<VecDeque<ControlCommand>>>);

impl CommandQueue {
    /// An empty queue.
    pub fn new() -> Self {
        CommandQueue::default()
    }

    /// Enqueues a command. Commands are applied in push order.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned (a producer panicked mid-push).
    pub fn push(&self, cmd: ControlCommand) {
        self.0
            .lock()
            .expect("command queue poisoned")
            .push_back(cmd);
    }

    /// Takes every pending command, in push order.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn drain(&self) -> Vec<ControlCommand> {
        self.0
            .lock()
            .expect("command queue poisoned")
            .drain(..)
            .collect()
    }

    /// Whether any command is pending.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn is_empty(&self) -> bool {
        self.0.lock().expect("command queue poisoned").is_empty()
    }

    /// Number of pending commands.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn len(&self) -> usize {
        self.0.lock().expect("command queue poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_preserves_push_order_across_clones() {
        let q = CommandQueue::new();
        let producer = q.clone();
        assert!(q.is_empty());
        producer.push(ControlCommand {
            verb: ControlVerb::AdaptiveRouting,
            trigger: ControlTrigger::MttfRegression,
            budget_ok: true,
        });
        producer.push(ControlCommand {
            verb: ControlVerb::RemediateNode {
                node: NodeId::new(3),
            },
            trigger: ControlTrigger::LemonSuspect,
            budget_ok: false,
        });
        assert_eq!(q.len(), 2);
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].verb, ControlVerb::AdaptiveRouting);
        assert!(matches!(
            drained[1].verb,
            ControlVerb::RemediateNode { node } if node == NodeId::new(3)
        ));
        assert!(!drained[1].budget_ok);
        assert!(q.is_empty());
    }
}
