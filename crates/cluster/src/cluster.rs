//! The live cluster: struct-of-arrays node state plus lazy cold records.
//!
//! The fields every hot path reads — availability state, pod, health epoch —
//! live in dense arrays indexed by node id, so the driver's per-failure
//! state checks and the scheduler's scans touch contiguous memory. The cold
//! per-node record ([`Node`]: GPUs, host components, lemon counters) is a
//! boxed side table materialized only when a failure actually touches the
//! node: at a million nodes a fresh cluster allocates three flat arrays
//! instead of millions of per-node heap objects.

use serde::{Deserialize, Serialize};

use rsc_sim_core::time::SimTime;

use crate::component::{ComponentHealth, ComponentKind};
use crate::ids::NodeId;
use crate::node::{Node, NodeState};
use crate::spec::ClusterSpec;
use crate::topology::Topology;

/// A cluster instance: the spec, derived topology, and mutable node states.
///
/// ```
/// use rsc_cluster::cluster::Cluster;
/// use rsc_cluster::spec::ClusterSpec;
///
/// let cluster = Cluster::new(ClusterSpec::small_test());
/// assert_eq!(cluster.num_nodes(), 64);
/// assert_eq!(cluster.schedulable_count(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    spec: ClusterSpec,
    topology: Topology,
    /// Scan-hot: per-node availability state.
    states: Vec<NodeState>,
    /// Scan-hot: bumped on every availability transition of the node.
    health_epochs: Vec<u32>,
    /// Maintained count of [`NodeState::Healthy`] nodes.
    schedulable: usize,
    /// Maintained count of [`NodeState::Remediation`] nodes.
    remediation: usize,
    /// Cold records (GPUs, components, lemon counters), materialized only
    /// for nodes a failure has touched.
    cold: Vec<Option<Box<Node>>>,
    total_gpu_swaps: u64,
}

impl Cluster {
    /// Builds a cluster with all nodes healthy.
    pub fn new(spec: ClusterSpec) -> Self {
        let topology = Topology::new(&spec);
        let n = spec.num_nodes() as usize;
        Cluster {
            spec,
            topology,
            states: vec![NodeState::Healthy; n],
            health_epochs: vec![0; n],
            schedulable: n,
            remediation: 0,
            cold: {
                let mut cold = Vec::new();
                cold.resize_with(n, || None);
                cold
            },
            total_gpu_swaps: 0,
        }
    }

    /// The cluster's sizing spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The placement topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.states.len()
    }

    /// A node's current scheduler-facing availability state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this cluster.
    pub fn node_state(&self, id: NodeId) -> NodeState {
        self.states[id.as_usize()]
    }

    /// How many availability transitions the node has undergone. Bumped on
    /// every drain, remediation entry, and return to service, so pollers
    /// can cheaply detect "anything changed since epoch E".
    pub fn health_epoch(&self, id: NodeId) -> u32 {
        self.health_epochs[id.as_usize()]
    }

    /// The cold record for a node, if a failure has materialized one.
    /// `None` means the node is pristine: fresh GPUs, all components `Ok`,
    /// zero lemon counters.
    pub fn cold_node(&self, id: NodeId) -> Option<&Node> {
        self.cold[id.as_usize()].as_deref()
    }

    /// Mutable access to a node's cold record, materializing it on first
    /// touch.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this cluster.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let slot = &mut self.cold[id.as_usize()];
        slot.get_or_insert_with(|| {
            Box::new(Node::new(
                id,
                self.topology.rack_of(id),
                self.topology.pod_of(id),
            ))
        })
    }

    /// Ids of all nodes currently schedulable (healthy).
    pub fn schedulable_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_schedulable())
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// Number of schedulable nodes (maintained, O(1)).
    pub fn schedulable_count(&self) -> usize {
        self.schedulable
    }

    /// Number of nodes currently in remediation (maintained, O(1)).
    pub fn remediation_count(&self) -> usize {
        self.remediation
    }

    /// Number of nodes currently draining.
    pub fn draining_count(&self) -> usize {
        self.states.len() - self.schedulable - self.remediation
    }

    /// Transitions a node's state, keeping the maintained counts and the
    /// node's health epoch consistent. No-op when the state is unchanged.
    fn set_state(&mut self, id: NodeId, new: NodeState) {
        let i = id.as_usize();
        let old = self.states[i];
        if old == new {
            return;
        }
        match old {
            NodeState::Healthy => self.schedulable -= 1,
            NodeState::Remediation => self.remediation -= 1,
            NodeState::Draining => {}
        }
        match new {
            NodeState::Healthy => self.schedulable += 1,
            NodeState::Remediation => self.remediation += 1,
            NodeState::Draining => {}
        }
        self.states[i] = new;
        self.health_epochs[i] += 1;
    }

    /// Marks a node draining (low-severity check failure). No-op unless the
    /// node is healthy.
    pub fn begin_drain(&mut self, id: NodeId) {
        if self.states[id.as_usize()] == NodeState::Healthy {
            self.set_state(id, NodeState::Draining);
        }
    }

    /// Sends a node into remediation (high-severity path), filing a ticket
    /// and bumping its `out_count`. Idempotent: a node already in
    /// remediation is left alone.
    pub fn remediate_node(&mut self, id: NodeId, now: SimTime) {
        if self.states[id.as_usize()] != NodeState::Remediation {
            self.set_state(id, NodeState::Remediation);
            self.node_mut(id).note_outage(now);
        }
    }

    /// Completes repair of a node, returning it to service and accounting
    /// any GPU swaps that the repair performed. A pristine (never
    /// materialized) node has nothing to swap.
    pub fn repair_node(&mut self, id: NodeId) {
        let swapped = match &mut self.cold[id.as_usize()] {
            Some(node) => node.complete_repair(),
            None => 0,
        };
        self.total_gpu_swaps += swapped as u64;
        self.set_state(id, NodeState::Healthy);
    }

    /// Whether the node carries unrepaired hardware damage (a failed GPU or
    /// host component). Pristine nodes never do.
    pub fn has_hardware_damage(&self, id: NodeId) -> bool {
        match self.cold_node(id) {
            Some(node) => {
                node.gpus()
                    .iter()
                    .any(|g| g.health() != ComponentHealth::Ok)
                    || ComponentKind::ALL
                        .iter()
                        .any(|&k| node.component_health(k) != ComponentHealth::Ok)
            }
            None => false,
        }
    }

    /// Total GPU swaps performed across the cluster's lifetime — the paper
    /// compares RSC-1 vs RSC-2 swap rates as corroboration of differing
    /// failure rates.
    pub fn total_gpu_swaps(&self) -> u64 {
        self.total_gpu_swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentHealth;

    #[test]
    fn new_cluster_all_healthy() {
        let c = Cluster::new(ClusterSpec::new("t", 10));
        assert_eq!(c.num_nodes(), 10);
        assert_eq!(c.schedulable_count(), 10);
        assert_eq!(c.remediation_count(), 0);
        assert_eq!(c.schedulable_nodes().count(), 10);
        // Pristine cluster materializes no cold records.
        assert!((0..10).all(|i| c.cold_node(NodeId::new(i)).is_none()));
    }

    #[test]
    fn cold_record_placement_matches_topology() {
        let mut c = Cluster::new(ClusterSpec::new("t", 42));
        for i in 0..42 {
            let id = NodeId::new(i);
            let node = c.node_mut(id);
            assert_eq!(node.id(), id);
            let (rack, pod) = (node.rack(), node.pod());
            assert_eq!(rack, c.topology().rack_of(id));
            assert_eq!(pod, c.topology().pod_of(id));
        }
    }

    #[test]
    fn remediate_and_repair_cycle() {
        let mut c = Cluster::new(ClusterSpec::new("t", 4));
        let id = NodeId::new(2);
        c.remediate_node(id, SimTime::from_hours(3));
        assert_eq!(c.schedulable_count(), 3);
        assert_eq!(c.remediation_count(), 1);
        assert!(!c.schedulable_nodes().any(|n| n == id));
        assert_eq!(c.cold_node(id).unwrap().out_count(), 1);
        assert_eq!(
            c.cold_node(id).unwrap().last_out_at(),
            Some(SimTime::from_hours(3))
        );
        c.repair_node(id);
        assert_eq!(c.schedulable_count(), 4);
        assert_eq!(c.node_state(id), NodeState::Healthy);
    }

    #[test]
    fn remediation_is_idempotent() {
        let mut c = Cluster::new(ClusterSpec::new("t", 4));
        let id = NodeId::new(1);
        c.remediate_node(id, SimTime::ZERO);
        c.remediate_node(id, SimTime::from_hours(1));
        assert_eq!(c.cold_node(id).unwrap().out_count(), 1);
        assert_eq!(c.remediation_count(), 1);
    }

    #[test]
    fn drain_state_machine() {
        let mut c = Cluster::new(ClusterSpec::new("t", 4));
        let id = NodeId::new(0);
        c.begin_drain(id);
        assert_eq!(c.node_state(id), NodeState::Draining);
        assert_eq!(c.schedulable_count(), 3);
        assert_eq!(c.draining_count(), 1);
        // Drain does not downgrade remediation.
        c.remediate_node(id, SimTime::ZERO);
        c.begin_drain(id);
        assert_eq!(c.node_state(id), NodeState::Remediation);
        // Draining a node costs nothing cold: no record materialized.
        c.begin_drain(NodeId::new(3));
        assert!(c.cold_node(NodeId::new(3)).is_none());
    }

    #[test]
    fn health_epoch_counts_transitions() {
        let mut c = Cluster::new(ClusterSpec::new("t", 4));
        let id = NodeId::new(2);
        assert_eq!(c.health_epoch(id), 0);
        c.begin_drain(id);
        assert_eq!(c.health_epoch(id), 1);
        c.remediate_node(id, SimTime::ZERO);
        assert_eq!(c.health_epoch(id), 2);
        c.remediate_node(id, SimTime::from_hours(1)); // idempotent: no bump
        assert_eq!(c.health_epoch(id), 2);
        c.repair_node(id);
        assert_eq!(c.health_epoch(id), 3);
        assert_eq!(c.health_epoch(NodeId::new(0)), 0);
    }

    #[test]
    fn repair_counts_gpu_swaps() {
        let mut c = Cluster::new(ClusterSpec::new("t", 2));
        let id = NodeId::new(0);
        c.node_mut(id)
            .gpu_mut(3)
            .set_health(ComponentHealth::Failed);
        assert!(c.has_hardware_damage(id));
        c.remediate_node(id, SimTime::ZERO);
        c.repair_node(id);
        assert_eq!(c.total_gpu_swaps(), 1);
        assert!(!c.has_hardware_damage(id));
    }

    #[test]
    fn pristine_repair_swaps_nothing() {
        let mut c = Cluster::new(ClusterSpec::new("t", 2));
        let id = NodeId::new(1);
        assert!(!c.has_hardware_damage(id));
        c.repair_node(id);
        assert_eq!(c.total_gpu_swaps(), 0);
    }
}
