//! The live cluster: node inventory plus state bookkeeping.

use serde::{Deserialize, Serialize};

use rsc_sim_core::time::SimTime;

use crate::ids::NodeId;
use crate::node::{Node, NodeState};
use crate::spec::ClusterSpec;
use crate::topology::Topology;

/// A cluster instance: the spec, derived topology, and mutable node states.
///
/// ```
/// use rsc_cluster::cluster::Cluster;
/// use rsc_cluster::spec::ClusterSpec;
///
/// let cluster = Cluster::new(ClusterSpec::small_test());
/// assert_eq!(cluster.nodes().len(), 64);
/// assert_eq!(cluster.schedulable_count(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    spec: ClusterSpec,
    topology: Topology,
    nodes: Vec<Node>,
    total_gpu_swaps: u64,
}

impl Cluster {
    /// Builds a cluster with all nodes healthy.
    pub fn new(spec: ClusterSpec) -> Self {
        let topology = Topology::new(&spec);
        let nodes = (0..spec.num_nodes())
            .map(|i| {
                let id = NodeId::new(i);
                Node::new(id, topology.rack_of(id), topology.pod_of(id))
            })
            .collect();
        Cluster {
            spec,
            topology,
            nodes,
            total_gpu_swaps: 0,
        }
    }

    /// The cluster's sizing spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The placement topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// All nodes, indexed by [`NodeId`] order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this cluster.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.as_usize()]
    }

    /// Mutable access to a node by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this cluster.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.as_usize()]
    }

    /// Ids of all nodes currently schedulable (healthy).
    pub fn schedulable_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.state().is_schedulable())
            .map(|n| n.id())
    }

    /// Number of schedulable nodes.
    pub fn schedulable_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state().is_schedulable())
            .count()
    }

    /// Number of nodes currently in remediation.
    pub fn remediation_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state() == NodeState::Remediation)
            .count()
    }

    /// Sends a node into remediation (high-severity path).
    pub fn remediate_node(&mut self, id: NodeId, now: SimTime) {
        self.nodes[id.as_usize()].enter_remediation(now);
    }

    /// Completes repair of a node, returning it to service and accounting
    /// any GPU swaps that the repair performed.
    pub fn repair_node(&mut self, id: NodeId) {
        let swapped = self.nodes[id.as_usize()].complete_repair();
        self.total_gpu_swaps += swapped as u64;
    }

    /// Total GPU swaps performed across the cluster's lifetime — the paper
    /// compares RSC-1 vs RSC-2 swap rates as corroboration of differing
    /// failure rates.
    pub fn total_gpu_swaps(&self) -> u64 {
        self.total_gpu_swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentHealth;

    #[test]
    fn new_cluster_all_healthy() {
        let c = Cluster::new(ClusterSpec::new("t", 10));
        assert_eq!(c.schedulable_count(), 10);
        assert_eq!(c.remediation_count(), 0);
        assert_eq!(c.schedulable_nodes().count(), 10);
    }

    #[test]
    fn node_placement_matches_topology() {
        let c = Cluster::new(ClusterSpec::new("t", 42));
        for node in c.nodes() {
            assert_eq!(node.rack(), c.topology().rack_of(node.id()));
            assert_eq!(node.pod(), c.topology().pod_of(node.id()));
        }
    }

    #[test]
    fn remediate_and_repair_cycle() {
        let mut c = Cluster::new(ClusterSpec::new("t", 4));
        let id = NodeId::new(2);
        c.remediate_node(id, SimTime::from_hours(3));
        assert_eq!(c.schedulable_count(), 3);
        assert_eq!(c.remediation_count(), 1);
        assert!(!c.schedulable_nodes().any(|n| n == id));
        c.repair_node(id);
        assert_eq!(c.schedulable_count(), 4);
    }

    #[test]
    fn repair_counts_gpu_swaps() {
        let mut c = Cluster::new(ClusterSpec::new("t", 2));
        let id = NodeId::new(0);
        c.node_mut(id)
            .gpu_mut(3)
            .set_health(ComponentHealth::Failed);
        c.remediate_node(id, SimTime::ZERO);
        c.repair_node(id);
        assert_eq!(c.total_gpu_swaps(), 1);
    }
}
