#![warn(missing_docs)]

//! Cluster hardware model for the `rsc-reliability` workspace.
//!
//! Models the RSC design template from the paper's §II: bare-metal DGX A100
//! servers (8 GPUs behind an NVSwitch), two servers per rack, ten racks per
//! rail-optimized pod, and a scheduler-facing node state machine
//! (healthy → draining → remediation → healthy).
//!
//! # Example
//!
//! ```
//! use rsc_cluster::cluster::Cluster;
//! use rsc_cluster::ids::NodeId;
//! use rsc_cluster::spec::ClusterSpec;
//! use rsc_cluster::topology::Locality;
//! use rsc_sim_core::time::SimTime;
//!
//! let mut cluster = Cluster::new(ClusterSpec::rsc2());
//! assert_eq!(cluster.spec().total_gpus(), 8_192);
//!
//! // A bad node is pulled for repair and stops being schedulable.
//! cluster.remediate_node(NodeId::new(7), SimTime::from_hours(2));
//! assert_eq!(cluster.schedulable_count() as u32, cluster.spec().num_nodes() - 1);
//!
//! // Rack-mates enjoy rail locality.
//! let loc = cluster.topology().locality(NodeId::new(0), NodeId::new(1));
//! assert_eq!(loc, Locality::SameRack);
//! ```

pub use rsc_sim_core::bitset;

pub mod cluster;
pub mod component;
pub mod gpu;
pub mod ids;
pub mod node;
pub mod spec;
pub mod topology;

pub use bitset::HierBitSet;
pub use cluster::Cluster;
pub use ids::{GpuId, JobId, JobRunId, NodeId, PodId, RackId};
pub use node::{Node, NodeState, GPUS_PER_NODE};
pub use spec::ClusterSpec;
pub use topology::{Locality, Topology};
