//! Strongly-typed identifiers for cluster entities.
//!
//! Newtypes keep node/rack/pod/GPU indices from being mixed up across crate
//! boundaries (a scheduler bug class the type system can simply delete).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a server (node) within a cluster: a dense index in
/// `0..num_nodes`.
///
/// ```
/// use rsc_cluster::ids::NodeId;
///
/// let n = NodeId::new(17);
/// assert_eq!(n.index(), 17);
/// assert_eq!(n.to_string(), "node17");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The dense index as a `usize`, for vector indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a GPU: the owning node plus the local GPU slot (0–7 on a
/// DGX A100 server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuId {
    node: NodeId,
    slot: u8,
}

impl GpuId {
    /// Creates a GPU id from node and local slot.
    pub const fn new(node: NodeId, slot: u8) -> Self {
        GpuId { node, slot }
    }

    /// The owning node.
    pub const fn node(self) -> NodeId {
        self.node
    }

    /// The local GPU slot within the server.
    pub const fn slot(self) -> u8 {
        self.slot
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/gpu{}", self.node, self.slot)
    }
}

/// Identifier of a rack (two servers per rack in the RSC design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(u32);

impl RackId {
    /// Creates a rack id from its dense index.
    pub const fn new(index: u32) -> Self {
        RackId(index)
    }

    /// The dense index of this rack.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// Identifier of a pod (ten racks connected by a rail-optimized network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PodId(u32);

impl PodId {
    /// Creates a pod id from its dense index.
    pub const fn new(index: u32) -> Self {
        PodId(index)
    }

    /// The dense index of this pod.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pod{}", self.0)
    }
}

/// Identifier of a scheduler job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(u64);

impl JobId {
    /// Creates a job id from its raw value.
    pub const fn new(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Identifier of a logical *job run* — one training task that may span many
/// requeued scheduler jobs (paper §II-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobRunId(u64);

impl JobRunId {
    /// Creates a job-run id from its raw value.
    pub const fn new(raw: u64) -> Self {
        JobRunId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobRunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(NodeId::new(3).to_string(), "node3");
        assert_eq!(GpuId::new(NodeId::new(3), 5).to_string(), "node3/gpu5");
        assert_eq!(RackId::new(1).to_string(), "rack1");
        assert_eq!(PodId::new(0).to_string(), "pod0");
        assert_eq!(JobId::new(9).to_string(), "job9");
        assert_eq!(JobRunId::new(9).to_string(), "run9");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(GpuId::new(NodeId::new(0), 1) < GpuId::new(NodeId::new(0), 2));
        assert!(GpuId::new(NodeId::new(0), 7) < GpuId::new(NodeId::new(1), 0));
    }

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.as_usize(), 42usize);
    }
}
