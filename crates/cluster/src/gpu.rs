//! Per-GPU state: XID error history, memory-error counters, swap tracking.

use serde::{Deserialize, Serialize};

use crate::component::ComponentHealth;

/// NVIDIA XID error codes that appear in the paper's failure analysis.
///
/// XIDs are the GPU driver's error taxonomy; the paper calls out memory
/// errors (uncorrectable ECC, row-remap failures) as the top GPU error
/// category and XID 79 ("GPU fell off the bus") as highly correlated with
/// PCIe faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum XidError {
    /// XID 48: double-bit ECC error (uncorrectable).
    DoubleBitEcc,
    /// XID 63/64: row-remap recording event or failure.
    RowRemapFailure,
    /// XID 74: NVLink error.
    NvlinkError,
    /// XID 79: GPU has fallen off the bus.
    FallenOffBus,
    /// XID 119/120: GSP (GPU System Processor) RPC timeout — the paper's
    /// driver-regression era.
    GspTimeout,
    /// XID 31: GPU memory page fault (typically user code).
    MemoryPageFault,
    /// Any other XID, identified by raw code.
    Other(u16),
}

impl XidError {
    /// The numeric XID code as reported by the driver.
    pub fn code(self) -> u16 {
        match self {
            XidError::DoubleBitEcc => 48,
            XidError::RowRemapFailure => 64,
            XidError::NvlinkError => 74,
            XidError::FallenOffBus => 79,
            XidError::GspTimeout => 119,
            XidError::MemoryPageFault => 31,
            XidError::Other(code) => code,
        }
    }

    /// Whether this XID indicates a hardware (vs user-software) problem.
    pub fn is_hardware(self) -> bool {
        !matches!(self, XidError::MemoryPageFault | XidError::Other(_))
    }
}

impl std::fmt::Display for XidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XID{}", self.code())
    }
}

/// State of one A100 GPU in a server.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Gpu {
    health: ComponentHealth,
    uncorrectable_ecc_count: u64,
    row_remap_count: u64,
    xid_event_count: u64,
    distinct_xids: Vec<u16>,
    swap_count: u32,
}

impl Gpu {
    /// A fresh, healthy GPU.
    pub fn new() -> Self {
        Gpu::default()
    }

    /// Current health.
    pub fn health(&self) -> ComponentHealth {
        self.health
    }

    /// Marks the GPU degraded or failed.
    pub fn set_health(&mut self, health: ComponentHealth) {
        self.health = health;
    }

    /// Records an XID event against this GPU, updating derived counters.
    pub fn record_xid(&mut self, xid: XidError) {
        self.xid_event_count += 1;
        let code = xid.code();
        if !self.distinct_xids.contains(&code) {
            self.distinct_xids.push(code);
        }
        match xid {
            XidError::DoubleBitEcc => self.uncorrectable_ecc_count += 1,
            XidError::RowRemapFailure => self.row_remap_count += 1,
            _ => {}
        }
    }

    /// Total XID events observed.
    pub fn xid_event_count(&self) -> u64 {
        self.xid_event_count
    }

    /// Number of *distinct* XID codes observed (a lemon-detection signal).
    pub fn distinct_xid_count(&self) -> usize {
        self.distinct_xids.len()
    }

    /// Uncorrectable ECC errors observed.
    pub fn uncorrectable_ecc_count(&self) -> u64 {
        self.uncorrectable_ecc_count
    }

    /// Row-remap events observed.
    pub fn row_remap_count(&self) -> u64 {
        self.row_remap_count
    }

    /// How many times this GPU slot has had its silicon swapped.
    pub fn swap_count(&self) -> u32 {
        self.swap_count
    }

    /// Replaces the GPU (vendor swap): counters reset, health restored,
    /// swap count incremented.
    pub fn swap(&mut self) {
        let swaps = self.swap_count + 1;
        *self = Gpu::new();
        self.swap_count = swaps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xid_codes() {
        assert_eq!(XidError::FallenOffBus.code(), 79);
        assert_eq!(XidError::Other(13).code(), 13);
        assert_eq!(XidError::GspTimeout.to_string(), "XID119");
        assert!(XidError::DoubleBitEcc.is_hardware());
        assert!(!XidError::MemoryPageFault.is_hardware());
    }

    #[test]
    fn record_xid_updates_counters() {
        let mut gpu = Gpu::new();
        gpu.record_xid(XidError::DoubleBitEcc);
        gpu.record_xid(XidError::DoubleBitEcc);
        gpu.record_xid(XidError::RowRemapFailure);
        assert_eq!(gpu.xid_event_count(), 3);
        assert_eq!(gpu.distinct_xid_count(), 2);
        assert_eq!(gpu.uncorrectable_ecc_count(), 2);
        assert_eq!(gpu.row_remap_count(), 1);
    }

    #[test]
    fn swap_resets_but_counts() {
        let mut gpu = Gpu::new();
        gpu.record_xid(XidError::FallenOffBus);
        gpu.set_health(ComponentHealth::Failed);
        gpu.swap();
        assert_eq!(gpu.health(), ComponentHealth::Ok);
        assert_eq!(gpu.xid_event_count(), 0);
        assert_eq!(gpu.swap_count(), 1);
        gpu.swap();
        assert_eq!(gpu.swap_count(), 2);
    }
}
