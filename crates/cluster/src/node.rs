//! Server (node) model: eight GPUs, host components, and the scheduler-facing
//! availability state machine.

use serde::{Deserialize, Serialize};

use rsc_sim_core::time::SimTime;

use crate::component::{ComponentHealth, ComponentKind};
use crate::gpu::Gpu;
use crate::ids::{NodeId, PodId, RackId};

/// Scheduler-facing availability of a node.
///
/// The transitions mirror the paper's §II-C: a high-severity health-check
/// failure moves a node to [`NodeState::Remediation`] immediately (jobs are
/// rescheduled); a low-severity failure marks it [`NodeState::Draining`] so
/// it leaves service when the current job finishes; repair returns it to
/// [`NodeState::Healthy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NodeState {
    /// Passing all health checks; available for scheduling.
    #[default]
    Healthy,
    /// Failed a low-severity check; unschedulable, finishes its current job
    /// before entering remediation.
    Draining,
    /// Out of service for repair; not schedulable.
    Remediation,
}

impl NodeState {
    /// Whether the scheduler may place new jobs on a node in this state.
    pub fn is_schedulable(self) -> bool {
        matches!(self, NodeState::Healthy)
    }
}

impl std::fmt::Display for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NodeState::Healthy => "healthy",
            NodeState::Draining => "draining",
            NodeState::Remediation => "remediation",
        };
        f.write_str(s)
    }
}

/// Number of GPUs in a DGX A100 server.
pub const GPUS_PER_NODE: usize = 8;

/// One bare-metal DGX server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    rack: RackId,
    pod: PodId,
    state: NodeState,
    gpus: Vec<Gpu>,
    component_health: Vec<(ComponentKind, ComponentHealth)>,
    /// Times the node was taken out of scheduler availability
    /// (the `out_count` lemon signal).
    out_count: u32,
    /// Repair tickets filed against this node (the `tickets` lemon signal).
    ticket_count: u32,
    /// When the node last entered remediation, if it ever did.
    last_out_at: Option<SimTime>,
}

impl Node {
    /// Creates a healthy node with eight fresh GPUs.
    pub fn new(id: NodeId, rack: RackId, pod: PodId) -> Self {
        Node {
            id,
            rack,
            pod,
            state: NodeState::Healthy,
            gpus: (0..GPUS_PER_NODE).map(|_| Gpu::new()).collect(),
            component_health: ComponentKind::ALL
                .iter()
                .map(|&k| (k, ComponentHealth::Ok))
                .collect(),
            out_count: 0,
            ticket_count: 0,
            last_out_at: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The rack housing this node.
    pub fn rack(&self) -> RackId {
        self.rack
    }

    /// The pod containing this node's rack.
    pub fn pod(&self) -> PodId {
        self.pod
    }

    /// Current scheduler-facing state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// The node's GPUs.
    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// Mutable access to a GPU by local slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn gpu_mut(&mut self, slot: u8) -> &mut Gpu {
        &mut self.gpus[slot as usize]
    }

    /// Health of a host component.
    pub fn component_health(&self, kind: ComponentKind) -> ComponentHealth {
        self.component_health
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| *h)
            .unwrap_or(ComponentHealth::Ok)
    }

    /// Sets the health of a host component.
    pub fn set_component_health(&mut self, kind: ComponentKind, health: ComponentHealth) {
        if let Some(entry) = self.component_health.iter_mut().find(|(k, _)| *k == kind) {
            entry.1 = health;
        }
    }

    /// Marks the node draining (low-severity check failure). No-op if the
    /// node is already out of service.
    pub fn begin_drain(&mut self) {
        if self.state == NodeState::Healthy {
            self.state = NodeState::Draining;
        }
    }

    /// Moves the node into remediation, filing a ticket and bumping
    /// `out_count`.
    pub fn enter_remediation(&mut self, now: SimTime) {
        if self.state != NodeState::Remediation {
            self.state = NodeState::Remediation;
            self.out_count += 1;
            self.ticket_count += 1;
            self.last_out_at = Some(now);
        }
    }

    /// Returns the node to service: all components restored, GPUs with
    /// failed health swapped, state back to healthy.
    ///
    /// Returns the number of GPUs that were swapped during the repair.
    pub fn complete_repair(&mut self) -> usize {
        let mut swapped = 0;
        for gpu in &mut self.gpus {
            if gpu.health() != ComponentHealth::Ok {
                gpu.swap();
                swapped += 1;
            }
        }
        for entry in &mut self.component_health {
            entry.1 = ComponentHealth::Ok;
        }
        self.state = NodeState::Healthy;
        swapped
    }

    /// Times this node was taken out of availability.
    pub fn out_count(&self) -> u32 {
        self.out_count
    }

    /// Repair tickets filed against this node.
    pub fn ticket_count(&self) -> u32 {
        self.ticket_count
    }

    /// When the node last entered remediation.
    pub fn last_out_at(&self) -> Option<SimTime> {
        self.last_out_at
    }

    /// Total distinct XID codes observed across the node's GPUs
    /// (the `xid_cnt` lemon signal).
    pub fn distinct_xid_count(&self) -> usize {
        self.gpus.iter().map(|g| g.distinct_xid_count()).sum()
    }

    /// Total GPU swaps performed on this node.
    pub fn gpu_swap_count(&self) -> u32 {
        self.gpus.iter().map(|g| g.swap_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::XidError;

    fn node() -> Node {
        Node::new(NodeId::new(0), RackId::new(0), PodId::new(0))
    }

    #[test]
    fn new_node_is_schedulable() {
        let n = node();
        assert_eq!(n.state(), NodeState::Healthy);
        assert!(n.state().is_schedulable());
        assert_eq!(n.gpus().len(), GPUS_PER_NODE);
    }

    #[test]
    fn drain_then_remediate_then_repair() {
        let mut n = node();
        n.begin_drain();
        assert_eq!(n.state(), NodeState::Draining);
        assert!(!n.state().is_schedulable());
        n.enter_remediation(SimTime::from_hours(1));
        assert_eq!(n.state(), NodeState::Remediation);
        assert_eq!(n.out_count(), 1);
        assert_eq!(n.ticket_count(), 1);
        assert_eq!(n.last_out_at(), Some(SimTime::from_hours(1)));
        n.complete_repair();
        assert_eq!(n.state(), NodeState::Healthy);
    }

    #[test]
    fn remediation_is_idempotent() {
        let mut n = node();
        n.enter_remediation(SimTime::ZERO);
        n.enter_remediation(SimTime::from_hours(1));
        assert_eq!(n.out_count(), 1);
    }

    #[test]
    fn drain_does_not_downgrade_remediation() {
        let mut n = node();
        n.enter_remediation(SimTime::ZERO);
        n.begin_drain();
        assert_eq!(n.state(), NodeState::Remediation);
    }

    #[test]
    fn repair_swaps_failed_gpus() {
        let mut n = node();
        n.gpu_mut(2).set_health(ComponentHealth::Failed);
        n.gpu_mut(5).set_health(ComponentHealth::Degraded);
        n.set_component_health(ComponentKind::Dimm, ComponentHealth::Failed);
        let swapped = n.complete_repair();
        assert_eq!(swapped, 2);
        assert_eq!(n.gpu_swap_count(), 2);
        assert_eq!(n.component_health(ComponentKind::Dimm), ComponentHealth::Ok);
    }

    #[test]
    fn xid_counts_aggregate_across_gpus() {
        let mut n = node();
        n.gpu_mut(0).record_xid(XidError::FallenOffBus);
        n.gpu_mut(1).record_xid(XidError::DoubleBitEcc);
        n.gpu_mut(1).record_xid(XidError::DoubleBitEcc);
        assert_eq!(n.distinct_xid_count(), 2);
    }
}
