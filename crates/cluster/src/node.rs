//! Server (node) model: eight GPUs, host components, and the scheduler-facing
//! availability state machine.
//!
//! The availability state itself ([`NodeState`]) lives in dense per-cluster
//! arrays on [`Cluster`](crate::cluster::Cluster) — it is read on every
//! failure, hang check, and false-positive sweep, so it is kept
//! struct-of-arrays hot. [`Node`] is the *cold* record: GPUs, host
//! components, and lemon counters, materialized lazily only for nodes a
//! failure actually touches.

use serde::{Deserialize, Serialize};

use rsc_sim_core::time::SimTime;

use crate::component::{ComponentHealth, ComponentKind};
use crate::gpu::Gpu;
use crate::ids::{NodeId, PodId, RackId};

/// Scheduler-facing availability of a node.
///
/// The transitions mirror the paper's §II-C: a high-severity health-check
/// failure moves a node to [`NodeState::Remediation`] immediately (jobs are
/// rescheduled); a low-severity failure marks it [`NodeState::Draining`] so
/// it leaves service when the current job finishes; repair returns it to
/// [`NodeState::Healthy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NodeState {
    /// Passing all health checks; available for scheduling.
    #[default]
    Healthy,
    /// Failed a low-severity check; unschedulable, finishes its current job
    /// before entering remediation.
    Draining,
    /// Out of service for repair; not schedulable.
    Remediation,
}

impl NodeState {
    /// Whether the scheduler may place new jobs on a node in this state.
    pub fn is_schedulable(self) -> bool {
        matches!(self, NodeState::Healthy)
    }
}

impl std::fmt::Display for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NodeState::Healthy => "healthy",
            NodeState::Draining => "draining",
            NodeState::Remediation => "remediation",
        };
        f.write_str(s)
    }
}

/// Number of GPUs in a DGX A100 server.
pub const GPUS_PER_NODE: usize = 8;

/// One bare-metal DGX server's cold record: hardware health and lemon
/// counters. Availability state lives on the owning
/// [`Cluster`](crate::cluster::Cluster).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    rack: RackId,
    pod: PodId,
    gpus: Vec<Gpu>,
    component_health: Vec<(ComponentKind, ComponentHealth)>,
    /// Times the node was taken out of scheduler availability
    /// (the `out_count` lemon signal).
    out_count: u32,
    /// Repair tickets filed against this node (the `tickets` lemon signal).
    ticket_count: u32,
    /// When the node last entered remediation, if it ever did.
    last_out_at: Option<SimTime>,
}

impl Node {
    /// Creates a pristine node with eight fresh GPUs.
    pub fn new(id: NodeId, rack: RackId, pod: PodId) -> Self {
        Node {
            id,
            rack,
            pod,
            gpus: (0..GPUS_PER_NODE).map(|_| Gpu::new()).collect(),
            component_health: ComponentKind::ALL
                .iter()
                .map(|&k| (k, ComponentHealth::Ok))
                .collect(),
            out_count: 0,
            ticket_count: 0,
            last_out_at: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The rack housing this node.
    pub fn rack(&self) -> RackId {
        self.rack
    }

    /// The pod containing this node's rack.
    pub fn pod(&self) -> PodId {
        self.pod
    }

    /// The node's GPUs.
    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// Mutable access to a GPU by local slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn gpu_mut(&mut self, slot: u8) -> &mut Gpu {
        &mut self.gpus[slot as usize]
    }

    /// Health of a host component.
    pub fn component_health(&self, kind: ComponentKind) -> ComponentHealth {
        self.component_health
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| *h)
            .unwrap_or(ComponentHealth::Ok)
    }

    /// Sets the health of a host component.
    pub fn set_component_health(&mut self, kind: ComponentKind, health: ComponentHealth) {
        if let Some(entry) = self.component_health.iter_mut().find(|(k, _)| *k == kind) {
            entry.1 = health;
        }
    }

    /// Whether any GPU or host component carries unrepaired damage.
    pub fn has_hardware_damage(&self) -> bool {
        self.gpus.iter().any(|g| g.health() != ComponentHealth::Ok)
            || self
                .component_health
                .iter()
                .any(|(_, h)| *h != ComponentHealth::Ok)
    }

    /// Records an availability outage: files a ticket, bumps `out_count`,
    /// stamps the outage time. Called by the cluster exactly once per
    /// healthy/draining → remediation transition.
    pub fn note_outage(&mut self, now: SimTime) {
        self.out_count += 1;
        self.ticket_count += 1;
        self.last_out_at = Some(now);
    }

    /// Repairs the node's hardware: all components restored, GPUs with
    /// failed health swapped.
    ///
    /// Returns the number of GPUs that were swapped during the repair.
    pub fn complete_repair(&mut self) -> usize {
        let mut swapped = 0;
        for gpu in &mut self.gpus {
            if gpu.health() != ComponentHealth::Ok {
                gpu.swap();
                swapped += 1;
            }
        }
        for entry in &mut self.component_health {
            entry.1 = ComponentHealth::Ok;
        }
        swapped
    }

    /// Times this node was taken out of availability.
    pub fn out_count(&self) -> u32 {
        self.out_count
    }

    /// Repair tickets filed against this node.
    pub fn ticket_count(&self) -> u32 {
        self.ticket_count
    }

    /// When the node last entered remediation.
    pub fn last_out_at(&self) -> Option<SimTime> {
        self.last_out_at
    }

    /// Total distinct XID codes observed across the node's GPUs
    /// (the `xid_cnt` lemon signal).
    pub fn distinct_xid_count(&self) -> usize {
        self.gpus.iter().map(|g| g.distinct_xid_count()).sum()
    }

    /// Total GPU swaps performed on this node.
    pub fn gpu_swap_count(&self) -> u32 {
        self.gpus.iter().map(|g| g.swap_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::XidError;

    fn node() -> Node {
        Node::new(NodeId::new(0), RackId::new(0), PodId::new(0))
    }

    #[test]
    fn new_node_is_pristine() {
        let n = node();
        assert_eq!(n.gpus().len(), GPUS_PER_NODE);
        assert!(!n.has_hardware_damage());
        assert_eq!(n.out_count(), 0);
        assert_eq!(n.last_out_at(), None);
    }

    #[test]
    fn outage_counters_accumulate() {
        let mut n = node();
        n.note_outage(SimTime::from_hours(1));
        assert_eq!(n.out_count(), 1);
        assert_eq!(n.ticket_count(), 1);
        assert_eq!(n.last_out_at(), Some(SimTime::from_hours(1)));
        n.note_outage(SimTime::from_hours(5));
        assert_eq!(n.out_count(), 2);
        assert_eq!(n.last_out_at(), Some(SimTime::from_hours(5)));
    }

    #[test]
    fn repair_swaps_failed_gpus() {
        let mut n = node();
        n.gpu_mut(2).set_health(ComponentHealth::Failed);
        n.gpu_mut(5).set_health(ComponentHealth::Degraded);
        n.set_component_health(ComponentKind::Dimm, ComponentHealth::Failed);
        assert!(n.has_hardware_damage());
        let swapped = n.complete_repair();
        assert_eq!(swapped, 2);
        assert_eq!(n.gpu_swap_count(), 2);
        assert_eq!(n.component_health(ComponentKind::Dimm), ComponentHealth::Ok);
        assert!(!n.has_hardware_damage());
    }

    #[test]
    fn xid_counts_aggregate_across_gpus() {
        let mut n = node();
        n.gpu_mut(0).record_xid(XidError::FallenOffBus);
        n.gpu_mut(1).record_xid(XidError::DoubleBitEcc);
        n.gpu_mut(1).record_xid(XidError::DoubleBitEcc);
        assert_eq!(n.distinct_xid_count(), 2);
    }
}
