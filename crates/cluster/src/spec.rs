//! Cluster sizing templates, including the paper's RSC-1 and RSC-2.

use serde::{Deserialize, Serialize};

use crate::node::GPUS_PER_NODE;

/// Static description of a cluster's size and physical grouping.
///
/// Both RSC clusters follow the same design template (paper §II): DGX
/// servers with 8 GPUs, two servers per rack, ten racks per rail-optimized
/// pod.
///
/// ```
/// use rsc_cluster::spec::ClusterSpec;
///
/// let rsc1 = ClusterSpec::rsc1();
/// assert_eq!(rsc1.total_gpus(), 16_384);
/// let rsc2 = ClusterSpec::rsc2();
/// assert_eq!(rsc2.total_gpus(), 8_192);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    name: String,
    num_nodes: u32,
    nodes_per_rack: u32,
    racks_per_pod: u32,
}

impl ClusterSpec {
    /// Creates a spec with the RSC grouping (2 nodes/rack, 10 racks/pod).
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(name: impl Into<String>, num_nodes: u32) -> Self {
        assert!(num_nodes > 0, "cluster must have at least one node");
        ClusterSpec {
            name: name.into(),
            num_nodes,
            nodes_per_rack: 2,
            racks_per_pod: 10,
        }
    }

    /// RSC-1: the general ML training cluster (16k A100 GPUs, 2,048 nodes).
    pub fn rsc1() -> Self {
        ClusterSpec::new("RSC-1", 2048)
    }

    /// RSC-2: the vision-focused cluster (8k A100 GPUs, 1,024 nodes).
    pub fn rsc2() -> Self {
        ClusterSpec::new("RSC-2", 1024)
    }

    /// A 64-node (512 GPU) cluster for fast tests and examples.
    pub fn small_test() -> Self {
        ClusterSpec::new("test-64", 64)
    }

    /// Cluster display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// GPUs per server (8 on DGX A100).
    pub fn gpus_per_node(&self) -> u32 {
        GPUS_PER_NODE as u32
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.num_nodes * self.gpus_per_node()
    }

    /// Servers per rack.
    pub fn nodes_per_rack(&self) -> u32 {
        self.nodes_per_rack
    }

    /// Racks per rail-optimized pod.
    pub fn racks_per_pod(&self) -> u32 {
        self.racks_per_pod
    }

    /// Servers per pod.
    pub fn nodes_per_pod(&self) -> u32 {
        self.nodes_per_rack * self.racks_per_pod
    }

    /// Number of racks (rounding up for a partial final rack).
    pub fn num_racks(&self) -> u32 {
        self.num_nodes.div_ceil(self.nodes_per_rack)
    }

    /// Number of pods (rounding up for a partial final pod).
    pub fn num_pods(&self) -> u32 {
        self.num_nodes.div_ceil(self.nodes_per_pod())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsc_sizes_match_paper() {
        let rsc1 = ClusterSpec::rsc1();
        assert_eq!(rsc1.num_nodes(), 2048);
        assert_eq!(rsc1.total_gpus(), 16_384);
        assert_eq!(rsc1.nodes_per_pod(), 20);
        assert_eq!(rsc1.num_pods(), 103); // 2048 / 20, rounded up

        let rsc2 = ClusterSpec::rsc2();
        assert_eq!(rsc2.total_gpus(), 8_192);
    }

    #[test]
    fn rack_and_pod_counts_round_up() {
        let spec = ClusterSpec::new("odd", 21);
        assert_eq!(spec.num_racks(), 11);
        assert_eq!(spec.num_pods(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ClusterSpec::new("empty", 0);
    }
}
