//! Server-level hardware components.
//!
//! The component inventory follows the lemon-node root-cause breakdown of
//! the paper's Table II (GPU, DIMM, PCIe, EUD, NIC, BIOS, PSU, CPU, optics)
//! plus the fabric-facing parts referenced by the failure taxonomy.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A replaceable or repairable hardware component class on a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// An A100 accelerator (HBM, NVLink ports, on-package logic).
    Gpu,
    /// Host DRAM module.
    Dimm,
    /// PCIe link/switch between host and accelerators.
    Pcie,
    /// Emergency utility device / baseboard management peripheral.
    Eud,
    /// Backend (InfiniBand) or frontend (Ethernet) network interface card.
    Nic,
    /// System firmware.
    Bios,
    /// Power supply unit.
    Psu,
    /// Host CPU socket.
    Cpu,
    /// Optical transceivers and cabling.
    Optics,
    /// NVSwitch connecting the eight local GPUs.
    NvSwitch,
    /// Local block device (boot/scratch SSD).
    BlockDevice,
}

impl ComponentKind {
    /// All component kinds, in a stable order (Table II ordering first).
    pub const ALL: [ComponentKind; 11] = [
        ComponentKind::Optics,
        ComponentKind::Cpu,
        ComponentKind::Psu,
        ComponentKind::Nic,
        ComponentKind::Eud,
        ComponentKind::Pcie,
        ComponentKind::Dimm,
        ComponentKind::Gpu,
        ComponentKind::Bios,
        ComponentKind::NvSwitch,
        ComponentKind::BlockDevice,
    ];

    /// Short lowercase label used in reports and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::Gpu => "gpu",
            ComponentKind::Dimm => "dimm",
            ComponentKind::Pcie => "pcie",
            ComponentKind::Eud => "eud",
            ComponentKind::Nic => "nic",
            ComponentKind::Bios => "bios",
            ComponentKind::Psu => "psu",
            ComponentKind::Cpu => "cpu",
            ComponentKind::Optics => "optics",
            ComponentKind::NvSwitch => "nvswitch",
            ComponentKind::BlockDevice => "blockdev",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Operational condition of one component instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ComponentHealth {
    /// Operating normally.
    #[default]
    Ok,
    /// Experiencing transient errors (recoverable without replacement).
    Degraded,
    /// Permanently failed; requires vendor repair or replacement.
    Failed,
}

impl fmt::Display for ComponentHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentHealth::Ok => "ok",
            ComponentHealth::Degraded => "degraded",
            ComponentHealth::Failed => "failed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_unique_labels() {
        let mut labels: Vec<&str> = ComponentKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ComponentKind::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(ComponentKind::Gpu.to_string(), "gpu");
        assert_eq!(ComponentHealth::Degraded.to_string(), "degraded");
    }

    #[test]
    fn default_health_is_ok() {
        assert_eq!(ComponentHealth::default(), ComponentHealth::Ok);
    }
}
