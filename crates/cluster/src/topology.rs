//! Physical placement: node → rack → pod mapping and locality distances.

use serde::{Deserialize, Serialize};

use crate::ids::{NodeId, PodId, RackId};
use crate::spec::ClusterSpec;

/// Communication locality between two nodes, from cheapest to most
/// expensive (paper §II-B: NVSwitch < rail-local < pod-local < cross-pod).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Same server (GPUs communicate over NVSwitch).
    SameNode,
    /// Same rack (one rail hop).
    SameRack,
    /// Same pod (within the rail-optimized network).
    SamePod,
    /// Different pods (traffic crosses spine switches).
    CrossPod,
}

/// Derived placement map for a [`ClusterSpec`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes_per_rack: u32,
    racks_per_pod: u32,
    num_nodes: u32,
}

impl Topology {
    /// Builds the topology for a spec.
    pub fn new(spec: &ClusterSpec) -> Self {
        Topology {
            nodes_per_rack: spec.nodes_per_rack(),
            racks_per_pod: spec.racks_per_pod(),
            num_nodes: spec.num_nodes(),
        }
    }

    /// Number of nodes covered by this topology.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// The rack housing a node.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        RackId::new(node.index() / self.nodes_per_rack)
    }

    /// The pod containing a node.
    pub fn pod_of(&self, node: NodeId) -> PodId {
        PodId::new(node.index() / (self.nodes_per_rack * self.racks_per_pod))
    }

    /// Locality class between two nodes.
    pub fn locality(&self, a: NodeId, b: NodeId) -> Locality {
        if a == b {
            Locality::SameNode
        } else if self.rack_of(a) == self.rack_of(b) {
            Locality::SameRack
        } else if self.pod_of(a) == self.pod_of(b) {
            Locality::SamePod
        } else {
            Locality::CrossPod
        }
    }

    /// The contiguous raw node-id range `[start, end)` covered by a pod.
    /// Node ids are assigned pod-major, so every pod is a dense id span —
    /// the property the allocator's bitset indexes slice on.
    pub fn pod_range(&self, pod: PodId) -> std::ops::Range<u32> {
        let per_pod = self.nodes_per_rack * self.racks_per_pod;
        let start = pod.index() * per_pod;
        let end = (start + per_pod).min(self.num_nodes);
        start..end
    }

    /// All node ids in a pod, in index order.
    pub fn nodes_in_pod(&self, pod: PodId) -> impl Iterator<Item = NodeId> + '_ {
        self.pod_range(pod).map(NodeId::new)
    }

    /// The number of distinct pods spanned by a set of nodes.
    pub fn pods_spanned<'a, I>(&self, nodes: I) -> usize
    where
        I: IntoIterator<Item = &'a NodeId>,
    {
        let mut pods: Vec<u32> = nodes.into_iter().map(|&n| self.pod_of(n).index()).collect();
        pods.sort_unstable();
        pods.dedup();
        pods.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(&ClusterSpec::new("t", 100))
    }

    #[test]
    fn rack_and_pod_mapping() {
        let t = topo();
        assert_eq!(t.rack_of(NodeId::new(0)), RackId::new(0));
        assert_eq!(t.rack_of(NodeId::new(1)), RackId::new(0));
        assert_eq!(t.rack_of(NodeId::new(2)), RackId::new(1));
        // 20 nodes per pod.
        assert_eq!(t.pod_of(NodeId::new(19)), PodId::new(0));
        assert_eq!(t.pod_of(NodeId::new(20)), PodId::new(1));
    }

    #[test]
    fn locality_ordering() {
        let t = topo();
        let a = NodeId::new(0);
        assert_eq!(t.locality(a, a), Locality::SameNode);
        assert_eq!(t.locality(a, NodeId::new(1)), Locality::SameRack);
        assert_eq!(t.locality(a, NodeId::new(5)), Locality::SamePod);
        assert_eq!(t.locality(a, NodeId::new(50)), Locality::CrossPod);
        assert!(Locality::SameNode < Locality::CrossPod);
    }

    #[test]
    fn locality_is_symmetric() {
        let t = topo();
        for &(i, j) in &[(0u32, 1u32), (0, 5), (0, 50), (33, 7)] {
            let (a, b) = (NodeId::new(i), NodeId::new(j));
            assert_eq!(t.locality(a, b), t.locality(b, a));
        }
    }

    #[test]
    fn nodes_in_pod_handles_partial_last_pod() {
        let t = topo(); // 100 nodes, 20 per pod → 5 full pods
        assert_eq!(t.nodes_in_pod(PodId::new(0)).count(), 20);
        assert_eq!(t.nodes_in_pod(PodId::new(4)).count(), 20);
        let t2 = Topology::new(&ClusterSpec::new("t2", 30));
        assert_eq!(t2.nodes_in_pod(PodId::new(1)).count(), 10);
    }

    #[test]
    fn pods_spanned_dedups() {
        let t = topo();
        let nodes = [
            NodeId::new(0),
            NodeId::new(3),
            NodeId::new(21),
            NodeId::new(22),
        ];
        assert_eq!(t.pods_spanned(nodes.iter()), 2);
    }
}
