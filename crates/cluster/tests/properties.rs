//! Property-based tests of topology and node-lifecycle invariants.

use proptest::prelude::*;

use rsc_cluster::cluster::Cluster;
use rsc_cluster::ids::NodeId;
use rsc_cluster::node::NodeState;
use rsc_cluster::spec::ClusterSpec;
use rsc_cluster::topology::{Locality, Topology};
use rsc_sim_core::time::SimTime;

proptest! {
    /// Every node maps into exactly one rack and one pod, racks hold at
    /// most two nodes, pods at most twenty.
    #[test]
    fn placement_is_partition(num_nodes in 1u32..500) {
        let topo = Topology::new(&ClusterSpec::new("p", num_nodes));
        let mut rack_counts = std::collections::HashMap::new();
        let mut pod_counts = std::collections::HashMap::new();
        for i in 0..num_nodes {
            let n = NodeId::new(i);
            *rack_counts.entry(topo.rack_of(n)).or_insert(0u32) += 1;
            *pod_counts.entry(topo.pod_of(n)).or_insert(0u32) += 1;
        }
        prop_assert!(rack_counts.values().all(|&c| c <= 2));
        prop_assert!(pod_counts.values().all(|&c| c <= 20));
        prop_assert_eq!(rack_counts.values().sum::<u32>(), num_nodes);
    }

    /// Locality is symmetric and consistent with rack/pod containment.
    #[test]
    fn locality_consistency(num_nodes in 2u32..300, a in 0u32..300, b in 0u32..300) {
        prop_assume!(a < num_nodes && b < num_nodes);
        let topo = Topology::new(&ClusterSpec::new("p", num_nodes));
        let (na, nb) = (NodeId::new(a), NodeId::new(b));
        let loc = topo.locality(na, nb);
        prop_assert_eq!(loc, topo.locality(nb, na));
        match loc {
            Locality::SameNode => prop_assert_eq!(a, b),
            Locality::SameRack => {
                prop_assert_ne!(a, b);
                prop_assert_eq!(topo.rack_of(na), topo.rack_of(nb));
            }
            Locality::SamePod => {
                prop_assert_ne!(topo.rack_of(na), topo.rack_of(nb));
                prop_assert_eq!(topo.pod_of(na), topo.pod_of(nb));
            }
            Locality::CrossPod => prop_assert_ne!(topo.pod_of(na), topo.pod_of(nb)),
        }
    }

    /// `nodes_in_pod` enumerates each node exactly once across all pods.
    #[test]
    fn pods_cover_all_nodes(num_nodes in 1u32..300) {
        let spec = ClusterSpec::new("p", num_nodes);
        let topo = Topology::new(&spec);
        let mut seen = vec![false; num_nodes as usize];
        for p in 0..spec.num_pods() {
            for n in topo.nodes_in_pod(rsc_cluster::ids::PodId::new(p)) {
                prop_assert!(!seen[n.as_usize()], "node enumerated twice");
                seen[n.as_usize()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Arbitrary remediate/repair sequences keep counts consistent.
    #[test]
    fn lifecycle_counts_consistent(ops in prop::collection::vec((0u32..20, any::<bool>()), 1..60)) {
        let mut cluster = Cluster::new(ClusterSpec::new("p", 20));
        for (i, (node, repair)) in ops.iter().enumerate() {
            let id = NodeId::new(*node);
            if *repair {
                cluster.repair_node(id);
            } else {
                cluster.remediate_node(id, SimTime::from_mins(i as u64));
            }
            let healthy = cluster.schedulable_count();
            let out = cluster.remediation_count();
            let draining = cluster.draining_count();
            prop_assert_eq!(healthy + out + draining, 20);
            let counted_healthy = (0..20)
                .filter(|&n| cluster.node_state(NodeId::new(n)) == NodeState::Healthy)
                .count();
            prop_assert_eq!(counted_healthy, healthy);
        }
    }
}
