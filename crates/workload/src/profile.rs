//! Cluster workload profiles.
//!
//! Calibrated to the paper's published marginals:
//!
//! - job-size mix (Fig. 6 / Obs. 7): >40% single-GPU jobs, >90% smaller
//!   than one server, yet ≥256-GPU jobs consume about two thirds of all
//!   GPU time and 4k-GPU jobs alone over a tenth;
//! - status mix (Fig. 3): ~60% COMPLETED, ~24% FAILED, small CANCELLED /
//!   OOM / TIMEOUT fractions — user destinies here, with PREEMPTED /
//!   REQUEUED / NODE_FAIL emerging from scheduler dynamics;
//! - priority structure (§III): the larger the job, the higher its QoS.

use serde::{Deserialize, Serialize};

use rsc_sim_core::rng::{SimRng, WeightedIndex};
use rsc_sim_core::time::SimDuration;

use rsc_sched::job::{Destiny, QosClass};

/// Per-size-bucket workload parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeBucket {
    /// GPUs per job in this bucket.
    pub gpus: u32,
    /// Fraction of submitted jobs in this bucket.
    pub job_fraction: f64,
    /// Mean running duration (hours) for the bucket.
    pub mean_duration_hours: f64,
    /// Lognormal sigma of the duration distribution.
    pub duration_sigma: f64,
    /// Probability the job is High QoS (else split Normal/Low below).
    pub high_qos_prob: f64,
    /// Probability the job is Low QoS (rest is Normal).
    pub low_qos_prob: f64,
}

/// A complete cluster workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Display name ("RSC-1", "RSC-2", ...).
    pub name: String,
    /// Job submissions per day.
    pub jobs_per_day: f64,
    /// Size buckets (fractions should sum to ~1).
    pub buckets: Vec<SizeBucket>,
    /// Fraction of jobs destined to fail with a user bug.
    pub user_failure_prob: f64,
    /// Fraction of jobs the user cancels midway.
    pub cancel_prob: f64,
    /// Fraction of jobs that die OOM.
    pub oom_prob: f64,
    /// Fraction of jobs whose time limit undercuts their work (TIMEOUT).
    pub timeout_prob: f64,
    /// Fraction of jobs whose submit scripts requeue even on user failure
    /// (the crash-loop anti-pattern).
    pub crash_loop_prob: f64,
    /// Default checkpoint interval.
    pub checkpoint_interval: SimDuration,
    /// Default restart overhead (`u0`).
    pub restart_overhead: SimDuration,
    /// Diurnal modulation of the arrival rate: instantaneous rate is
    /// `jobs_per_day/86400 × (1 + amplitude·sin(2π·hour/24))`, peaking
    /// mid-simulated-day. Zero disables the cycle.
    pub diurnal_amplitude: f64,
}

impl WorkloadProfile {
    /// The RSC-1 profile: 7.2k jobs/day on 16k GPUs, LLM-heavy large-job
    /// tail up to 4096 GPUs.
    pub fn rsc1() -> Self {
        WorkloadProfile {
            name: "RSC-1".to_string(),
            jobs_per_day: 7200.0,
            buckets: vec![
                bucket(1, 0.4460, 2.2, 1.0, 0.0, 0.50),
                bucket(2, 0.2230, 2.5, 1.0, 0.0, 0.50),
                bucket(4, 0.2230, 2.8, 1.0, 0.0, 0.45),
                bucket(8, 0.0641, 4.0, 0.9, 0.02, 0.30),
                bucket(16, 0.0267, 6.0, 0.9, 0.03, 0.25),
                bucket(32, 0.0100, 8.0, 0.8, 0.05, 0.20),
                bucket(64, 0.0033, 12.0, 0.8, 0.10, 0.15),
                bucket(128, 0.0018, 16.0, 0.7, 0.25, 0.10),
                bucket(256, 0.0012, 20.0, 0.7, 0.60, 0.05),
                bucket(512, 0.00050, 28.0, 0.6, 0.80, 0.02),
                bucket(1024, 0.00022, 36.0, 0.6, 0.90, 0.0),
                bucket(2048, 0.00007, 44.0, 0.5, 0.95, 0.0),
                bucket(4096, 0.00003, 50.0, 0.5, 1.0, 0.0),
            ],
            user_failure_prob: 0.25,
            cancel_prob: 0.04,
            oom_prob: 0.002,
            timeout_prob: 0.007,
            crash_loop_prob: 0.001,
            checkpoint_interval: SimDuration::from_mins(60),
            restart_overhead: SimDuration::from_mins(5),
            diurnal_amplitude: 0.3,
        }
    }

    /// The RSC-2 profile: 4.4k jobs/day on 8k GPUs, vision-heavy — a
    /// stronger single-GPU tilt and a smaller large-job tail (max 1k GPUs).
    pub fn rsc2() -> Self {
        WorkloadProfile {
            name: "RSC-2".to_string(),
            jobs_per_day: 4400.0,
            buckets: vec![
                bucket(1, 0.5560, 2.4, 1.0, 0.0, 0.50),
                bucket(2, 0.1800, 2.6, 1.0, 0.0, 0.50),
                bucket(4, 0.1700, 3.0, 1.0, 0.0, 0.45),
                bucket(8, 0.0530, 4.5, 0.9, 0.02, 0.30),
                bucket(16, 0.0220, 6.5, 0.9, 0.03, 0.25),
                bucket(32, 0.0095, 9.0, 0.8, 0.05, 0.20),
                bucket(64, 0.0045, 13.0, 0.8, 0.12, 0.15),
                bucket(128, 0.0025, 18.0, 0.7, 0.30, 0.10),
                bucket(256, 0.0015, 24.0, 0.7, 0.65, 0.05),
                bucket(512, 0.00070, 30.0, 0.6, 0.85, 0.0),
                bucket(1024, 0.00030, 40.0, 0.6, 0.95, 0.0),
            ],
            user_failure_prob: 0.25,
            cancel_prob: 0.04,
            oom_prob: 0.002,
            timeout_prob: 0.007,
            crash_loop_prob: 0.001,
            checkpoint_interval: SimDuration::from_mins(60),
            restart_overhead: SimDuration::from_mins(5),
            diurnal_amplitude: 0.3,
        }
    }

    /// A rescaled copy: the arrival rate is multiplied by `factor`, and —
    /// when scaling *down* — buckets larger than the scaled size cap are
    /// dropped with their job mass folded into the largest survivor (for
    /// running the full 11-month storyline on a small simulated cluster).
    /// Scaling up (`factor > 1`) keeps the bucket mix unchanged: a bigger
    /// cluster sees proportionally more of the same jobs.
    ///
    /// # Panics
    ///
    /// Panics unless `factor > 0`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "factor must be positive");
        let mut out = self.clone();
        out.jobs_per_day *= factor;
        if factor >= 1.0 {
            return out;
        }
        let max_gpus = (self.buckets.iter().map(|b| b.gpus).max().unwrap_or(8) as f64 * factor)
            .max(8.0) as u32;
        // Drop buckets above the scaled cap, folding their job mass into
        // the largest surviving bucket so totals stay normalized.
        let mut dropped = 0.0;
        out.buckets.retain(|b| {
            if b.gpus <= max_gpus {
                true
            } else {
                dropped += b.job_fraction;
                false
            }
        });
        if let Some(last) = out.buckets.last_mut() {
            last.job_fraction += dropped;
        }
        out
    }

    /// Mean GPU-hours consumed per submitted job (analytic, from bucket
    /// means).
    pub fn mean_gpu_hours_per_job(&self) -> f64 {
        let total: f64 = self.buckets.iter().map(|b| b.job_fraction).sum();
        self.buckets
            .iter()
            .map(|b| b.job_fraction / total * b.gpus as f64 * b.mean_duration_hours)
            .sum()
    }

    /// Offered load in GPU-hours per day.
    pub fn offered_gpu_hours_per_day(&self) -> f64 {
        self.jobs_per_day * self.mean_gpu_hours_per_job()
    }

    /// Scales bucket durations so the offered load hits
    /// `utilization × total_gpus × 24 h/day`.
    pub fn calibrate_load(&mut self, total_gpus: u32, utilization: f64) {
        let target = total_gpus as f64 * 24.0 * utilization;
        let current = self.offered_gpu_hours_per_day();
        if current > 0.0 {
            let k = target / current;
            for b in &mut self.buckets {
                b.mean_duration_hours *= k;
            }
        }
    }

    /// Samples one job's static shape: `(gpus, duration, qos, destiny,
    /// timeout, crash_loop)`.
    pub fn sample_shape(&self, rng: &mut SimRng) -> JobShape {
        let dist = WeightedIndex::new(self.buckets.iter().map(|b| b.job_fraction))
            .expect("bucket fractions are valid weights");
        self.sample_shape_with(&dist, rng)
    }

    /// Same as [`Self::sample_shape`] but reusing a prebuilt weight table
    /// (for hot generation loops).
    pub fn sample_shape_with(&self, dist: &WeightedIndex, rng: &mut SimRng) -> JobShape {
        let b = &self.buckets[dist.sample(rng)];
        // Lognormal duration with the bucket's mean: mu = ln(mean) - s²/2.
        let mu = b.mean_duration_hours.ln() - b.duration_sigma * b.duration_sigma / 2.0;
        let hours = rng.lognormal(mu, b.duration_sigma).clamp(0.05, 6.5 * 24.0);
        let work = SimDuration::from_hours_f64(hours);

        let qos = if rng.chance(b.high_qos_prob) {
            QosClass::High
        } else if rng.chance(b.low_qos_prob / (1.0 - b.high_qos_prob).max(1e-9)) {
            QosClass::Low
        } else {
            QosClass::Normal
        };

        let destiny = {
            let u = rng.uniform();
            if u < self.user_failure_prob {
                Destiny::UserFailure {
                    at_work_fraction: rng.uniform_range(0.01, 1.0),
                }
            } else if u < self.user_failure_prob + self.cancel_prob {
                Destiny::Cancelled {
                    after: work.mul_f64(rng.uniform_range(0.05, 0.9)),
                }
            } else if u < self.user_failure_prob + self.cancel_prob + self.oom_prob {
                Destiny::OutOfMemory {
                    at_work_fraction: rng.uniform_range(0.01, 1.0),
                }
            } else {
                Destiny::Complete
            }
        };

        let times_out = rng.chance(self.timeout_prob);
        let time_limit = if times_out {
            work.mul_f64(rng.uniform_range(0.3, 0.9))
        } else {
            // Generous limit: work plus healthy margin, capped later by the
            // scheduler's 7-day lifetime.
            work.mul_f64(1.5) + SimDuration::from_hours(2)
        };

        JobShape {
            gpus: b.gpus,
            work,
            time_limit,
            qos,
            destiny,
            crash_loop: rng.chance(self.crash_loop_prob),
        }
    }

    /// Builds the sampling table for [`Self::sample_shape_with`].
    pub fn weight_table(&self) -> WeightedIndex {
        WeightedIndex::new(self.buckets.iter().map(|b| b.job_fraction))
            .expect("bucket fractions are valid weights")
    }
}

/// A sampled job shape, before ids and submit times are assigned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobShape {
    /// GPUs requested.
    pub gpus: u32,
    /// Productive work required.
    pub work: SimDuration,
    /// Requested time limit.
    pub time_limit: SimDuration,
    /// Scheduling tier.
    pub qos: QosClass,
    /// User-driven fate.
    pub destiny: Destiny,
    /// Whether the submit script requeues on user failure.
    pub crash_loop: bool,
}

fn bucket(
    gpus: u32,
    job_fraction: f64,
    mean_duration_hours: f64,
    duration_sigma: f64,
    high_qos_prob: f64,
    low_qos_prob: f64,
) -> SizeBucket {
    SizeBucket {
        gpus,
        job_fraction,
        mean_duration_hours,
        duration_sigma,
        high_qos_prob,
        low_qos_prob,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        for p in [WorkloadProfile::rsc1(), WorkloadProfile::rsc2()] {
            let sum: f64 = p.buckets.iter().map(|b| b.job_fraction).sum();
            assert!((sum - 1.0).abs() < 0.01, "{}: sum={sum}", p.name);
        }
    }

    #[test]
    fn job_size_marginals_match_observation_7() {
        for p in [WorkloadProfile::rsc1(), WorkloadProfile::rsc2()] {
            let one_gpu: f64 = p
                .buckets
                .iter()
                .filter(|b| b.gpus == 1)
                .map(|b| b.job_fraction)
                .sum();
            assert!(one_gpu > 0.40, "{}: 1-GPU fraction {one_gpu}", p.name);
            let sub_node: f64 = p
                .buckets
                .iter()
                .filter(|b| b.gpus < 8)
                .map(|b| b.job_fraction)
                .sum();
            assert!(sub_node > 0.85, "{}: sub-node fraction {sub_node}", p.name);
        }
    }

    #[test]
    fn gpu_time_dominated_by_large_jobs() {
        for (p, min_share) in [
            (WorkloadProfile::rsc1(), 0.60),
            (WorkloadProfile::rsc2(), 0.45),
        ] {
            let total: f64 = p
                .buckets
                .iter()
                .map(|b| b.job_fraction * b.gpus as f64 * b.mean_duration_hours)
                .sum();
            let large: f64 = p
                .buckets
                .iter()
                .filter(|b| b.gpus >= 256)
                .map(|b| b.job_fraction * b.gpus as f64 * b.mean_duration_hours)
                .sum();
            let share = large / total;
            assert!(
                share > min_share && share < 0.80,
                "{}: 256+ share {share}",
                p.name
            );
            let sub_node: f64 = p
                .buckets
                .iter()
                .filter(|b| b.gpus < 8)
                .map(|b| b.job_fraction * b.gpus as f64 * b.mean_duration_hours)
                .sum();
            assert!(sub_node / total < 0.10, "{}: sub-node GPU share", p.name);
        }
    }

    #[test]
    fn rsc1_4k_jobs_consume_about_an_eighth() {
        let p = WorkloadProfile::rsc1();
        let total: f64 = p
            .buckets
            .iter()
            .map(|b| b.job_fraction * b.gpus as f64 * b.mean_duration_hours)
            .sum();
        let big: f64 = p
            .buckets
            .iter()
            .filter(|b| b.gpus == 4096)
            .map(|b| b.job_fraction * b.gpus as f64 * b.mean_duration_hours)
            .sum();
        let share = big / total;
        assert!((0.06..=0.20).contains(&share), "4k share={share}");
        let frac: f64 = p
            .buckets
            .iter()
            .filter(|b| b.gpus == 4096)
            .map(|b| b.job_fraction)
            .sum();
        assert!(frac < 0.01, "4k jobs should be <1% of jobs");
    }

    #[test]
    fn calibrate_load_hits_target() {
        let mut p = WorkloadProfile::rsc1();
        p.calibrate_load(16_384, 0.83);
        let offered = p.offered_gpu_hours_per_day();
        let target = 16_384.0 * 24.0 * 0.83;
        assert!((offered - target).abs() / target < 1e-9);
    }

    #[test]
    fn sampled_shapes_are_sane() {
        let p = WorkloadProfile::rsc1();
        let mut rng = SimRng::seed_from(1);
        let dist = p.weight_table();
        let mut one_gpu = 0;
        let n = 20_000;
        for _ in 0..n {
            let s = p.sample_shape_with(&dist, &mut rng);
            assert!(s.gpus >= 1 && s.gpus <= 4096);
            assert!(s.work > SimDuration::ZERO);
            assert!(s.time_limit > SimDuration::ZERO);
            if s.gpus == 1 {
                one_gpu += 1;
            }
        }
        let frac = one_gpu as f64 / n as f64;
        assert!((frac - 0.446).abs() < 0.02, "1-GPU sampled frac={frac}");
    }

    #[test]
    fn large_jobs_are_high_qos() {
        let p = WorkloadProfile::rsc1();
        let mut rng = SimRng::seed_from(2);
        let dist = p.weight_table();
        let mut large_high = 0;
        let mut large_total = 0;
        for _ in 0..200_000 {
            let s = p.sample_shape_with(&dist, &mut rng);
            if s.gpus >= 512 {
                large_total += 1;
                if s.qos == QosClass::High {
                    large_high += 1;
                }
            }
        }
        assert!(large_total > 20, "need large samples, got {large_total}");
        assert!(
            large_high as f64 / large_total as f64 > 0.7,
            "large jobs should be mostly high QoS"
        );
    }

    #[test]
    fn scaled_profile_drops_oversized_buckets() {
        let p = WorkloadProfile::rsc1().scaled(1.0 / 16.0);
        let max = p.buckets.iter().map(|b| b.gpus).max().unwrap();
        assert_eq!(max, 256);
        let sum: f64 = p.buckets.iter().map(|b| b.job_fraction).sum();
        assert!((sum - 1.0).abs() < 0.01);
        assert!((p.jobs_per_day - 450.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn scaled_rejects_bad_factor() {
        let _ = WorkloadProfile::rsc1().scaled(0.0);
    }

    #[test]
    fn scaled_up_keeps_bucket_mix() {
        let base = WorkloadProfile::rsc1();
        let p = base.scaled(8.0);
        assert_eq!(p.buckets, base.buckets);
        assert!((p.jobs_per_day - base.jobs_per_day * 8.0).abs() < 1e-9);
    }
}
