#![warn(missing_docs)]

//! Synthetic workload generation for the `rsc-reliability` workspace.
//!
//! Provides [`profile::WorkloadProfile`] descriptions of the RSC-1 and
//! RSC-2 job populations — size mix, durations, QoS structure, and user
//! destinies, calibrated to the paper's Figs. 3 and 6 — and a lazy
//! Poisson-arrival [`generator::JobStream`] that turns a profile into the
//! submission stream a simulation consumes.
//!
//! # Example
//!
//! ```
//! use rsc_sim_core::rng::SimRng;
//! use rsc_sim_core::time::SimTime;
//! use rsc_workload::generator::JobStream;
//! use rsc_workload::profile::WorkloadProfile;
//!
//! let profile = WorkloadProfile::rsc1().scaled(1.0 / 64.0);
//! let mut stream = JobStream::new(profile, SimRng::seed_from(7));
//! let day_one = stream.take_until(SimTime::from_days(1));
//! assert!(!day_one.is_empty());
//! ```

pub mod generator;
pub mod profile;

pub use generator::JobStream;
pub use profile::{JobShape, SizeBucket, WorkloadProfile};
