//! Streaming job-arrival generation.
//!
//! Arrivals follow a Poisson process at the profile's submission rate.
//! Generation is lazy — an 11-month RSC-1 run submits ~2.4 million jobs,
//! which would be wasteful to materialize up front.

use rsc_cluster::ids::{JobId, JobRunId};
use rsc_sim_core::rng::{SimRng, WeightedIndex};
use rsc_sim_core::time::{SimDuration, SimTime};

use rsc_sched::job::JobSpec;

use crate::profile::WorkloadProfile;

/// Lazily generates the submission stream for a profile.
pub struct JobStream {
    profile: WorkloadProfile,
    weights: WeightedIndex,
    rng: SimRng,
    next_at: SimTime,
    next_id: u64,
    next_run_id: u64,
    run_prob_large: f64,
}

impl JobStream {
    /// Creates a stream starting at time zero.
    pub fn new(profile: WorkloadProfile, mut rng: SimRng) -> Self {
        let weights = profile.weight_table();
        let first_at = Self::sample_arrival(&profile, SimTime::ZERO, &mut rng);
        JobStream {
            profile,
            weights,
            rng,
            next_at: first_at,
            next_id: 1,
            next_run_id: 1,
            run_prob_large: 0.5,
        }
    }

    /// Samples the next arrival after `from` via thinning, honouring the
    /// profile's diurnal cycle (exact for the sinusoidal rate).
    fn sample_arrival(profile: &WorkloadProfile, from: SimTime, rng: &mut SimRng) -> SimTime {
        let base = profile.jobs_per_day / 86_400.0;
        let amp = profile.diurnal_amplitude.clamp(0.0, 1.0);
        let max_rate = base * (1.0 + amp);
        let mut t = from;
        loop {
            let gap = SimDuration::from_secs_f64(rng.exponential(max_rate))
                .max(SimDuration::from_secs(1));
            t += gap;
            if amp == 0.0 {
                return t;
            }
            let phase = 2.0 * std::f64::consts::PI * (t.as_secs() % 86_400) as f64 / 86_400.0;
            let rate = base * (1.0 + amp * phase.sin());
            if rng.chance(rate / max_rate) {
                return t;
            }
        }
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Submission time of the next job without consuming it.
    pub fn peek_time(&self) -> SimTime {
        self.next_at
    }

    /// Generates the next submission.
    pub fn next_job(&mut self) -> JobSpec {
        let at = self.next_at;
        let shape = self.profile.sample_shape_with(&self.weights, &mut self.rng);
        // Long multi-node high-QoS jobs are training runs: tag them with a
        // run id so requeued attempts can be stitched into job runs.
        let is_run_candidate = shape.gpus >= 64
            && shape.work >= SimDuration::from_hours(12)
            && shape.qos == rsc_sched::job::QosClass::High;
        let run = if is_run_candidate && self.rng.chance(self.run_prob_large) {
            let id = JobRunId::new(self.next_run_id);
            self.next_run_id += 1;
            Some(id)
        } else {
            None
        };
        let spec = JobSpec {
            id: JobId::new(self.next_id),
            // A dozen project allocations share the cluster; sampled
            // uniformly (quota pressure comes from the scheduler's config).
            project: rsc_sched::project::ProjectId::new(self.rng.below(12) as u32),
            run,
            gpus: shape.gpus,
            submit_at: at,
            work: shape.work,
            time_limit: shape.time_limit,
            qos: shape.qos,
            checkpoint_interval: self.profile.checkpoint_interval,
            restart_overhead: self.profile.restart_overhead,
            destiny: shape.destiny,
            requeue_on_user_failure: shape.crash_loop,
        };
        self.next_id += 1;
        self.next_at = Self::sample_arrival(&self.profile, at, &mut self.rng);
        spec
    }

    /// Collects every submission up to `horizon` (eager helper for tests
    /// and small studies).
    pub fn take_until(&mut self, horizon: SimTime) -> Vec<JobSpec> {
        let mut out = Vec::new();
        while self.peek_time() <= horizon {
            out.push(self.next_job());
        }
        out
    }
}

impl std::fmt::Debug for JobStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobStream")
            .field("profile", &self.profile.name)
            .field("next_at", &self.next_at)
            .field("next_id", &self.next_id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_matches_profile() {
        let mut stream = JobStream::new(WorkloadProfile::rsc1(), SimRng::seed_from(1));
        let jobs = stream.take_until(SimTime::from_days(10));
        let per_day = jobs.len() as f64 / 10.0;
        assert!((per_day - 7200.0).abs() < 300.0, "per_day={per_day}");
    }

    #[test]
    fn ids_are_unique_and_times_sorted() {
        let mut stream = JobStream::new(WorkloadProfile::rsc2(), SimRng::seed_from(2));
        let jobs = stream.take_until(SimTime::from_days(2));
        for w in jobs.windows(2) {
            assert!(w[0].submit_at <= w[1].submit_at);
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = JobStream::new(WorkloadProfile::rsc1(), SimRng::seed_from(3));
        let mut b = JobStream::new(WorkloadProfile::rsc1(), SimRng::seed_from(3));
        for _ in 0..500 {
            assert_eq!(a.next_job(), b.next_job());
        }
    }

    #[test]
    fn diurnal_cycle_modulates_arrivals() {
        let mut profile = WorkloadProfile::rsc1();
        profile.diurnal_amplitude = 0.8;
        let mut stream = JobStream::new(profile, SimRng::seed_from(5));
        let jobs = stream.take_until(SimTime::from_days(30));
        // Bucket arrivals by simulated hour of day.
        let mut by_hour = [0u32; 24];
        for j in &jobs {
            by_hour[((j.submit_at.as_secs() % 86_400) / 3600) as usize] += 1;
        }
        // Peak (hour ~6, sin max) should clearly exceed trough (hour ~18).
        let peak = by_hour[5] + by_hour[6] + by_hour[7];
        let trough = by_hour[17] + by_hour[18] + by_hour[19];
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak={peak} trough={trough}"
        );
        // Total rate is preserved (thinning keeps the mean).
        let per_day = jobs.len() as f64 / 30.0;
        assert!((per_day - 7200.0).abs() < 400.0, "per_day={per_day}");
    }

    #[test]
    fn zero_amplitude_is_homogeneous() {
        let mut profile = WorkloadProfile::rsc1();
        profile.diurnal_amplitude = 0.0;
        let mut stream = JobStream::new(profile, SimRng::seed_from(6));
        let jobs = stream.take_until(SimTime::from_days(10));
        let per_day = jobs.len() as f64 / 10.0;
        assert!((per_day - 7200.0).abs() < 300.0);
    }

    #[test]
    fn some_large_jobs_are_runs() {
        let mut stream = JobStream::new(WorkloadProfile::rsc1(), SimRng::seed_from(4));
        let jobs = stream.take_until(SimTime::from_days(30));
        let runs = jobs.iter().filter(|j| j.run.is_some()).count();
        assert!(runs > 0, "expected some job runs among {} jobs", jobs.len());
        // Run ids are unique per job here (continuations come from requeues).
        let mut run_ids: Vec<_> = jobs.iter().filter_map(|j| j.run).collect();
        run_ids.sort();
        run_ids.dedup();
        assert_eq!(run_ids.len(), runs);
    }
}
